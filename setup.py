"""Setuptools entry point (kept for environments without PEP 517 build isolation)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of LINX: a language-driven generative system for "
        "goal-oriented automated data exploration (EDBT 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
