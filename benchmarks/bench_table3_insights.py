"""Table 3 — Example insights derived from LINX-generated notebooks.

Generates LINX sessions for the exemplar goals and prints the strongest
extracted insights, mirroring the qualitative examples of Table 3 (e.g. the
movies-vs-TV-shows contrast for India on the Netflix dataset).
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.bench import exemplar_instances, generate_benchmark
from repro.cdrl import CdrlConfig, LinxCdrlAgent
from repro.datasets import load_dataset
from repro.notebook import extract_insights


def _collect_insights():
    corpus = generate_benchmark()
    exemplars = exemplar_instances(corpus)[: scale(3, 8)]
    rows = []
    for instance in exemplars:
        dataset = load_dataset(instance.dataset, num_rows=scale(300, 2000))
        agent = LinxCdrlAgent(
            dataset, instance.ldx_text, config=CdrlConfig(episodes=scale(60, 400))
        )
        result = agent.run()
        insights = extract_insights(result.session, max_insights=2)
        for insight in insights:
            rows.append(
                {
                    "goal": f"g{instance.meta_goal_id} ({instance.dataset})",
                    "insight": insight.text,
                    "kind": insight.kind,
                }
            )
    return rows


def test_table3_example_insights(benchmark):
    rows = benchmark.pedantic(_collect_insights, iterations=1, rounds=1)
    print_table("Table 3: Example Insights Derived with LINX", rows)
    assert rows, "LINX sessions should yield at least one extractable insight"
