"""Section 7.4 / Appendix A.2 — LDX verification overhead.

The paper argues that computing the LDX-compliance reward adds negligible
overhead to session generation.  This benchmark measures the verification
engine on a compliant session (the hot path executed once per episode) and
the look-ahead completion check (executed once per step), and reports the
number of tree completions versus the Catalan bound.
"""

from __future__ import annotations

from conftest import print_table

from repro.bench import generate_benchmark
from repro.datasets import load_dataset
from repro.baselines import HumanExpertBaseline
from repro.ldx import (
    can_still_comply,
    catalan_number,
    count_completions,
    parse_ldx,
    verify,
)


def _setup():
    corpus = generate_benchmark()
    instance = corpus.instances[0]
    dataset = load_dataset(instance.dataset, num_rows=300)
    query = parse_ldx(instance.ldx_text)
    session = HumanExpertBaseline().generate(dataset, query)
    return session.to_tree(), query


def test_ldx_verification_speed(benchmark):
    tree, query = _setup()
    result = benchmark(verify, tree, query)
    assert result is True


def test_ldx_lookahead_speed_and_completion_bound(benchmark):
    tree, query = _setup()
    partial = tree.copy()
    # Simulate an ongoing session: keep only the first branch.
    while len(partial.children) > 1:
        partial.children.pop()
    feasible = benchmark(can_still_comply, partial, query, 3, 256)
    assert feasible

    rows = []
    for remaining in range(0, 4):
        completions = count_completions(partial, remaining)
        rows.append(
            {
                "remaining_steps": remaining,
                "completions": completions,
                "catalan_bound": catalan_number(remaining + partial.size()),
            }
        )
    print_table("LDX look-ahead completions vs Catalan bound", rows)
    assert all(row["completions"] <= row["catalan_bound"] for row in rows)
