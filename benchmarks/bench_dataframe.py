"""Benchmark — numpy-backed dataframe kernels vs. the list-backed seed paths.

Measures the three hot kernels of the columnar engine on the flights
dataset, old-vs-new:

* **predicate mask** — vectorised :meth:`Predicate.mask` (numeric and
  categorical) against the seed's single-pass pure-Python cell loop;
* **group-and-aggregate** — ``np.unique``/``np.bincount`` grouping against
  the seed's dict-of-row-indices grouping with per-group Python aggregation;
* **fingerprint** — buffer hashing (``ndarray.tobytes``) against the seed's
  chunked ``repr()`` digest of the value tuples.

Results (ops/sec + speedups) are emitted to ``BENCH_dataframe.json`` in the
repository root so the perf trajectory is tracked across PRs.

Acceptance gates (enforced as assertions, run in CI):

* vectorised group-by reaches >= 5x the list-backed throughput,
* vectorised predicate masks reach >= 3x,
* both kernels produce results identical to the pure-Python reference.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from conftest import print_table, scale

from repro.dataframe import Predicate
from repro.dataframe.aggregates import apply_aggregation
from repro.datasets import load_dataset

#: Minimum new/old throughput ratios (acceptance criteria).  Wall-clock
#: ratios are load-sensitive, so noisy shared runners may lower the gates
#: via the environment; the identical-results assertions always gate.
MIN_GROUPBY_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_GROUPBY_SPEEDUP", "5.0"))
MIN_MASK_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_MASK_SPEEDUP", "3.0"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataframe.json"


# -- list-backed reference implementations (the seed's pure-Python paths) ---------------

def _mask_reference(predicate: Predicate, values: tuple) -> list[bool]:
    """The seed's single-pass columnar mask loop (specialised per operator)."""
    op, term = predicate.op, predicate.term
    if op in ("gt", "ge", "lt", "le"):
        rhs = float(term)
        compare = {
            "gt": lambda a: a > rhs,
            "ge": lambda a: a >= rhs,
            "lt": lambda a: a < rhs,
            "le": lambda a: a <= rhs,
        }[op]
        out = []
        for v in values:
            if v is None:
                out.append(False)
                continue
            try:
                out.append(compare(float(v)))
            except (TypeError, ValueError):
                out.append(False)
        return out
    if op in ("eq", "neq"):
        want = op == "eq"
        term_str = str(term)
        try:
            term_num = float(term)
        except (TypeError, ValueError):
            term_num = None
        out = []
        for v in values:
            if v is None:
                out.append(False)
            elif term_num is not None and isinstance(v, (int, float)) and not isinstance(v, bool):
                out.append((float(v) == term_num) == want)
            else:
                out.append((str(v) == term_str) == want)
        return out
    needle = str(term).lower()
    return [v is not None and needle in str(v).lower() for v in values]


def _groupby_reference(keys: tuple, values: tuple, func: str):
    """The seed's group-and-aggregate: dict grouping + per-group Python reduce."""
    order: list = []
    rows: dict = {}
    for i, key in enumerate(keys):
        if key is None:
            continue
        bucket = rows.get(key)
        if bucket is None:
            rows[key] = bucket = []
            order.append(key)
        bucket.append(i)
    aggregated = [
        (key, apply_aggregation(func, [values[i] for i in rows[key]])) for key in order
    ]
    aggregated.sort(key=lambda item: item[1], reverse=True)
    return aggregated


def _fingerprint_reference(table) -> bytes:
    """The seed's fingerprint: chunked repr() digest of every value tuple."""
    digest = hashlib.blake2b(digest_size=16)
    for name in table.columns:
        column = table.column(name)
        digest.update(repr((column.name, column.dtype)).encode())
        values = column.values
        for start in range(0, len(values), 8192):
            digest.update(repr(values[start : start + 8192]).encode())
    return digest.digest()


def _ops_per_second(fn, iterations: int) -> float:
    fn()  # warm-up (also primes lazy memos outside the timed region)
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return iterations / (time.perf_counter() - start)


def _run_dataframe_benchmark():
    table = load_dataset("flights", num_rows=scale(3000, 20000))
    mask_iters = scale(200, 400)
    group_iters = scale(150, 200)
    fingerprint_iters = scale(100, 150)

    workloads = []

    # -- predicate masks ----------------------------------------------------------
    mask_cases = [
        ("mask: distance > 1000", Predicate("distance", "gt", 1000)),
        ("mask: airline = AA", Predicate("airline", "eq", "AA")),
        ("mask: reason contains ea", Predicate("delay_reason", "contains", "ea")),
    ]
    for label, predicate in mask_cases:
        column = table.column(predicate.column)
        values = column.values  # materialise once; the seed stored tuples
        identical = list(predicate.mask(column)) == _mask_reference(predicate, values)
        new_ops = _ops_per_second(lambda: predicate.mask(column), mask_iters)
        old_ops = _ops_per_second(
            lambda: _mask_reference(predicate, values), mask_iters
        )
        workloads.append(
            {
                "workload": label,
                "kind": "mask",
                "list_backed_ops_per_s": round(old_ops, 1),
                "numpy_ops_per_s": round(new_ops, 1),
                "speedup": round(new_ops / old_ops, 2),
                "identical_results": identical,
            }
        )

    # -- group-and-aggregate ------------------------------------------------------
    group_cases = [
        ("groupby: airline mean departure_delay", "airline", "mean", "departure_delay"),
        ("groupby: origin_airport count", "origin_airport", "count", "origin_airport"),
        ("groupby: month sum arrival_delay", "month", "sum", "arrival_delay"),
    ]
    for label, group_attr, func, agg_attr in group_cases:
        keys = table.column(group_attr).values
        values = table.column(agg_attr).values

        def run_new():
            table._group_rows.clear()  # time the grouping pass, not the memo
            return table.groupby_agg(group_attr, func, agg_attr)

        result = run_new()
        got = list(
            zip(result.column(group_attr).values, result.column(result.columns[-1]).values)
        )
        expected = _groupby_reference(keys, values, func)
        identical = [
            (str(k), round(float(v), 9)) for k, v in got
        ] == [(str(k), round(float(v), 9)) for k, v in expected]
        new_ops = _ops_per_second(run_new, group_iters)
        old_ops = _ops_per_second(
            lambda: _groupby_reference(keys, values, func), group_iters
        )
        workloads.append(
            {
                "workload": label,
                "kind": "groupby",
                "list_backed_ops_per_s": round(old_ops, 1),
                "numpy_ops_per_s": round(new_ops, 1),
                "speedup": round(new_ops / old_ops, 2),
                "identical_results": identical,
            }
        )

    # -- fingerprint ----------------------------------------------------------------
    def run_fingerprint():
        table._fingerprint = None
        return table.fingerprint()

    new_ops = _ops_per_second(run_fingerprint, fingerprint_iters)
    old_ops = _ops_per_second(lambda: _fingerprint_reference(table), fingerprint_iters)
    workloads.append(
        {
            "workload": "fingerprint: flights table",
            "kind": "fingerprint",
            "list_backed_ops_per_s": round(old_ops, 1),
            "numpy_ops_per_s": round(new_ops, 1),
            "speedup": round(new_ops / old_ops, 2),
            "identical_results": True,  # format intentionally changed; no comparison
        }
    )
    return workloads


def _emit_json(rows: list[dict]) -> None:
    by_kind: dict[str, list[float]] = {}
    for row in rows:
        by_kind.setdefault(row["kind"], []).append(row["speedup"])
    payload = {
        "benchmark": "dataframe_kernels",
        "dataset": "flights",
        "gates": {
            "min_groupby_speedup": MIN_GROUPBY_SPEEDUP,
            "min_mask_speedup": MIN_MASK_SPEEDUP,
        },
        "min_speedup_by_kind": {k: min(v) for k, v in by_kind.items()},
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_dataframe_kernel_speedups(benchmark):
    rows = benchmark.pedantic(_run_dataframe_benchmark, iterations=1, rounds=1)
    print_table("Dataframe kernels: numpy vs list-backed ops/sec", rows)
    _emit_json(rows)
    assert all(row["identical_results"] for row in rows)
    for row in rows:
        if row["kind"] == "groupby":
            assert row["speedup"] >= MIN_GROUPBY_SPEEDUP, row
        elif row["kind"] == "mask":
            assert row["speedup"] >= MIN_MASK_SPEEDUP, row
