"""Figure 6 — Average number of goal-relevant insights per system.

Shape to reproduce: Human Expert (≈3.2) ≳ LINX (≈2.7) ≫ ATENA (≈0.8) ≳
Google Sheets (≈0.4) ≳ ChatGPT (≈0.3).
"""

from __future__ import annotations

from conftest import print_table
from study_workload import study_outcome


def test_fig6_goal_relevant_insights(benchmark):
    outcome = benchmark.pedantic(study_outcome, iterations=1, rounds=1)
    insights = outcome.insights_per_system()
    rows = [{"system": system, "relevant_insights": round(count, 2)} for system, count in insights.items()]
    print_table("Figure 6: Avg. Number of Goal-Relevant Insights", rows)
    assert insights["LINX"] > insights["ATENA"]
    assert insights["LINX"] > insights["ChatGPT"]
    assert insights["Human Expert"] >= insights["ChatGPT"]
