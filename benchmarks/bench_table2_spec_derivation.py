"""Table 2 — Specification derivation (NL-to-LDX) results.

Evaluates the simulated ChatGPT and GPT-4 tiers, with and without the
chained NL→PyLDX→LDX prompting (+Pd), across the four seen/unseen scenarios,
reporting lev² and xTED (higher is better).  The paper's shape to reproduce:
seen scenarios ≫ unseen meta-goal scenarios, +Pd helps most when the
meta-goal is unseen, and GPT-4 ≥ ChatGPT.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.llm import chatgpt_client, gpt4_client
from repro.nl2ldx import evaluate_derivation


def test_table2_spec_derivation(benchmark, corpus):
    max_instances = scale(24, 182)
    clients = {"ChatGPT": chatgpt_client(), "GPT-4": gpt4_client()}

    evaluation = benchmark.pedantic(
        evaluate_derivation,
        kwargs={
            "benchmark": corpus,
            "clients": clients,
            "max_instances_per_scenario": max_instances,
        },
        iterations=1,
        rounds=1,
    )
    rows = evaluation.rows()
    print_table("Table 2: Specification Derivation (NL-to-LDX)", rows)

    def cell(model, approach, scenario):
        return evaluation.cell(model, approach, scenario)

    seen = "seen dataset, seen meta-goal"
    unseen_goal = "seen dataset, unseen meta-goal"
    # Shape checks mirroring the paper's findings.
    for model in clients:
        assert cell(model, "NL2PD2LDX", seen).lev2 >= cell(model, "NL2PD2LDX", unseen_goal).lev2
    assert (
        cell("GPT-4", "NL2PD2LDX", seen).lev2 >= cell("ChatGPT", "NL2PD2LDX", seen).lev2 - 0.05
    )
    # The chained (+Pd) approach should not be worse than direct on unseen meta-goals.
    assert (
        cell("ChatGPT", "NL2PD2LDX", unseen_goal).lev2
        >= cell("ChatGPT", "NL2LDX", unseen_goal).lev2 - 0.05
    )
