"""Table 4 — Ablation study of the CDRL engine.

Runs the four engine variants (binary reward only, graded reward, without
the specification-aware network, full LINX-CDRL) on the study's LDX queries
and reports structure / full compliance.  Shape to reproduce: monotone
improvement down the table, with the full engine compliant on every query.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.bench import generate_benchmark
from repro.cdrl import AblationCase, CdrlConfig, run_ablation
from repro.datasets import load_dataset
from repro.study import default_study_tasks


def _run_ablation():
    corpus = generate_benchmark()
    tasks = default_study_tasks(corpus, per_dataset=scale(1, 4))
    cases = [
        AblationCase.from_text(
            name=f"{task.dataset}-g{task.meta_goal_id}",
            dataset=load_dataset(task.dataset, num_rows=scale(300, 2000)),
            ldx_text=task.ldx_text,
        )
        for task in tasks
    ]
    base = CdrlConfig(episodes=scale(60, 600))
    return run_ablation(cases, base_config=base)


def test_table4_ablation(benchmark):
    outcomes = benchmark.pedantic(_run_ablation, iterations=1, rounds=1)
    rows = [outcome.row() for outcome in outcomes]
    print_table("Table 4: Ablation Study Results", rows)
    by_name = {outcome.variant: outcome for outcome in outcomes}
    full = by_name["LINX-CDRL (Full)"]
    binary = by_name["Binary Reward Only"]
    # The full engine must dominate the naive binary baseline, and achieve
    # full compliance on every query (the paper's 12/12).
    assert full.full_rate() >= by_name["W/O Spec. Aware NN"].full_rate()
    assert full.full_rate() > binary.full_rate()
    assert full.full_rate() == 1.0
    assert full.structure_rate() == 1.0
