"""Shared workload for the user-study benchmarks (Figures 5-7, Tables 3-4).

Builds the 12 study tasks (four goals per dataset, one per meta-goal) and
runs the simulated user study once per session so the three figure
benchmarks report consistent numbers without re-training the agents.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import scale

from repro.bench import generate_benchmark
from repro.study import UserStudy, default_study_tasks


@lru_cache(maxsize=1)
def study_outcome():
    """Run the study workload once and cache the outcome for all figure benches."""
    corpus = generate_benchmark()
    tasks = default_study_tasks(corpus, per_dataset=scale(2, 4))
    study = UserStudy(
        linx_episodes=scale(60, 400),
        atena_episodes=scale(40, 300),
        dataset_rows=scale(300, 2000),
    )
    return study.run(tasks)
