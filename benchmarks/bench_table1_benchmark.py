"""Table 1 — Overview of the goal-oriented ADE benchmark (182 instances).

Regenerates the benchmark corpus and reports, per meta-goal, an example
concrete goal and the number of instances.
"""

from __future__ import annotations

from conftest import print_table


def test_table1_benchmark_overview(benchmark, corpus):
    rows = benchmark(corpus.overview_rows)
    print_table("Table 1: Goal-Oriented ADE Benchmark", rows)
    total = sum(row["instances"] for row in rows)
    print(f"Total instances: {total} (paper: 182)")
    assert total == 182
    assert len(rows) == 8
