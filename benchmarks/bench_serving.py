"""Benchmark — continuous cross-request batching under sustained serving load.

Drives the *real* HTTP serving stack twice — :class:`~repro.engine.core.LinxEngine`
behind a :class:`~repro.engine.scheduler.RequestScheduler` behind the asyncio
:class:`~repro.engine.server.LinxHttpServer` — with 8 concurrent HTTP clients
submitting CDRL exploration requests (distinct seeds) and blocking on the
Server-Sent-Events stream until each result lands:

* **unbatched** — every request trains its policy independently: one policy
  forward per environment step per request, private per-request scorer and
  guidance state;
* **batched** — ``inference_batching=True``: all requests attach to the
  engine's :class:`~repro.engine.batcher.InferenceBatcher`, whose wave thread
  coalesces their observation rows into shared stacked forwards and pools
  read-only exploration state (scorers, action spaces, guidance memos,
  look-ahead caches) across requests.

Batching must not change behaviour: for every client seed, the result payload
served over HTTP must be **bit-identical** between the two modes (modulo
per-stage wall-clock ``seconds`` and load-dependent ``cache_stats``, which are
excluded from result equality by design).  That assertion always gates.

Results land in ``BENCH_serving.json`` in the repository root.

Acceptance gates (enforced as assertions, run in CI):

* batched mode reaches ``REPRO_BENCH_MIN_SERVING_SPEEDUP`` x the unbatched
  request throughput (default 2.0 — the design target on idle multi-row
  hardware; wall-clock ratios are load-sensitive, and on a busy single-core
  runner the stacked forwards save Python dispatch but not FLOPs, so CI may
  lower the gate via the environment),
* batched payloads are bit-identical to unbatched payloads (never relaxable),
* the batcher actually coalesces: mean rows per wave >= 2.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

from conftest import print_table, scale

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, LinxEngine, RequestScheduler
from repro.engine.server import ServerThread

#: Minimum batched/unbatched request-throughput ratio (acceptance criterion).
#: The bit-identity assertions always gate; only this wall-clock ratio may be
#: relaxed through the environment on noisy or single-core runners.
MIN_SERVING_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SERVING_SPEEDUP", "2.0"))

#: Minimum mean observation rows per inference wave (proves coalescing).
MIN_WAVE_OCCUPANCY = float(os.environ.get("REPRO_BENCH_MIN_WAVE_OCCUPANCY", "2.0"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

CLIENTS = 8
NUM_ROWS = 400
LINGER_MS = 30.0

#: The serve.py comparison query: one branch per side of a country split.
LDX = (
    "ROOT CHILDREN <A1,A2>\n"
    "A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}\n"
    "B1 LIKE [G,(?<Y>.*),count,.*]\n"
    "A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}\n"
    "B2 LIKE [G,(?<Y>.*),count,.*]\n"
)


def _call(port: int, method: str, path: str, body: dict | None = None):
    """One JSON request against the local server."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        connection.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _drain_events(port: int, ticket: str) -> None:
    """Block on the ticket's SSE stream until the server closes it (terminal)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        connection.request("GET", f"/requests/{ticket}/events")
        response = connection.getresponse()
        while response.readline():
            pass
    finally:
        connection.close()


def _request(index: int, episodes: int) -> ExploreRequest:
    return ExploreRequest(
        goal="Find a country with different viewing habits than the rest",
        dataset="netflix",
        num_rows=NUM_ROWS,
        ldx_text=LDX,
        episodes=episodes,
        seed=index,
        request_id=f"bench-{index}",
    )


def _normalise(payload: dict) -> dict:
    """A result payload with the load-dependent fields stripped.

    ``cache_stats`` and per-stage ``seconds`` are the only fields that may
    legitimately differ between the two modes (they are excluded from
    :class:`ExploreResult` equality for the same reason); everything else
    must match bit for bit.
    """
    clean = json.loads(json.dumps(payload))
    clean.pop("cache_stats", None)
    for stage in clean.get("stages", []):
        stage.pop("seconds", None)
    return clean


def _run_mode(batched: bool, episodes: int):
    """One sustained-load burst against a fresh server; returns its telemetry."""
    engine = LinxEngine(
        cdrl_config=CdrlConfig(episodes=episodes),
        inference_batching=batched,
        batch_linger_ms=LINGER_MS,
    )
    scheduler = RequestScheduler(
        engine, max_workers=CLIENTS, max_pending=CLIENTS * 4, default_timeout=600
    )
    payloads: list[dict | None] = [None] * CLIENTS
    latencies: list[float] = [0.0] * CLIENTS
    errors: list[BaseException] = []
    barrier = threading.Barrier(CLIENTS + 1)
    try:
        with ServerThread(scheduler) as hosted:
            port = hosted.port

            # Warm-up request (untimed): materialises the dataset, the action
            # space, and the numpy kernels — steady-state serving, not cold
            # start, is what the burst measures.
            status, submitted = _call(
                port, "POST", "/requests", _request(999, episodes).to_dict()
            )
            assert status == 202, submitted
            _drain_events(port, submitted["ticket"])

            def client(index: int) -> None:
                try:
                    barrier.wait()
                    started = time.perf_counter()
                    status, submitted = _call(
                        port, "POST", "/requests", _request(index, episodes).to_dict()
                    )
                    assert status == 202, submitted
                    _drain_events(port, submitted["ticket"])
                    status, body = _call(
                        port, "GET", f"/requests/{submitted['ticket']}/result"
                    )
                    assert status == 200, body
                    latencies[index] = time.perf_counter() - started
                    payloads[index] = _normalise(body["result"])
                except BaseException as exc:  # noqa: BLE001 — surfaced in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            _, stats = _call(port, "GET", "/stats")
        if errors:
            raise errors[0]
        return {
            "wall": wall,
            "latencies": latencies,
            "payloads": payloads,
            "batching": stats["scheduler"].get("batching"),
            "cache": engine.cache_stats(),
        }
    finally:
        scheduler.shutdown()
        engine.close()


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    position = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[position]


def _run_serving_benchmark():
    episodes = scale(30, 60)
    rounds = scale(2, 4)
    unbatched_runs, batched_runs = [], []
    for _ in range(rounds):  # interleaved A/B: load noise hits both modes alike
        unbatched_runs.append(_run_mode(False, episodes))
        batched_runs.append(_run_mode(True, episodes))

    # Best round per mode: on a shared box external load is strictly
    # additive, so the fastest round is the least-contaminated estimate of
    # each mode's sustained throughput (all rounds are recorded below).
    unbatched_wall = min(run["wall"] for run in unbatched_runs)
    batched_wall = min(run["wall"] for run in batched_runs)
    unbatched_throughput = CLIENTS / unbatched_wall
    batched_throughput = CLIENTS / batched_wall
    unbatched_latencies = [l for run in unbatched_runs for l in run["latencies"]]
    batched_latencies = [l for run in batched_runs for l in run["latencies"]]

    bit_identical = all(
        run["payloads"] == unbatched_runs[0]["payloads"]
        for run in unbatched_runs[1:] + batched_runs
    )
    batching = batched_runs[-1]["batching"]
    return [
        {
            "workload": f"serving: {CLIENTS} concurrent CDRL requests, batched vs unbatched",
            "kind": "continuous_batching",
            "clients": CLIENTS,
            "episodes": episodes,
            "rounds": rounds,
            "unbatched_wall_s": round(unbatched_wall, 3),
            "batched_wall_s": round(batched_wall, 3),
            "unbatched_walls_s": [round(run["wall"], 3) for run in unbatched_runs],
            "batched_walls_s": [round(run["wall"], 3) for run in batched_runs],
            "unbatched_requests_per_s": round(unbatched_throughput, 3),
            "batched_requests_per_s": round(batched_throughput, 3),
            "speedup": round(batched_throughput / unbatched_throughput, 2),
            "unbatched_latency_p50_s": round(_percentile(unbatched_latencies, 0.5), 3),
            "unbatched_latency_p95_s": round(_percentile(unbatched_latencies, 0.95), 3),
            "batched_latency_p50_s": round(_percentile(batched_latencies, 0.5), 3),
            "batched_latency_p95_s": round(_percentile(batched_latencies, 0.95), 3),
            "bit_identical": bit_identical,
            "mean_rows_per_wave": batching["mean_rows_per_wave"],
            "waves": batching["waves"],
            "batching": batching,
            "cache": batched_runs[-1]["cache"],
        }
    ]


def _emit_json(rows: list[dict]) -> None:
    payload = {
        "benchmark": "serving_continuous_batching",
        "dataset": "netflix",
        "num_rows": NUM_ROWS,
        "clients": CLIENTS,
        "linger_ms": LINGER_MS,
        "gates": {
            "min_serving_speedup": MIN_SERVING_SPEEDUP,
            "min_wave_occupancy": MIN_WAVE_OCCUPANCY,
        },
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_serving_throughput(benchmark):
    rows = benchmark.pedantic(_run_serving_benchmark, iterations=1, rounds=1)
    for row in rows:
        printable = {k: v for k, v in row.items() if not isinstance(v, dict)}
        print_table(row["workload"], [printable])
    _emit_json(rows)
    # Bit-identity gates unconditionally: batching must be a pure scheduling
    # change, invisible in every served payload.
    assert all(row["bit_identical"] for row in rows)
    for row in rows:
        assert row["mean_rows_per_wave"] >= MIN_WAVE_OCCUPANCY, row
        assert row["speedup"] >= MIN_SERVING_SPEEDUP, row
