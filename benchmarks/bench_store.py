"""Benchmark — sharded, connection-pooled persistence tier vs the legacy store.

Replays the serving tier's store traffic — result lookups by canonical
request hash, plus the claim-lease/commit-result write path — against two
implementations:

* **legacy** — the pre-sharding :class:`ResultStore` reproduced op for op
  in-file (``LegacySingleFileStore``): ONE sqlite file, ONE connection,
  ONE global lock around every operation, TEXT payloads parsed with
  ``json.loads`` on every read, and a write path of three separate
  transactions (claim lease → insert result → release lease);
* **sharded** — the current :class:`~repro.engine.store.ResultStore` at
  ``num_shards`` ∈ {1, 4, 8}: keys striped over per-shard WAL files by
  ``int(hash[:8], 16) % num_shards``, lock-free lookups on per-thread
  read connections (``get_payload_text`` returns the raw stored text, no
  JSON parse), BLOB payloads, and an atomic ``claim`` →
  ``commit_result`` write path (insert + lease release in one
  transaction).

The harness is fixed-work: every thread executes a pre-generated op list
(seeded RNG, identical across arms) from a barrier start, so arms differ
only in the store under test, never in the workload.  Three workloads:

* **read-heavy (95/5)** — the steady-state serving mix (duplicate
  submissions served from the store); this ratio gates;
* **mixed (80/20)** — a write-heavier mix, reported for context;
* **p95 under writer pressure** — reader threads record per-lookup
  latency while a writer thread commits continuously; the p95 compares
  the legacy global-lock path against the 4-shard pooled-read path.

Results land in ``BENCH_store.json`` in the repository root.

Acceptance gates (enforced as assertions, run in CI):

* the best sharded arm reaches ``REPRO_BENCH_MIN_STORE_SPEEDUP`` x the
  legacy aggregate ops/sec on the read-heavy mix (default 2.0; the win is
  per-op CPU — no parse, no lock, pooled connections — so it holds even
  on a single-core runner, but CI may relax the gate via the environment
  on noisy boxes),
* the 4-shard p95 lookup latency under writer pressure stays within
  ``REPRO_BENCH_MAX_STORE_P95_RATIO`` x the legacy p95 (default 1.0 —
  strictly no worse),
* every lookup in every arm returns the exact committed payload text
  (never relaxable).
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional, TypeVar

from conftest import print_table, scale

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, LinxEngine
from repro.engine.store import ResultStore
from repro.reliability import open_sqlite_verified, retry_sqlite

T = TypeVar("T")

#: Minimum sharded/legacy aggregate-throughput ratio on the read-heavy mix.
MIN_STORE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_STORE_SPEEDUP", "2.0"))

#: Maximum sharded/legacy p95 lookup-latency ratio under writer pressure.
MAX_STORE_P95_RATIO = float(os.environ.get("REPRO_BENCH_MAX_STORE_P95_RATIO", "1.0"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

THREADS = 8
NAMESPACE = "bench-store"
SHARD_COUNTS = (1, 4, 8)


# ---------------------------------------------------------------------------------
# The legacy store, reproduced op for op (single file, single connection,
# global lock, TEXT payloads, three-transaction write path).
# ---------------------------------------------------------------------------------
class LegacySingleFileStore:
    """The pre-sharding ``ResultStore``'s hot paths, byte for byte.

    Every operation — reads included — serialises on one in-process lock
    over one connection; payloads are TEXT and every lookup pays a full
    ``json.loads``; a result write is claim + insert + release, three
    separate transactions.  This is the baseline the sharded tier replaced.
    """

    def __init__(self, path: Path, timeout: float = 30.0):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn, _ = open_sqlite_verified(
            self.path, timeout, initialize=self._initialize
        )

    def _initialize(self, conn: sqlite3.Connection) -> None:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " request_id TEXT NOT NULL,"
                " dataset TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " replica_id TEXT NOT NULL,"
                " expires_at REAL NOT NULL,"
                " claimed_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )

    def _write(self, operation: Callable[[], T]) -> T:
        return retry_sqlite(operation)

    def get_payload(self, request_hash: str) -> Optional[dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results"
                " WHERE namespace = ? AND request_hash = ?",
                (NAMESPACE, request_hash),
            ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def claim(self, request_hash: str, replica_id: str, ttl: float) -> bool:
        def upsert() -> bool:
            with self._lock, self._conn:
                now = time.time()
                self._conn.execute(
                    "SELECT replica_id, expires_at FROM leases"
                    " WHERE namespace = ? AND request_hash = ?",
                    (NAMESPACE, request_hash),
                ).fetchone()
                cursor = self._conn.execute(
                    "INSERT INTO leases"
                    " (namespace, request_hash, replica_id, expires_at, claimed_at)"
                    " VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT(namespace, request_hash) DO UPDATE SET"
                    "  replica_id = excluded.replica_id,"
                    "  expires_at = excluded.expires_at,"
                    "  claimed_at = excluded.claimed_at"
                    " WHERE leases.expires_at <= ?"
                    "  OR leases.replica_id = excluded.replica_id",
                    (NAMESPACE, request_hash, replica_id, now + ttl, now, now),
                )
                return cursor.rowcount > 0

        return self._write(upsert)

    def put(self, request_hash: str, payload_text: str) -> None:
        def insert() -> None:
            with self._lock, self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (namespace, request_hash, request_id, dataset, payload,"
                    "  created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (NAMESPACE, request_hash, "", "netflix", payload_text, time.time()),
                )

        self._write(insert)

    def release(self, request_hash: str, replica_id: str) -> None:
        def remove() -> None:
            with self._lock, self._conn:
                self._conn.execute(
                    "DELETE FROM leases WHERE namespace = ? AND request_hash = ?"
                    " AND replica_id = ?",
                    (NAMESPACE, request_hash, replica_id),
                )

        self._write(remove)

    def close(self) -> None:
        self._conn.close()


# ---------------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------------
def _result_payload_text() -> str:
    """One real served payload (an actual engine run), the store's unit of work."""
    engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6))
    try:
        result = engine.explore(
            ExploreRequest(
                goal="explore the catalogue",
                dataset="netflix",
                num_rows=200,
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
                episodes=6,
                seed=0,
            )
        )
    finally:
        engine.close()
    return json.dumps(result.to_dict())


def _keys(count: int) -> list[str]:
    # Knuth-hashed prefixes: shaped like canonical hashes, spread over shards.
    return [f"{(i * 2654435761) % 2**32:08x}{i:032x}" for i in range(count)]


def _plan_ops(keys: list[str], per_thread: int, write_ratio: float) -> list[list[tuple]]:
    """Pre-generated per-thread op lists — identical across arms by seed."""
    plans = []
    for thread in range(THREADS):
        rng = random.Random(0xC0FFEE + thread)
        plans.append([
            ("write" if rng.random() < write_ratio else "read", rng.choice(keys))
            for _ in range(per_thread)
        ])
    return plans


def _run_arm(
    read_one: Callable[[str], Optional[str]],
    write_one: Callable[[str, int], None],
    plans: list[list[tuple]],
    payload_text: str,
) -> dict[str, Any]:
    """Fixed-work burst: every thread drains its op plan from a barrier start."""
    barrier = threading.Barrier(THREADS + 1)
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            barrier.wait()
            for op, key in plans[index]:
                if op == "read":
                    text = read_one(key)
                    # Correctness gates inside the measured loop are one
                    # string compare — the payloads must round-trip exactly.
                    if text is not None and text != payload_text:
                        raise AssertionError(f"lookup returned a torn payload for {key}")
                else:
                    write_one(key, index)
        except BaseException as exc:  # noqa: BLE001 — surfaced in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = sum(len(plan) for plan in plans)
    return {"wall_s": wall, "ops": total, "ops_per_s": total / wall}


def _legacy_arm(root: Path, plans, payload_text: str, keys: list[str]):
    store = LegacySingleFileStore(root / "legacy.sqlite")
    try:
        for key in keys:
            store.put(key, payload_text)

        def read_one(key: str) -> Optional[str]:
            payload = store.get_payload(key)
            return None if payload is None else json.dumps(payload)

        def write_one(key: str, thread: int) -> None:
            replica = f"replica-{thread}"
            store.claim(key, replica, ttl=30.0)
            store.put(key, payload_text)
            store.release(key, replica)

        # The legacy read path hands back a parsed dict; serving it means
        # re-serialising, so the arm pays json.dumps too — exactly what the
        # old server did per duplicate submission.
        return _run_arm(read_one, write_one, plans, payload_text)
    finally:
        store.close()


def _sharded_arm(root: Path, num_shards: int, plans, payload_text: str, keys: list[str]):
    with ResultStore(root / f"sharded-{num_shards}.sqlite", num_shards=num_shards) as store:
        for key in keys:
            store.commit_result(NAMESPACE, key, payload_text)

        def read_one(key: str) -> Optional[str]:
            return store.get_payload_text(NAMESPACE, key)

        def write_one(key: str, thread: int) -> None:
            replica = f"replica-{thread}"
            store.claim(NAMESPACE, key, replica, ttl=30.0)
            store.commit_result(NAMESPACE, key, payload_text, replica_id=replica)

        return _run_arm(read_one, write_one, plans, payload_text)


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    position = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[position]


def _p95_under_writer_pressure(
    read_one: Callable[[str], Optional[str]],
    write_one: Callable[[str, int], None],
    keys: list[str],
    reads_per_thread: int,
) -> dict[str, float]:
    """p50/p95 per-lookup latency while one writer commits continuously."""
    readers = THREADS - 1
    barrier = threading.Barrier(readers + 2)
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(readers)]
    errors: list[BaseException] = []

    def reader(index: int) -> None:
        try:
            rng = random.Random(0xBEEF + index)
            barrier.wait()
            for _ in range(reads_per_thread):
                key = rng.choice(keys)
                started = time.perf_counter()
                read_one(key)
                latencies[index].append(time.perf_counter() - started)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def writer() -> None:
        try:
            rng = random.Random(0xFACE)
            barrier.wait()
            while not stop.is_set():
                write_one(rng.choice(keys), 99)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads[:-1]:
        thread.join()
    stop.set()
    threads[-1].join()
    if errors:
        raise errors[0]
    flat = [latency for per_thread in latencies for latency in per_thread]
    return {
        "p50_us": round(_percentile(flat, 0.5) * 1e6, 1),
        "p95_us": round(_percentile(flat, 0.95) * 1e6, 1),
        "reads": len(flat),
    }


def _run_store_benchmark():
    import tempfile

    payload_text = _result_payload_text()
    keys = _keys(scale(128, 256))
    per_thread = scale(2000, 8000)
    rows = []

    with tempfile.TemporaryDirectory(prefix="linx-bench-store-") as root_str:
        root = Path(root_str)

        for label, write_ratio, gated in (
            ("read-heavy 95/5", 0.05, True),
            ("mixed 80/20", 0.20, False),
        ):
            plans = _plan_ops(keys, per_thread, write_ratio)
            legacy = _legacy_arm(root / label.split()[0], plans, payload_text, keys)
            arms = {"legacy_single_file": legacy}
            for num_shards in SHARD_COUNTS:
                arms[f"sharded_{num_shards}"] = _sharded_arm(
                    root / label.split()[0], num_shards, plans, payload_text, keys
                )
            best = max(
                arms[f"sharded_{n}"]["ops_per_s"] for n in SHARD_COUNTS
            )
            rows.append({
                "workload": f"store: {label}, {THREADS} threads x {per_thread} ops",
                "kind": "throughput",
                "gated": gated,
                "threads": THREADS,
                "ops_per_thread": per_thread,
                "write_ratio": write_ratio,
                "payload_bytes": len(payload_text.encode("utf-8")),
                "legacy_ops_per_s": round(legacy["ops_per_s"], 1),
                **{
                    f"sharded_{n}_ops_per_s": round(arms[f"sharded_{n}"]["ops_per_s"], 1)
                    for n in SHARD_COUNTS
                },
                "speedup": round(best / legacy["ops_per_s"], 2),
            })

        # p95 lookup latency under writer pressure: legacy vs 4 shards.
        reads_per_thread = scale(2000, 8000)
        pressure_root = root / "pressure"
        legacy_store = LegacySingleFileStore(pressure_root / "legacy.sqlite")
        try:
            for key in keys:
                legacy_store.put(key, payload_text)

            def legacy_read(key: str) -> Optional[str]:
                payload = legacy_store.get_payload(key)
                return None if payload is None else json.dumps(payload)

            def legacy_write(key: str, thread: int) -> None:
                replica = f"replica-{thread}"
                legacy_store.claim(key, replica, ttl=30.0)
                legacy_store.put(key, payload_text)
                legacy_store.release(key, replica)

            legacy_p95 = _p95_under_writer_pressure(
                legacy_read, legacy_write, keys, reads_per_thread
            )
        finally:
            legacy_store.close()
        with ResultStore(pressure_root / "sharded.sqlite", num_shards=4) as store:
            for key in keys:
                store.commit_result(NAMESPACE, key, payload_text)

            def sharded_read(key: str) -> Optional[str]:
                return store.get_payload_text(NAMESPACE, key)

            def sharded_write(key: str, thread: int) -> None:
                replica = f"replica-{thread}"
                store.claim(NAMESPACE, key, replica, ttl=30.0)
                store.commit_result(NAMESPACE, key, payload_text, replica_id=replica)

            sharded_p95 = _p95_under_writer_pressure(
                sharded_read, sharded_write, keys, reads_per_thread
            )
        rows.append({
            "workload": f"store: p95 lookup under writer pressure, "
                        f"{THREADS - 1} readers + 1 writer",
            "kind": "latency_under_pressure",
            "gated": True,
            "readers": THREADS - 1,
            "reads_per_thread": reads_per_thread,
            "legacy_p50_us": legacy_p95["p50_us"],
            "legacy_p95_us": legacy_p95["p95_us"],
            "sharded_4_p50_us": sharded_p95["p50_us"],
            "sharded_4_p95_us": sharded_p95["p95_us"],
            "p95_ratio": round(sharded_p95["p95_us"] / legacy_p95["p95_us"], 3),
        })
    return rows


def _emit_json(rows: list[dict]) -> None:
    payload = {
        "benchmark": "store_sharded_persistence",
        "threads": THREADS,
        "shard_counts": list(SHARD_COUNTS),
        "gates": {
            "min_store_speedup": MIN_STORE_SPEEDUP,
            "max_store_p95_ratio": MAX_STORE_P95_RATIO,
        },
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_store_throughput(benchmark):
    rows = benchmark.pedantic(_run_store_benchmark, iterations=1, rounds=1)
    for row in rows:
        printable = {k: v for k, v in row.items() if not isinstance(v, dict)}
        print_table(row["workload"], [printable])
    _emit_json(rows)
    for row in rows:
        if not row["gated"]:
            continue
        if row["kind"] == "throughput":
            assert row["speedup"] >= MIN_STORE_SPEEDUP, row
        else:
            assert row["p95_ratio"] <= MAX_STORE_P95_RATIO, row
