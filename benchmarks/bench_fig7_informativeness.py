"""Figure 7 — Informativeness & comprehensibility ratings (averaged over datasets).

Shape to reproduce: LINX stays close to the human expert on both axes and does
not pay an informativeness/comprehensibility price for being goal-oriented;
ChatGPT is comprehensible but less informative.
"""

from __future__ import annotations

from conftest import print_table
from study_workload import study_outcome


def test_fig7_informativeness_comprehensibility(benchmark):
    outcome = benchmark.pedantic(study_outcome, iterations=1, rounds=1)
    table = outcome.informativeness_and_comprehensibility()
    rows = [
        {
            "system": system,
            "informativeness": round(scores["informativeness"], 2),
            "comprehensibility": round(scores["comprehensibility"], 2),
        }
        for system, scores in table.items()
    ]
    print_table("Figure 7: Informativeness & Comprehensibility", rows)
    assert table["LINX"]["informativeness"] > table["Google Sheets"]["informativeness"]
    assert table["LINX"]["informativeness"] >= table["ChatGPT"]["informativeness"] - 0.3
    assert table["LINX"]["comprehensibility"] > 3.0
