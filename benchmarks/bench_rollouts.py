"""Benchmark — batched lock-step rollouts and the tiered execution cache.

Two workloads on the flights dataset, mirroring how the exploration engine
actually runs episodes:

* **batched vs sequential rollouts** — repeated rollout sweeps (the shape of
  benchmark/eval reruns and training waves) through the status-quo path —
  one environment at a time, each sweep cold-starting its own private
  caches, one policy forward per environment per step — against the
  :class:`~repro.explore.rollouts.VectorEnvironment` path: 8 environments in
  lock-step over **one** long-lived shared cache, one batched policy
  forward per step.  The two must produce bit-identical episodes at equal
  seeds (asserted), so the entire ratio is overhead removed, not behaviour
  changed.
* **cold vs warm disk tier** — the same batched sweep over a
  :class:`~repro.explore.diskcache.TieredExecutionCache`, run once against
  an empty sqlite store and again from a *fresh process's perspective*
  (new memory tier, same file).  Of the warm sweep's lookups that fall
  through the cold memory tier to sqlite, >= 80% must be served from disk
  (read-through hits promoting into memory).

Results land in ``BENCH_rollouts.json`` in the repository root.

Acceptance gates (enforced as assertions, run in CI):

* batched rollouts reach >= 3x the sequential steps/sec,
* the warm sweep's disk tier serves >= 80% of the lookups that reach it,
* batched episodes are bit-identical to sequential ones, and warm-sweep
  rewards are bit-identical to cold-sweep rewards.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import print_table, scale

from repro.cdrl.spec_network import build_basic_policy
from repro.datasets import load_dataset
from repro.explore.action_space import ActionSpace
from repro.explore.diskcache import TieredExecutionCache
from repro.explore.environment import ExplorationEnvironment
from repro.explore.rollouts import (
    VectorEnvironment,
    collect_rollouts,
    collect_sequential_rollouts,
)

#: Minimum batched/sequential steps-per-second ratio (acceptance criterion).
#: Wall-clock ratios are load-sensitive, so noisy shared runners may lower
#: the gate via the environment; the bit-identity assertions always gate.
MIN_BATCHED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_BATCHED_SPEEDUP", "3.0"))

#: Minimum *disk-tier* hit rate of the warm sweep: of the lookups that miss
#: the (cold) memory tier and fall through to sqlite, the fraction served.
#: Gating the combined memory+disk rate would be vacuous — within-sweep
#: memory hits alone push it past 0.8 even with a dead disk tier.
MIN_WARM_HIT_RATE = float(os.environ.get("REPRO_BENCH_MIN_WARM_HIT_RATE", "0.8"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rollouts.json"

NUM_ENVS = 8
EPISODE_LENGTH = 6
SEED = 0
POLICY_SEED = 3


def _episode_trace(batch) -> list[list[tuple]]:
    """Everything observable about a rollout batch, for bit-identity checks."""
    return [
        [(t.decision.indices, t.reward, t.done) for t in buffer.transitions]
        for buffer in batch.buffers
    ]


def _run_sequential_sweeps(table, sweeps: int):
    """The status quo: per-sweep fresh environments, private caches, one at a time."""
    space = ActionSpace(table)
    observation_size = ExplorationEnvironment(
        table, episode_length=EPISODE_LENGTH, action_space=space
    ).observation_size()
    steps = 0
    trace = None
    started = time.perf_counter()
    for _ in range(sweeps):
        environments = [
            ExplorationEnvironment(
                table, episode_length=EPISODE_LENGTH, action_space=space
            )
            for _ in range(NUM_ENVS)
        ]
        policy = build_basic_policy(
            observation_size=observation_size, action_space=space, seed=POLICY_SEED
        )
        policy.mask_provider = environments[0].head_mask
        batch = collect_sequential_rollouts(environments, policy, seed=SEED)
        steps += batch.total_steps()
        trace = _episode_trace(batch)
    return steps / (time.perf_counter() - started), trace


def _run_batched_sweeps(table, sweeps: int, cache=None):
    """The new path: one vector environment, one shared cache, lock-step waves."""
    space = ActionSpace(table)
    vector_env = VectorEnvironment.create(
        table,
        NUM_ENVS,
        episode_length=EPISODE_LENGTH,
        action_space=space,
        cache=cache,
    )
    policy = build_basic_policy(
        observation_size=vector_env.observation_size(),
        action_space=space,
        seed=POLICY_SEED,
    )
    policy.mask_provider = vector_env.environments[0].head_mask
    steps = 0
    trace = None
    started = time.perf_counter()
    for _ in range(sweeps):
        batch = collect_rollouts(vector_env, policy, seed=SEED)
        steps += batch.total_steps()
        trace = _episode_trace(batch)
    return steps / (time.perf_counter() - started), trace, vector_env


def _run_rollout_benchmark():
    table = load_dataset("flights", num_rows=scale(3000, 20000))
    sweeps = scale(6, 8)
    workloads = []

    # -- batched vs sequential ----------------------------------------------------
    _run_sequential_sweeps(table, 1)  # warm-up: dataset/action-space memos
    sequential_sps, sequential_trace = _run_sequential_sweeps(table, sweeps)
    batched_sps, batched_trace, vector_env = _run_batched_sweeps(table, sweeps)
    workloads.append(
        {
            "workload": f"rollouts: {NUM_ENVS}-env batched vs sequential",
            "kind": "batched_rollouts",
            "sweeps": sweeps,
            "sequential_steps_per_s": round(sequential_sps, 1),
            "batched_steps_per_s": round(batched_sps, 1),
            "speedup": round(batched_sps / sequential_sps, 2),
            "bit_identical": batched_trace == sequential_trace,
            "shared_cache": vector_env.cache_stats(),
        }
    )

    # -- cold vs warm disk tier ---------------------------------------------------
    tier_dir = tempfile.mkdtemp(prefix="repro-rollout-bench-")
    try:
        db_path = Path(tier_dir) / "execution_cache.sqlite"
        cold_cache = TieredExecutionCache(db_path)
        cold_sps, cold_trace, _ = _run_batched_sweeps(table, sweeps, cache=cold_cache)
        cold_summary = cold_cache.describe()
        cold_cache.close()

        # A fresh process's perspective: empty memory tier, same sqlite file.
        warm_cache = TieredExecutionCache(db_path)
        warm_sps, warm_trace, _ = _run_batched_sweeps(table, sweeps, cache=warm_cache)
        warm_summary = warm_cache.describe()
        warm_cache.close()
        disk_lookups = warm_summary["disk_hits"] + warm_summary["disk_misses"]
        workloads.append(
            {
                "workload": "disk tier: warm-start sweep vs cold",
                "kind": "disk_tier",
                "sweeps": sweeps,
                "cold_steps_per_s": round(cold_sps, 1),
                "warm_steps_per_s": round(warm_sps, 1),
                "speedup": round(warm_sps / cold_sps, 2),
                "warm_combined_hit_rate": warm_summary["hit_rate"],
                "warm_disk_hit_rate": (
                    round(warm_summary["disk_hits"] / disk_lookups, 4)
                    if disk_lookups
                    else 0.0
                ),
                "warm_disk_hits": warm_summary["disk_hits"],
                "warm_disk_misses": warm_summary["disk_misses"],
                "disk_entries": warm_summary["disk_entries"],
                "bit_identical": warm_trace == cold_trace,
            }
        )
    finally:
        shutil.rmtree(tier_dir, ignore_errors=True)
    return workloads


def _emit_json(rows: list[dict]) -> None:
    payload = {
        "benchmark": "batched_rollouts_and_tiered_cache",
        "dataset": "flights",
        "num_envs": NUM_ENVS,
        "gates": {
            "min_batched_speedup": MIN_BATCHED_SPEEDUP,
            "min_warm_hit_rate": MIN_WARM_HIT_RATE,
        },
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_rollout_speedups(benchmark):
    rows = benchmark.pedantic(_run_rollout_benchmark, iterations=1, rounds=1)
    for row in rows:
        printable = {k: v for k, v in row.items() if not isinstance(v, dict)}
        print_table(row["workload"], [printable])
    _emit_json(rows)
    assert all(row["bit_identical"] for row in rows)
    for row in rows:
        if row["kind"] == "batched_rollouts":
            assert row["speedup"] >= MIN_BATCHED_SPEEDUP, row
        elif row["kind"] == "disk_tier":
            assert row["warm_disk_hit_rate"] >= MIN_WARM_HIT_RATE, row
            assert row["warm_disk_hits"] > 0, row
