"""Benchmark — distributed training fleet vs the single-process trainer.

One workload on the flights dataset, mirroring how the training tier runs:
the same :class:`~repro.train.checkpoint.TrainSpec` trained to completion

* **single-process** — ``spec.build_agent(num_envs=4)`` + ``agent.run()``:
  one process collects every 4-env wave, verifies/scores each episode and
  applies every update (the status quo), and
* **fleet** — :class:`~repro.train.learner.FleetLearner` with 2 actor
  processes x 2 envs each: actors collect and score waves in parallel,
  the learner applies the identical updates.

Because wave episodes draw from per-episode RNG streams and always use the
wave-start weights, the two runs must finish with **bit-identical network
weights** (asserted, always gates) — the entire ratio is collection
parallelism, not behaviour change.

Results land in ``BENCH_training.json`` in the repository root.

Acceptance gates (enforced as assertions, run in CI):

* final weights and training history are bit-identical across the two
  runs (always gates, on any machine),
* the fleet reaches >= 1.5x the single-process episodes/sec — enforced
  only when the machine has enough CPU cores for the actor processes to
  actually run in parallel (``cores >= num_actors + 1``).  On a
  single-core runner there is no parallelism to measure, so the ratio is
  recorded but not gated; ``REPRO_BENCH_MIN_FLEET_SPEEDUP`` relaxes the
  gate on noisy shared runners.  The JSON records which decision applied.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_table, scale

from repro.cdrl.agent import CdrlConfig
from repro.train.checkpoint import TrainSpec
from repro.train.learner import FleetLearner

#: Minimum fleet/single-process episodes-per-second ratio.  Wall-clock
#: ratios are load-sensitive, so noisy shared runners may lower the gate
#: via the environment; the bit-identity assertion always gates.
MIN_FLEET_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FLEET_SPEEDUP", "1.5"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

NUM_ACTORS = 2
ENVS_PER_ACTOR = 2
EPISODE_LENGTH = 6
SEED = 0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: The fleet runs ``NUM_ACTORS`` collector processes next to the learner;
#: with fewer cores than that the actors time-slice a single core and the
#: per-wave IPC is pure overhead — there is no parallel speedup to gate.
SPEEDUP_GATED = _available_cpus() >= NUM_ACTORS + 1

LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""


def _spec(episodes: int) -> TrainSpec:
    return TrainSpec(
        dataset="flights",
        ldx_text=LDX,
        num_rows=scale(10_000, 40_000),
        config=CdrlConfig(
            episodes=episodes, episode_length=EPISODE_LENGTH, seed=SEED
        ),
    )


def _run_training_benchmark():
    episodes = scale(32, 128)
    spec = _spec(episodes)
    # Warm-up: dataset generation + action-space memos for this process
    # (actor processes pay their own inside the timed fleet run, which is
    # part of what the fleet must amortise to win).
    spec.build_agent(num_envs=1)

    started = time.perf_counter()
    baseline = spec.build_agent(num_envs=NUM_ACTORS * ENVS_PER_ACTOR)
    baseline_result = baseline.run()
    single_seconds = time.perf_counter() - started
    baseline_weights = baseline.trainer.policy.network.export_state()

    with FleetLearner(
        spec,
        num_actors=NUM_ACTORS,
        envs_per_actor=ENVS_PER_ACTOR,
        workers="process",
    ) as learner:
        started = time.perf_counter()
        fleet_result = learner.train()
        fleet_seconds = time.perf_counter() - started
        fleet_weights = learner.trainer.policy.network.export_state()

    def _fields(history):
        payload = history.to_dict()
        return {
            key: payload[key]
            for key in ("episode_returns", "episode_steps", "greedy_returns")
        }

    return [
        {
            "workload": (
                f"training: {NUM_ACTORS} actors x {ENVS_PER_ACTOR} envs "
                f"vs single-process num_envs={NUM_ACTORS * ENVS_PER_ACTOR}"
            ),
            "kind": "fleet_training",
            "episodes": episodes,
            "num_rows": spec.num_rows,
            "single_eps_per_s": round(episodes / single_seconds, 2),
            "fleet_eps_per_s": round(episodes / fleet_seconds, 2),
            "single_seconds": round(single_seconds, 3),
            "fleet_seconds": round(fleet_seconds, 3),
            "speedup": round(single_seconds / fleet_seconds, 2),
            "bit_identical": (
                fleet_weights == baseline_weights
                and fleet_result.utility_score == baseline_result.utility_score
                and _fields(fleet_result.history)
                == _fields(baseline_result.history)
            ),
        }
    ]


def _emit_json(rows: list[dict]) -> None:
    payload = {
        "benchmark": "fleet_training",
        "dataset": "flights",
        "num_actors": NUM_ACTORS,
        "envs_per_actor": ENVS_PER_ACTOR,
        "cpus": _available_cpus(),
        "gates": {
            "min_fleet_speedup": MIN_FLEET_SPEEDUP,
            "speedup_gated": SPEEDUP_GATED,
            "bit_identical_gated": True,
        },
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_fleet_training_speedup(benchmark):
    rows = benchmark.pedantic(_run_training_benchmark, iterations=1, rounds=1)
    for row in rows:
        print_table(row["workload"], [row])
    _emit_json(rows)
    assert all(row["bit_identical"] for row in rows)
    if not SPEEDUP_GATED:
        print(
            f"speedup gate skipped: {_available_cpus()} cpu(s) < "
            f"{NUM_ACTORS + 1} needed for {NUM_ACTORS} parallel actors"
        )
        return
    for row in rows:
        assert row["speedup"] >= MIN_FLEET_SPEEDUP, row
