"""Figure 5 — Relevance (to goal) rating of exploration notebooks per dataset.

Runs the simulated user study and reports the mean relevance rating (1-7) of
every system for each dataset.  Shape to reproduce: Human Expert ≳ LINX ≫
ChatGPT ≳ ATENA / Google Sheets.
"""

from __future__ import annotations

from conftest import print_table
from study_workload import study_outcome


def test_fig5_relevance(benchmark):
    outcome = benchmark.pedantic(study_outcome, iterations=1, rounds=1)
    relevance = outcome.relevance_by_dataset()
    rows = [
        {"system": system, **{ds: round(score, 2) for ds, score in per_dataset.items()}}
        for system, per_dataset in relevance.items()
    ]
    print_table("Figure 5: Relevance Rating per Dataset", rows)

    overall = {system: outcome.mean(system, "relevance") for system in relevance}
    print("Overall relevance:", {k: round(v, 2) for k, v in overall.items()})
    assert overall["LINX"] > overall["ATENA"]
    assert overall["LINX"] > overall["Google Sheets"]
    assert overall["LINX"] > overall["ChatGPT"]
    assert overall["Human Expert"] >= overall["LINX"] - 0.5
