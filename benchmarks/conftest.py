"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 7).  Workload sizes are laptop-scale by default; set the
``REPRO_FULL=1`` environment variable for larger runs (more episodes, more
benchmark instances) that get closer to the paper's training budgets.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """True when the REPRO_FULL environment variable requests a full-scale run."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def scale(small: int, full: int) -> int:
    """Pick the workload size depending on the REPRO_FULL switch."""
    return full if full_scale() else small


@pytest.fixture(scope="session")
def corpus():
    """The 182-instance goal-oriented ADE benchmark (generated once per session)."""
    from repro.bench import generate_benchmark

    return generate_benchmark()


def print_table(title: str, rows: list[dict]) -> None:
    """Print a result table in a uniform, grep-friendly format."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0])
    print(" | ".join(str(c) for c in columns))
    for row in rows:
        print(" | ".join(str(row[c]) for c in columns))
