"""Benchmark — memoized query execution vs. the uncached baseline.

Measures the :class:`~repro.explore.cache.ExecutionCache` on the two
workloads the exploration agents actually run:

* **repeated-episode rollouts** — the same factored action sequences are
  replayed across episodes (as the policy's behaviour stabilises during
  training); reports steps/sec with and without the cache;
* **a standard training workload** — a short LINX-CDRL training run (the
  paper's specification-constrained agent) whose environment keeps one
  shared cache; reports the cache hit-rate.

Acceptance gates (enforced as assertions, run in CI):

* cached rollouts reach >= 3x the uncached steps/sec,
* the training workload sees >= 50% cache hit-rate,
* cached results are identical to uncached execution (same sessions,
  row for row).
"""

from __future__ import annotations

import os
import time

from conftest import print_table, scale

from repro.cdrl import CdrlConfig, LinxCdrlAgent
from repro.datasets import load_dataset
from repro.explore import ActionChoice, ExplorationEnvironment

#: Minimum cached/uncached steps-per-second ratio (acceptance criterion).
#: Wall-clock ratios are load-sensitive, so noisy shared runners may lower
#: the gate via REPRO_BENCH_MIN_SPEEDUP; the hit-rate and identical-results
#: assertions stay deterministic and always gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Minimum cache hit-rate on the training workload (acceptance criterion).
MIN_HIT_RATE = 0.5

EPISODE_LENGTH = 6
DISTINCT_EPISODES = 8


def _episode_choices(num_episodes: int, length: int, seed: int = 7) -> list[list[ActionChoice]]:
    """Deterministic pseudo-random factored choices (LCG; no RNG imports)."""
    state = seed
    episodes: list[list[ActionChoice]] = []
    for _ in range(num_episodes):
        choices: list[ActionChoice] = []
        for _ in range(length):
            state = (1103515245 * state + 12345) % (2**31)
            choices.append(
                ActionChoice(
                    action_type=1 + state % 2,
                    filter_attr=(state >> 3) % 97,
                    filter_op=(state >> 5) % 7,
                    filter_term=(state >> 7) % 13,
                    group_attr=(state >> 9) % 11,
                    agg_func=(state >> 11) % 5,
                    agg_attr=(state >> 13) % 5,
                )
            )
        episodes.append(choices)
    return episodes


def _steps_per_second(env: ExplorationEnvironment, episodes, repeats: int) -> float:
    steps = 0
    start = time.perf_counter()
    for _ in range(repeats):
        for choices in episodes:
            env.rollout(choices)
            steps += len(choices)
    return steps / (time.perf_counter() - start)


def _sessions_identical(a, b) -> bool:
    """Row-for-row equality of two sessions' trees (views included)."""
    nodes_a, nodes_b = a.query_nodes(), b.query_nodes()
    if len(nodes_a) != len(nodes_b):
        return False
    for node_a, node_b in zip(nodes_a, nodes_b):
        if node_a.signature() != node_b.signature():
            return False
        if node_a.view != node_b.view or node_a.view.to_records() != node_b.view.to_records():
            return False
    return True


def _run_cache_benchmark():
    dataset = load_dataset("flights", num_rows=scale(600, 3000))
    episodes = _episode_choices(DISTINCT_EPISODES, EPISODE_LENGTH)
    repeats = scale(8, 40)

    uncached_env = ExplorationEnvironment(
        dataset, episode_length=EPISODE_LENGTH, enable_cache=False
    )
    cached_env = ExplorationEnvironment(dataset, episode_length=EPISODE_LENGTH)

    # Correctness first: cached replay must reproduce the uncached sessions.
    identical = True
    for choices in episodes:
        session_uncached, _ = uncached_env.rollout(choices)
        session_cached, _ = cached_env.rollout(choices)
        identical = identical and _sessions_identical(session_uncached, session_cached)

    # Warm-up pass for both arms, then timed passes.
    _steps_per_second(uncached_env, episodes, 1)
    _steps_per_second(cached_env, episodes, 1)
    uncached_sps = _steps_per_second(uncached_env, episodes, repeats)
    cached_sps = _steps_per_second(cached_env, episodes, repeats)
    rollout_stats = cached_env.cache_stats()

    # Standard training workload: a short LINX-CDRL run on its own shared
    # cache (fresh, so the hit-rate is not inherited from the rollouts).
    training_dataset = load_dataset("netflix", num_rows=scale(600, 2000))
    ldx = (
        "ROOT CHILDREN <B1,B2>\n"
        "B1 LIKE [F,type,eq,(?<X>.*)] and CHILDREN {C1}\n"
        "C1 LIKE [G,(?<Y>.*),count,.*]\n"
        "B2 LIKE [F,type,neq,(?<X>.*)] and CHILDREN {C2}\n"
        "C2 LIKE [G,(?<Y>.*),count,.*]\n"
    )
    agent = LinxCdrlAgent(
        training_dataset,
        ldx,
        config=CdrlConfig(episodes=scale(30, 150), seed=0, hidden_sizes=(16,)),
    )
    history = agent.run().history
    training_stats = history.cache_stats or {}

    return [
        {
            "workload": "repeated rollouts",
            "uncached_steps_per_s": round(uncached_sps, 1),
            "cached_steps_per_s": round(cached_sps, 1),
            "speedup": round(cached_sps / uncached_sps, 2),
            "hit_rate": rollout_stats["hit_rate"],
            "identical_results": identical,
        },
        {
            "workload": "CDRL training",
            "uncached_steps_per_s": "n/a",
            "cached_steps_per_s": "n/a",
            "speedup": "n/a",
            "hit_rate": training_stats.get("hit_rate", 0.0),
            "identical_results": "n/a",
        },
    ]


def test_exec_cache_speedup(benchmark):
    rows = benchmark.pedantic(_run_cache_benchmark, iterations=1, rounds=1)
    print_table("Execution cache: steps/sec and hit-rate", rows)
    rollout_row, training_row = rows
    assert rollout_row["identical_results"] is True
    assert rollout_row["speedup"] >= MIN_SPEEDUP
    assert rollout_row["hit_rate"] >= MIN_HIT_RATE
    assert training_row["hit_rate"] >= MIN_HIT_RATE
