"""Figure 8 — Convergence comparison of LINX-CDRL and ATENA.

Trains the LINX agent on one comparison query per dataset alongside the
goal-agnostic ATENA agent and reports the normalised reward curves (fraction
of the best smoothed reward reached after 25%, 50%, 75% and 100% of
training).  Shape to reproduce: despite the richer reward and network, LINX
converges at a pace comparable to ATENA.
"""

from __future__ import annotations

from conftest import print_table, scale

from repro.baselines import AtenaAgent, AtenaConfig
from repro.bench import generate_benchmark
from repro.cdrl import CdrlConfig, LinxCdrlAgent
from repro.datasets import load_dataset
from repro.study import default_study_tasks


def _curve_points(history, points=(0.25, 0.5, 0.75, 1.0)):
    curve = history.normalised_curve(window=10)
    if not curve:
        return {f"{int(p * 100)}%": 0.0 for p in points}
    return {
        f"{int(p * 100)}%": round(curve[min(len(curve) - 1, int(p * len(curve)) - 1)], 2)
        for p in points
    }


def _run_convergence():
    corpus = generate_benchmark()
    tasks = default_study_tasks(corpus, per_dataset=1)
    episodes = scale(80, 800)
    rows = []
    for task in tasks:
        dataset = load_dataset(task.dataset, num_rows=scale(300, 2000))
        linx = LinxCdrlAgent(dataset, task.ldx_text, config=CdrlConfig(episodes=episodes))
        linx_result = linx.run()
        atena = AtenaAgent(dataset, config=AtenaConfig(episodes=episodes))
        atena_result = atena.run()
        rows.append(
            {
                "dataset": task.dataset,
                "system": f"LINX g{task.meta_goal_id}",
                **_curve_points(linx_result.history),
                "compliant": linx_result.fully_compliant,
            }
        )
        rows.append(
            {
                "dataset": task.dataset,
                "system": "ATENA",
                **_curve_points(atena_result.history),
                "compliant": "n/a",
            }
        )
    return rows


def test_fig8_convergence(benchmark):
    rows = benchmark.pedantic(_run_convergence, iterations=1, rounds=1)
    print_table("Figure 8: Convergence Comparison to ATENA", rows)
    linx_rows = [row for row in rows if row["system"].startswith("LINX")]
    # Every LINX run must end near its best observed reward and be compliant.
    assert all(row["100%"] >= 0.5 for row in linx_rows)
    assert all(row["compliant"] for row in linx_rows)
