"""Benchmark — lazy query planner: fused execution and plan-level caching.

Two workloads on the flights dataset, mirroring how exploration pipelines
actually execute:

* **fused vs eager 4-op chains** — a filter→filter→filter→group-by chain
  executed the status-quo way (one operation at a time, each filter
  materialising an intermediate view) against
  :meth:`~repro.explore.executor.QueryExecutor.execute_plan`, which
  AND-combines the three predicate masks and feeds the combined mask
  straight into the group-by factorisation — zero intermediate views.
  Both paths run uncached so the ratio is pure execution, and the fused
  result must be bit-identical to the eager one (asserted).
* **plan-cache sharing across commuted orderings** — the same filter chain
  submitted in a different order hits the canonical-plan cache entry of
  the first submission, in the memory tier and — from a fresh process's
  perspective (new memory tier, same sqlite file) — in the disk tier.

Results land in ``BENCH_planner.json`` in the repository root.

Acceptance gates (enforced as assertions, run in CI):

* fused plan execution reaches >= 2x the eager ops/sec on 4-op chains,
* commuted orderings are served from the plan cache in both tiers
  (``plan_hits`` > 0, warm ``disk_hits`` > 0),
* fused results are bit-identical to the eager reference.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import print_table, scale

from repro.datasets import load_dataset
from repro.explore.cache import ExecutionCache
from repro.explore.diskcache import TieredExecutionCache
from repro.explore.executor import QueryExecutor
from repro.explore.operations import FilterOperation, GroupAggOperation
from repro.plan import canonicalize, plan_from_operations

#: Minimum fused/eager ops-per-second ratio (acceptance criterion).
#: Wall-clock ratios are load-sensitive, so noisy shared runners may lower
#: the gate via the environment; the bit-identity assertions always gate.
MIN_FUSED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FUSED_SPEEDUP", "2.0"))

#: Where the machine-readable result lands (repository root).
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

#: A 4-operation chain with keep-most filters (the common exploration shape:
#: narrowing predicates that keep the bulk of the rows, then an aggregate).
CHAIN = [
    FilterOperation("distance", "gt", 50),
    FilterOperation("month", "le", 11),
    FilterOperation("day_of_week", "ge", 1),
    GroupAggOperation("airline", "mean", "departure_delay"),
]
#: The same chain with the filters commuted (same canonical plan).
COMMUTED_CHAIN = [CHAIN[2], CHAIN[0], CHAIN[1], CHAIN[3]]


def _run_eager(table, operations):
    executor = QueryExecutor()  # uncached: measure pure execution
    view = table
    for operation in operations:
        view = executor.execute(view, operation)
    return view


def _run_fused(table, plan):
    return QueryExecutor().execute_plan(table, plan)


def _run_planner_benchmark():
    table = load_dataset("flights", num_rows=scale(20000, 100000))
    iterations = scale(40, 80)
    workloads = []

    # -- fused vs eager -----------------------------------------------------------
    plan = canonicalize(plan_from_operations(CHAIN))
    eager_result = _run_eager(table, CHAIN)  # warm-up + reference
    fused_result = _run_fused(table, plan)
    bit_identical = (
        fused_result == eager_result
        and fused_result.fingerprint() == eager_result.fingerprint()
    )

    started = time.perf_counter()
    for _ in range(iterations):
        _run_eager(table, CHAIN)
    eager_ops_per_s = iterations * len(CHAIN) / (time.perf_counter() - started)

    started = time.perf_counter()
    for _ in range(iterations):
        _run_fused(table, plan)
    fused_ops_per_s = iterations * len(CHAIN) / (time.perf_counter() - started)

    workloads.append(
        {
            "workload": "fused plan vs eager per-op execution (4-op chain)",
            "kind": "fused_execution",
            "rows": len(table),
            "iterations": iterations,
            "eager_ops_per_s": round(eager_ops_per_s, 1),
            "fused_ops_per_s": round(fused_ops_per_s, 1),
            "speedup": round(fused_ops_per_s / eager_ops_per_s, 2),
            "bit_identical": bit_identical,
        }
    )

    # -- plan-cache sharing across commuted orderings -----------------------------
    cache = ExecutionCache()
    executor = QueryExecutor(cache=cache)
    started = time.perf_counter()
    cold_result = executor.execute_plan(table, plan_from_operations(CHAIN))
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    commuted_result = executor.execute_plan(table, plan_from_operations(COMMUTED_CHAIN))
    commuted_seconds = time.perf_counter() - started
    memory_summary = cache.describe()

    tier_dir = tempfile.mkdtemp(prefix="repro-planner-bench-")
    try:
        db_path = Path(tier_dir) / "execution_cache.sqlite"
        cold_tier = TieredExecutionCache(db_path)
        QueryExecutor(cache=cold_tier).execute_plan(
            table, plan_from_operations(CHAIN)
        )
        cold_tier.close()  # flushes the write-behind buffer
        # A fresh process's perspective: empty memory tier, same sqlite file.
        warm_tier = TieredExecutionCache(db_path)
        warm_result = QueryExecutor(cache=warm_tier).execute_plan(
            table, plan_from_operations(COMMUTED_CHAIN)
        )
        warm_summary = warm_tier.describe()
        warm_tier.close()
    finally:
        shutil.rmtree(tier_dir, ignore_errors=True)

    workloads.append(
        {
            "workload": "plan cache: commuted filter orderings share entries",
            "kind": "plan_cache",
            "rows": len(table),
            "cold_seconds": round(cold_seconds, 4),
            "commuted_seconds": round(commuted_seconds, 4),
            "speedup": round(cold_seconds / max(commuted_seconds, 1e-9), 2),
            "memory_plan_hits": memory_summary["plan_hits"],
            "memory_plan_entries": memory_summary["plan_entries"],
            "fusion_count": memory_summary["fusion_count"],
            "disk_plan_hits": warm_summary["plan_hits"],
            "disk_hits": warm_summary["disk_hits"],
            "bit_identical": (
                commuted_result is cold_result
                and warm_result.fingerprint() == cold_result.fingerprint()
            ),
        }
    )
    return workloads


def _emit_json(rows: list[dict]) -> None:
    payload = {
        "benchmark": "lazy_query_planner",
        "dataset": "flights",
        "chain": [list(op.signature()) for op in CHAIN],
        "gates": {"min_fused_speedup": MIN_FUSED_SPEEDUP},
        "workloads": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_planner_speedups(benchmark):
    rows = benchmark.pedantic(_run_planner_benchmark, iterations=1, rounds=1)
    for row in rows:
        printable = {k: v for k, v in row.items() if not isinstance(v, dict)}
        print_table(row["workload"], [printable])
    _emit_json(rows)
    assert all(row["bit_identical"] for row in rows)
    for row in rows:
        if row["kind"] == "fused_execution":
            assert row["speedup"] >= MIN_FUSED_SPEEDUP, row
        elif row["kind"] == "plan_cache":
            assert row["memory_plan_hits"] >= 1, row
            assert row["disk_plan_hits"] >= 1, row
            assert row["disk_hits"] >= 1, row
