"""Fault-tolerance walkthrough: a replica cluster surviving a crash.

PR 9 made the serving tier multi-replica: several server processes share
one `ResultStore` file, and a **lease table** inside it coordinates them —
before executing a request, a replica atomically claims its canonical
hash, so duplicated submissions across the cluster execute exactly once.
A heartbeat renews held leases; a replica that dies stops renewing, its
leases expire after `lease_ttl`, and a surviving replica *takes over* the
work without operator intervention.

This script makes the failure visible:

1. boots three replicas (separate processes) over one store directory,
2. scripts replica 0 to hard-crash (`os._exit`) the instant its first
   execution lease commits — the nastiest moment, since the lease is now
   durably held by a corpse,
3. submits the same request to every replica, watches the survivors wait
   out the corpse's lease and take over,
4. prints the execution journal: one ``execute`` and one ``commit`` line
   per canonical hash, cluster-wide.

The deterministic fault harness (`repro.engine.faults`) drives step 2 —
the same `FaultPlan` mechanism the CI fault matrix uses.  Run with::

    python examples/serve_cluster.py
"""

import json
import multiprocessing
import tempfile
import time
from collections import Counter
from pathlib import Path

from repro.engine.serve_cluster import (
    CRASH_EXIT_CODE,
    LEASE_TTL,
    _call,
    _replica_main,
    _request_payload,
)
from repro.engine.faults import FaultPlan


def main() -> None:
    context = multiprocessing.get_context("spawn")
    crash_plan = FaultPlan.crash_after_claim(exit_code=CRASH_EXIT_CODE).to_json()

    with tempfile.TemporaryDirectory(prefix="linx-cluster-demo-") as root:
        port_queue = context.Queue()
        procs = [
            context.Process(
                target=_replica_main,
                args=(index, root, port_queue, crash_plan if index == 0 else None),
                daemon=True,
            )
            for index in range(3)
        ]
        for proc in procs:
            proc.start()
        ports = dict(port_queue.get(timeout=300) for _ in range(3))
        print(f"replicas up: {ports}")
        print("replica 0 is scripted to crash the moment its first lease commits\n")

        try:
            # The same canonical request to every replica: one must die
            # holding the lease, another must take over.
            payload = _request_payload(unique=0, submission=0)
            for index in sorted(ports):
                body = dict(payload, request_id=f"demo-via-replica-{index}")
                try:
                    status, submitted = _call(ports[index], "POST", "/requests", body)
                    print(f"replica {index}: submit -> {status} "
                          f"ticket={submitted.get('ticket')}")
                except OSError:
                    # The scripted crash fires while this very submit is in
                    # flight: the lease commits, the process hard-exits, and
                    # the connection drops before a response is written.
                    print(f"replica {index}: connection dropped (crashed mid-request)")

            # Poll the survivors until one of them serves the result.
            result = None
            deadline = time.monotonic() + 120
            while result is None and time.monotonic() < deadline:
                for index in sorted(ports)[1:]:
                    body = dict(payload, request_id=f"demo-poll-{index}")
                    try:
                        status, submitted = _call(ports[index], "POST", "/requests", body)
                    except OSError:
                        continue
                    if status != 202:
                        continue
                    status, answer = _call(
                        ports[index], "GET",
                        f"/requests/{submitted['ticket']}/result",
                    )
                    if status == 200:
                        result = answer["result"]
                        print(f"\nreplica {index} served the result "
                              f"({len(result['operations'])} operations) after the "
                              f"takeover")
                        _, stats = _call(ports[index], "GET", "/stats")
                        print(f"lease takeovers: "
                              f"{stats['store']['leases']['takeovers']}, "
                              f"lease waits: {stats['scheduler']['leases']['waits']}")
                        break
                time.sleep(0.25)
            assert result is not None, "no survivor served the result in time"

            procs[0].join(timeout=30)
            print(f"\nreplica 0 exit code: {procs[0].exitcode} "
                  f"(scripted crash = {CRASH_EXIT_CODE}); lease TTL was {LEASE_TTL}s")

            journal = [
                json.loads(line)
                for line in (Path(root) / "executions.log").read_text().splitlines()
            ]
            per_action = Counter(entry["action"] for entry in journal)
            print(f"\nexecution journal ({per_action['execute']} execute, "
                  f"{per_action['commit']} commit):")
            for entry in journal:
                print(f"  {entry['action']:<8} {entry['request_hash'][:12]}… "
                      f"by {entry['replica']}")
            print("\nexactly-once: every hash has one execute and one commit, "
                  "even though three replicas were asked and one died mid-claim")
        finally:
            for proc in procs[1:]:
                proc.terminate()
            for proc in procs[1:]:
                proc.join(timeout=30)


if __name__ == "__main__":
    main()
