"""Compare LINX against the baselines on a Play Store analysis goal.

Reproduces, for a single goal, what the user study of Section 7.3 does at
scale: generate a notebook with LINX, ATENA, the ChatGPT-direct baseline and
the Sheets-Explorer-like baseline, then score each notebook's relevance with
the simulated rater panel and count goal-relevant insights.

The LINX and ATENA rows both run through the engine — ATENA plugs in as an
alternate session-generation stage (``AtenaSessionGenerator``), so the two
systems share the same request, pipeline and execution cache and differ only
in the generation stage.

Run with::

    python examples/playstore_compare_systems.py
"""

from repro.baselines import (
    AtenaConfig,
    ChatGptDirectBaseline,
    SheetsExplorerBaseline,
    specification_from_ldx,
)
from repro.cdrl import CdrlConfig
from repro.engine import AtenaSessionGenerator, ExploreRequest, LinxEngine
from repro.datasets import load_dataset
from repro.ldx import parse_ldx
from repro.study import SimulatedRaterPanel

GOAL = "Highlight interesting sub-groups of apps with at least 1M installs"
GOLD_LDX = """
ROOT CHILDREN <A1>
A1 LIKE [F,installs,ge,1000000] and CHILDREN {B1,+}
B1 LIKE [G,.*]
"""


def main() -> None:
    dataset = load_dataset("playstore", num_rows=1000)
    query = parse_ldx(GOLD_LDX)
    panel = SimulatedRaterPanel()

    request = ExploreRequest(
        goal=GOAL, dataset="playstore", num_rows=1000, ldx_text=GOLD_LDX
    )

    # Same engine shape, different generation stage: CDRL (LINX) vs ATENA.
    linx_engine = LinxEngine(cdrl_config=CdrlConfig(episodes=120))
    atena_engine = LinxEngine(
        session_generator=AtenaSessionGenerator(AtenaConfig(episodes=80)),
        cache=linx_engine.cache,  # both systems share one execution cache
    )

    sessions = {}
    sessions["LINX"] = linx_engine.explore(request).artifacts.session
    sessions["ATENA"] = atena_engine.explore(request).artifacts.session
    sessions["ChatGPT"] = ChatGptDirectBaseline().generate(dataset, GOAL)
    sessions["Google Sheets"] = SheetsExplorerBaseline().generate(
        dataset, specification_from_ldx(query, dataset)
    )

    print(f"Goal: {GOAL}\n")
    print(f"{'system':<15} {'relevance':>9} {'informativeness':>16} {'insights':>9}")
    for system, session in sessions.items():
        rating = panel.rate(system, session, GOAL, query, "playstore")
        print(
            f"{system:<15} {rating.relevance:>9.2f} {rating.informativeness:>16.2f} "
            f"{rating.relevant_insights:>9.2f}"
        )

    print(f"\nShared execution cache after both systems: {linx_engine.cache_stats()}")
    print("\nLINX session:")
    print(sessions["LINX"].describe())


if __name__ == "__main__":
    main()
