"""Compare LINX against the baselines on a Play Store analysis goal.

Reproduces, for a single goal, what the user study of Section 7.3 does at
scale: generate a notebook with LINX, ATENA, the ChatGPT-direct baseline and
the Sheets-Explorer-like baseline, then score each notebook's relevance with
the simulated rater panel and count goal-relevant insights.

Run with::

    python examples/playstore_compare_systems.py
"""

from repro.baselines import (
    AtenaAgent,
    AtenaConfig,
    ChatGptDirectBaseline,
    SheetsExplorerBaseline,
    specification_from_ldx,
)
from repro.cdrl import CdrlConfig, LinxCdrlAgent
from repro.datasets import load_dataset
from repro.ldx import parse_ldx
from repro.study import SimulatedRaterPanel

GOAL = "Highlight interesting sub-groups of apps with at least 1M installs"
GOLD_LDX = """
ROOT CHILDREN <A1>
A1 LIKE [F,installs,ge,1000000] and CHILDREN {B1,+}
B1 LIKE [G,.*]
"""


def main() -> None:
    dataset = load_dataset("playstore", num_rows=1000)
    query = parse_ldx(GOLD_LDX)
    panel = SimulatedRaterPanel()

    sessions = {}
    sessions["LINX"] = LinxCdrlAgent(
        dataset, GOLD_LDX, config=CdrlConfig(episodes=120)
    ).run().session
    sessions["ATENA"] = AtenaAgent(dataset, config=AtenaConfig(episodes=80)).run().session
    sessions["ChatGPT"] = ChatGptDirectBaseline().generate(dataset, GOAL)
    sessions["Google Sheets"] = SheetsExplorerBaseline().generate(
        dataset, specification_from_ldx(query, dataset)
    )

    print(f"Goal: {GOAL}\n")
    print(f"{'system':<15} {'relevance':>9} {'informativeness':>16} {'insights':>9}")
    for system, session in sessions.items():
        rating = panel.rate(system, session, GOAL, query, "playstore")
        print(
            f"{system:<15} {rating.relevance:>9.2f} {rating.informativeness:>16.2f} "
            f"{rating.relevant_insights:>9.2f}"
        )

    print("\nLINX session:")
    print(sessions["LINX"].describe())


if __name__ == "__main__":
    main()
