"""Goal-oriented exploration of the Flights dataset with hand-written LDX.

Demonstrates the "power user" path of LINX (and of the ATENA-PRO demo): the
analyst writes the LDX specification directly instead of describing the goal
in natural language, and the CDRL engine fills in the free parameters.

The specification below encodes meta-goal 5 ("describe an unusual subset"):
compare weather-delayed flights against all other flights with the same
group-and-aggregate view on both sides.

Run with::

    python examples/flights_delay_investigation.py
"""

from repro.cdrl import CdrlConfig, LinxCdrlAgent
from repro.datasets import load_dataset
from repro.notebook import extract_insights, render_notebook

WEATHER_DELAY_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""


def main() -> None:
    dataset = load_dataset("flights", num_rows=1200)
    print("Specification (hand-written LDX):")
    print(WEATHER_DELAY_LDX)

    agent = LinxCdrlAgent(dataset, WEATHER_DELAY_LDX, config=CdrlConfig(episodes=150))
    result = agent.run()

    print(f"Fully compliant: {result.fully_compliant}")
    print(f"Exploration utility score: {result.utility_score:.3f}")
    print(f"Training episodes: {result.episodes_trained}")
    print()
    print(result.session.describe())
    print()

    notebook = render_notebook(
        result.session, goal="Highlight distinctive characteristics of weather-delayed flights"
    )
    print(notebook.to_markdown())

    print("\nInsights:")
    for insight in extract_insights(result.session)[:5]:
        print(f"  - {insight.text}")


if __name__ == "__main__":
    main()
