"""Goal-oriented exploration of the Flights dataset with hand-written LDX.

Demonstrates the "power user" path of LINX (and of the ATENA-PRO demo)
through the engine API: the analyst writes the LDX specification directly
instead of describing the goal in natural language — the derivation stage is
skipped — and the CDRL engine fills in the free parameters.  A progress
observer streams stage transitions and per-episode training ticks.

The specification below encodes meta-goal 5 ("describe an unusual subset"):
compare weather-delayed flights against all other flights with the same
group-and-aggregate view on both sides.

Run with::

    python examples/flights_delay_investigation.py
"""

from repro.cdrl import CdrlConfig
from repro.engine import EVENT_EPISODE, ExploreRequest, LinxEngine, ProgressEvent

WEATHER_DELAY_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""


def on_progress(event: ProgressEvent) -> None:
    if event.kind == EVENT_EPISODE:
        episode = event.payload["episode"]
        if episode % 50 == 0:
            print(f"  ... episode {episode}, return {event.payload['return']:.2f}")
    else:
        print(f"  {event}")


def main() -> None:
    print("Specification (hand-written LDX):")
    print(WEATHER_DELAY_LDX)

    engine = LinxEngine(cdrl_config=CdrlConfig(episodes=150))
    request = ExploreRequest(
        goal="Highlight distinctive characteristics of weather-delayed flights",
        dataset="flights",
        num_rows=1200,
        ldx_text=WEATHER_DELAY_LDX,
        request_id="weather-delays",
    )
    print("Progress:")
    result = engine.explore(request, observer=on_progress)

    print(f"\nFully compliant: {result.fully_compliant}")
    print(f"Exploration utility score: {result.utility_score:.3f}")
    print(f"Training episodes: {result.episodes_trained}")
    print(f"Cache stats: {result.cache_stats}")
    print()
    print(result.artifacts.session.describe())
    print()
    print(result.notebook_markdown)

    print("\nInsights:")
    for insight in result.insights[:5]:
        print(f"  - {insight['text']}")


if __name__ == "__main__":
    main()
