"""Commuted pipelines share one plan-cache entry — a tour of the lazy planner.

Two analysts narrow the flights dataset with the same two predicates in
opposite orders and then aggregate.  Syntactically these are different
operation lists; semantically they are one relation.  The planner
canonicalizes both to one `LogicalPlan`, so the second pipeline is served
from the cache entry the first one wrote — no re-execution, in the memory
tier and (shown at the end) across processes through the sqlite disk tier.

Run with:  PYTHONPATH=src python examples/plan_cache.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets import load_dataset
from repro.explore.cache import ExecutionCache
from repro.explore.diskcache import TieredExecutionCache
from repro.explore.executor import QueryExecutor
from repro.explore.operations import FilterOperation, GroupAggOperation
from repro.explore.session import session_from_operations
from repro.plan import canonicalize, plan_from_operations

PIPELINE_A = [
    FilterOperation("airline", "eq", "AA"),
    FilterOperation("distance", "gt", 500),
    GroupAggOperation("month", "mean", "departure_delay"),
]
# The same pipeline with its filters commuted.
PIPELINE_B = [PIPELINE_A[1], PIPELINE_A[0], PIPELINE_A[2]]


def main() -> None:
    flights = load_dataset("flights", num_rows=2000)

    plan_a = canonicalize(plan_from_operations(PIPELINE_A))
    plan_b = canonicalize(plan_from_operations(PIPELINE_B))
    print("pipeline A:", " -> ".join(op.describe() for op in PIPELINE_A))
    print("pipeline B:", " -> ".join(op.describe() for op in PIPELINE_B))
    print("canonical plan (both):", plan_a.describe())
    assert plan_a == plan_b and plan_a.fingerprint() == plan_b.fingerprint()

    # -- memory tier: the commuted replay is a pure plan hit ----------------
    cache = ExecutionCache()
    session_a = session_from_operations(flights, PIPELINE_A, cache=cache)
    print(
        f"\nafter pipeline A: entries={len(cache)} "
        f"plan_hits={cache.stats.plan_hits} fusions={cache.stats.fusion_count}"
    )
    session_b = session_from_operations(flights, PIPELINE_B, cache=cache)
    print(
        f"after pipeline B: entries={len(cache)} "
        f"plan_hits={cache.stats.plan_hits} (B's final view came from A's entry)"
    )
    assert session_a.current.view == session_b.current.view

    # -- fused whole-plan execution is bit-identical to the step path -------
    fused = QueryExecutor().execute_plan(flights, plan_a)
    assert fused.fingerprint() == session_a.current.view.fingerprint()
    print("\nfused execute_plan() result (bit-identical to the eager path):")
    for record in fused.to_records()[:3]:
        print(" ", record)

    # -- disk tier: a second process's commuted pipeline warm-starts --------
    with tempfile.TemporaryDirectory(prefix="plan-cache-example-") as tmp:
        db_path = Path(tmp) / "execution_cache.sqlite"
        first = TieredExecutionCache(db_path)
        QueryExecutor(cache=first).execute_plan(flights, plan_from_operations(PIPELINE_A))
        first.close()  # flush the write-behind buffer

        second = TieredExecutionCache(db_path)  # fresh memory tier, same file
        QueryExecutor(cache=second).execute_plan(
            flights, plan_from_operations(PIPELINE_B)
        )
        summary = second.describe()
        print(
            f"\nsecond process, commuted order: disk_hits={summary['disk_hits']} "
            f"plan_hits={summary['plan_hits']} (served from the first process's entry)"
        )
        second.close()


if __name__ == "__main__":
    main()
