"""Sustained-load walkthrough: continuous cross-request batching.

Boots the HTTP serving stack twice on an ephemeral port — once with
per-request inference (the status quo) and once with
``inference_batching=True``, where the engine's ``InferenceBatcher``
coalesces every concurrent request's policy forwards into shared waves —
then fires the same burst of 8 concurrent CDRL requests at each and prints
the throughput, latency, and wave-occupancy comparison.

Batching is invisible in the payloads: for every seed the served result is
bit-identical between the two modes (asserted below, modulo per-stage
timings and load-dependent cache deltas).

Run with::

    python examples/serve_load.py
"""

import http.client
import json
import threading
import time

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, LinxEngine, RequestScheduler
from repro.engine.server import ServerThread

CLIENTS = 8
EPISODES = 40

LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),count,.*]
A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),count,.*]
"""


def call(port: int, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON request against the local server."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        connection.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def wait_done(port: int, ticket: str) -> None:
    """Block on the ticket's SSE stream until the server closes it."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        connection.request("GET", f"/requests/{ticket}/events")
        response = connection.getresponse()
        while response.readline():
            pass
    finally:
        connection.close()


def request(index: int) -> ExploreRequest:
    return ExploreRequest(
        goal="Find a country with different viewing habits than the rest",
        dataset="netflix",
        num_rows=400,
        ldx_text=LDX,
        episodes=EPISODES,
        seed=index,
        request_id=f"load-{index}",
    )


def strip_timings(payload: dict) -> dict:
    clean = json.loads(json.dumps(payload))
    clean.pop("cache_stats", None)
    for stage in clean.get("stages", []):
        stage.pop("seconds", None)
    return clean


def run_burst(batched: bool):
    """One 8-client burst against a fresh server; returns (wall, latencies, ...)."""
    engine = LinxEngine(
        cdrl_config=CdrlConfig(episodes=EPISODES),
        inference_batching=batched,
        batch_linger_ms=30.0,
    )
    scheduler = RequestScheduler(engine, max_workers=CLIENTS, default_timeout=600)
    latencies = [0.0] * CLIENTS
    payloads: list[dict | None] = [None] * CLIENTS
    barrier = threading.Barrier(CLIENTS + 1)
    try:
        with ServerThread(scheduler) as hosted:
            port = hosted.port

            # Untimed warm-up request: dataset + action-space materialisation.
            _, submitted = call(port, "POST", "/requests", request(999).to_dict())
            wait_done(port, submitted["ticket"])

            def client(index: int) -> None:
                barrier.wait()
                started = time.perf_counter()
                status, submitted = call(
                    port, "POST", "/requests", request(index).to_dict()
                )
                assert status == 202, submitted
                wait_done(port, submitted["ticket"])
                status, body = call(
                    port, "GET", f"/requests/{submitted['ticket']}/result"
                )
                assert status == 200, body
                latencies[index] = time.perf_counter() - started
                payloads[index] = strip_timings(body["result"])

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            _, stats = call(port, "GET", "/stats")
        return wall, latencies, payloads, stats["scheduler"].get("batching")
    finally:
        scheduler.shutdown()
        engine.close()


def main() -> None:
    print(f"burst: {CLIENTS} concurrent CDRL requests, {EPISODES} episodes each\n")

    print("mode: unbatched (one policy forward per request per step)")
    unbatched_wall, unbatched_latencies, unbatched_payloads, _ = run_burst(False)
    print(f"  wall {unbatched_wall:.2f}s  throughput {CLIENTS / unbatched_wall:.2f} req/s")

    print("mode: batched (inference_batching=True, linger 30ms)")
    batched_wall, batched_latencies, batched_payloads, batching = run_burst(True)
    print(f"  wall {batched_wall:.2f}s  throughput {CLIENTS / batched_wall:.2f} req/s")

    print(f"\nspeedup: {unbatched_wall / batched_wall:.2f}x")
    print(
        f"latency p95: {sorted(unbatched_latencies)[-1]:.2f}s unbatched -> "
        f"{sorted(batched_latencies)[-1]:.2f}s batched"
    )
    print(
        f"waves: {batching['waves']}  mean rows/wave "
        f"{batching['mean_rows_per_wave']:.2f} of {CLIENTS} possible"
    )
    print(f"shared pools: {json.dumps(batching['shared'])}")

    identical = batched_payloads == unbatched_payloads
    print(f"payloads bit-identical across modes: {identical}")
    assert identical


if __name__ == "__main__":
    main()
