"""Generate the 182-instance benchmark and evaluate NL→LDX derivation on a sample.

Shows the benchmark generator (Section 7.1) and the Table 2 evaluation
harness (Section 7.2) on a small deterministic subsample.

Run with::

    python examples/benchmark_and_nl2ldx.py
"""

from repro.bench import generate_benchmark
from repro.llm import chatgpt_client, gpt4_client
from repro.nl2ldx import evaluate_derivation


def main() -> None:
    corpus = generate_benchmark()
    print(f"Benchmark instances: {len(corpus)}")
    for row in corpus.overview_rows():
        print(f"  meta-goal {row['meta_goal']}: {row['name']:<45} {row['instances']:>3} instances")

    print("\nSample instance:")
    instance = corpus.instances[0]
    print(f"  goal: {instance.goal}")
    print(f"  dataset: {instance.dataset}")
    print("  gold LDX:")
    for line in instance.ldx_text.splitlines():
        print(f"    {line}")

    print("\nEvaluating specification derivation on a 16-instance subsample...")
    evaluation = evaluate_derivation(
        corpus,
        clients={"ChatGPT": chatgpt_client(), "GPT-4": gpt4_client()},
        max_instances_per_scenario=16,
    )
    print(f"{'model':<8} {'approach':<10} {'scenario':<34} {'lev2':>6} {'xTED':>6}")
    for row in evaluation.rows():
        print(
            f"{row['model']:<8} {row['approach']:<10} {row['scenario']:<34} "
            f"{row['lev2']:>6} {row['xted']:>6}"
        )


if __name__ == "__main__":
    main()
