"""Serving walkthrough: the LINX engine as an HTTP service.

The serving tier stacks four components (all stdlib + numpy, no web
framework):

* `LinxEngine` — the pipeline (derive -> generate -> render -> insights),
* `RequestScheduler` — bounded queue, lifecycle states, canonical-hash
  deduplication, per-request timeout and cooperative cancellation,
* `ResultStore` — schema-versioned sqlite keyed by request hash, so an
  identical resubmission is served from disk without re-training,
* `LinxHttpServer` — asyncio HTTP front-end with Server-Sent-Events
  progress (`python -m repro.engine.server` runs it standalone).

This script hosts the server in-process on an ephemeral port, then acts as
an HTTP client: submits two requests (one swapping the session generator to
the ATENA baseline *by registry name*), renders their SSE event streams as
a progress ticker, fetches the results, and resubmits the first request to
show the store serving it idempotently.

Run with::

    python examples/serve.py
"""

import http.client
import json
import tempfile
from pathlib import Path

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, LinxEngine, RequestScheduler, ResultStore
from repro.engine.server import ServerThread

LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),count,.*]
A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),count,.*]
"""


def call(port: int, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON request against the local server."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        connection.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def follow_events(port: int, ticket: str) -> int:
    """Consume the ticket's SSE stream, printing a compact progress ticker."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    count = 0
    try:
        connection.request("GET", f"/requests/{ticket}/events")
        response = connection.getresponse()
        while True:
            line = response.readline()
            if not line:
                return count
            text = line.decode("utf-8").strip()
            if not text.startswith("data:"):
                continue
            event = json.loads(text.split(":", 1)[1])
            count += 1
            if event["kind"] == "episode":
                episode = event["payload"]["episode"]
                if episode % 10 == 0:
                    print(f"    episode {episode:>3}  return={event['payload']['return']:.3f}")
            else:
                stage = f" {event['stage']}" if event["stage"] else ""
                print(f"    {event['kind']}{stage}")
    finally:
        connection.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="linx-serve-") as tmp:
        store = ResultStore(Path(tmp) / "results.sqlite")
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=40))
        scheduler = RequestScheduler(
            engine, store=store, max_workers=2, default_timeout=600
        )
        requests = [
            ExploreRequest(
                goal="Find a country with different viewing habits than the rest of the world",
                dataset="netflix",
                num_rows=400,
                ldx_text=LDX,
                seed=0,
                request_id="serve-cdrl",
            ),
            ExploreRequest(
                goal="Characterise the catalogue",
                dataset="netflix",
                num_rows=400,
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
                episodes=30,
                seed=1,
                stages={"session_generator": "atena"},  # registry name, over the wire
                request_id="serve-atena",
            ),
        ]
        try:
            with ServerThread(scheduler) as hosted:
                port = hosted.port
                print(f"serving on http://127.0.0.1:{port}\n")
                _, stages = call(port, "GET", "/stages")
                print(f"registered stages: {json.dumps(stages['stages'])}\n")

                tickets = []
                for request in requests:
                    status, submitted = call(port, "POST", "/requests", request.to_dict())
                    assert status == 202, submitted
                    print(
                        f"submitted {request.request_id}: ticket={submitted['ticket']} "
                        f"hash={submitted['request_hash'][:12]}…"
                    )
                    tickets.append(submitted["ticket"])

                for request, ticket in zip(requests, tickets):
                    print(f"\n[{request.request_id}] streaming progress:")
                    follow_events(port, ticket)
                    status, body = call(port, "GET", f"/requests/{ticket}/result")
                    assert status == 200, body
                    result = body["result"]
                    print(
                        f"  -> generator={result['stage_names']['session_generator']} "
                        f"operations={len(result['operations'])} "
                        f"compliant={result['fully_compliant']}"
                    )

                print("\nresubmitting serve-cdrl verbatim:")
                status, replay = call(port, "POST", "/requests", requests[0].to_dict())
                print(
                    f"  -> state={replay['state']} served_from_store="
                    f"{replay['served_from_store']} (no re-training)"
                )

                _, stats = call(port, "GET", "/stats")
                print(f"\nstore: {json.dumps(stats['store'])}")
                print(f"scheduler: {json.dumps(stats['scheduler']['states'])}")
        finally:
            scheduler.shutdown()
            store.close()


if __name__ == "__main__":
    main()
