"""Quickstart: run LINX end-to-end on the Netflix dataset.

This is the workflow of Example 1.2 in the paper: Clarice uploads the
Netflix dataset, describes her analytical goal in natural language, and LINX
returns a goal-oriented exploration notebook.

Run with::

    python examples/quickstart.py
"""

from repro import Linx
from repro.cdrl import CdrlConfig
from repro.datasets import load_dataset


def main() -> None:
    dataset = load_dataset("netflix", num_rows=800)
    goal = "Find a country with different viewing habits than the rest of the world"

    linx = Linx(cdrl_config=CdrlConfig(episodes=120))
    print(f"Analytical goal: {goal}\n")

    # Step 1: derive LDX specifications from the goal (Section 6).
    ldx_text = linx.derive_specifications("netflix", goal)
    print("Derived LDX specifications:")
    print(ldx_text)
    print()

    # Step 2: generate a compliant, high-utility session (Section 5) and render it.
    output = linx.explore(dataset, goal, ldx_text=ldx_text)
    print(f"Session compliant with specifications: {output.fully_compliant}")
    print()
    print(output.markdown())
    print()
    print("Extracted insights:")
    for insight in output.insights[:5]:
        print(f"  - {insight.text}")


if __name__ == "__main__":
    main()
