"""Quickstart: run LINX end-to-end through the service-oriented engine API.

This is the workflow of Example 1.2 in the paper: Clarice uploads the
Netflix dataset, describes her analytical goal in natural language, and LINX
returns a goal-oriented exploration notebook.  The request is declarative
and JSON-serializable; the result carries per-stage status, timings and
cache statistics and round-trips through JSON.

Run with::

    python examples/quickstart.py
"""

import json

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, ExploreResult, LinxEngine


def main() -> None:
    goal = "Find a country with different viewing habits than the rest of the world"
    request = ExploreRequest(
        goal=goal,
        dataset="netflix",
        num_rows=800,
        episodes=120,
        seed=0,
        request_id="quickstart",
    )
    print(f"Analytical goal: {goal}\n")
    print("Request payload (what a serving tier would receive):")
    print(json.dumps(request.to_dict(), indent=2))
    print()

    # One long-lived engine serves many requests: the few-shot bank is built
    # lazily on the first derivation and the execution cache is shared.
    engine = LinxEngine(cdrl_config=CdrlConfig(episodes=120))
    result = engine.explore(request)

    print("Per-stage status:")
    for stage in result.stages:
        print(f"  {stage.name:<18} {stage.status:<9} ({stage.seconds:.2f}s)")
    print(f"\nDerived LDX specifications (fallback={result.derivation_fallback}):")
    print(result.ldx_text)
    print(f"Session compliant with specifications: {result.fully_compliant}")
    print(f"Execution-cache stats for this request: {result.cache_stats}")
    print()
    print(result.notebook_markdown)
    print()
    print("Extracted insights:")
    for insight in result.insights[:5]:
        print(f"  - {insight['text']}")

    # The result round-trips through JSON, so it can be stored and served.
    payload = json.dumps(result.to_dict())
    restored = ExploreResult.from_dict(json.loads(payload))
    assert restored == result
    print(f"\nSerialized result: {len(payload)} bytes (round-trips losslessly)")


if __name__ == "__main__":
    main()
