"""Training-fleet walkthrough: train → checkpoint → publish → serve by name.

The distributed training tier splits the CDRL loop into a *learner* (owns
the policy, optimizer and gradient batching) and a fleet of *actor*
processes (rebuild the environment from a primitive spec and collect
rollout waves).  Because wave episodes draw from per-episode RNG streams
and always use the wave-start weights, a W-actor fleet trains
bit-identically to the single-process trainer with `num_envs=W*K` — the
fleet changes wall-clock, never results.

This script:

1. trains a policy on the Flights dataset with a 2-actor process fleet,
   checkpointing every wave (kill it mid-run and re-run: it resumes),
2. publishes the trained policy into a sqlite `PolicyRegistry`,
3. boots the HTTP serving tier pointed at that registry and submits an
   `ExploreRequest` that names the policy as its session generator —
   serving a *trained* artifact with no training at request time.

Run with::

    python examples/train_fleet.py
"""

import http.client
import json
import tempfile
import time
from pathlib import Path

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, LinxEngine, RequestScheduler
from repro.engine.server import ServerThread
from repro.train import FleetLearner, PolicyRegistry, TrainSpec

WEATHER_DELAY_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""


def call(port: int, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        connection.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="linx-train-fleet-") as tmp:
        checkpoint_path = Path(tmp) / "weather.ckpt"
        registry_path = Path(tmp) / "policies.sqlite"

        # -- 1. train with an actor fleet -----------------------------------
        spec = TrainSpec(
            dataset="flights",
            ldx_text=WEATHER_DELAY_LDX,
            num_rows=300,
            config=CdrlConfig(episodes=24, episode_length=5, seed=0),
        )
        print("training with a 2-actor process fleet ...")
        started = time.perf_counter()
        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="process",
            checkpoint_path=checkpoint_path,
        ) as learner:
            result = learner.train(
                callback=lambda episode, episode_return, _s: print(
                    f"  episode {episode + 1:>2}: return {episode_return:7.3f}"
                )
                if (episode + 1) % 8 == 0
                else None
            )
            print(
                f"trained {result.episodes_trained} episodes in "
                f"{time.perf_counter() - started:.1f}s; best session "
                f"compliant={result.fully_compliant}, "
                f"utility={result.utility_score:.4f}"
            )

            # -- 2. publish the artifact ------------------------------------
            with PolicyRegistry(registry_path) as registry:
                version = learner.publish(
                    registry,
                    "weather-delays",
                    metrics={"utility": result.utility_score},
                )
            print(f"published cdrl:weather-delays-v{version} -> {registry_path.name}")

        # -- 3. serve the registered policy over HTTP -----------------------
        engine = LinxEngine(policy_registry_path=registry_path)
        scheduler = RequestScheduler(engine, max_workers=1)
        try:
            with ServerThread(scheduler) as hosted:
                port = hosted.port
                _, stages = call(port, "GET", "/stages")
                print(f"registered generators: {stages['stages']['session_generator']}")

                request = ExploreRequest(
                    goal="Highlight distinctive characteristics of weather delays",
                    dataset="flights",
                    num_rows=300,
                    ldx_text=WEATHER_DELAY_LDX,
                    episodes=5,
                    seed=0,
                    stages={"session_generator": "cdrl:weather-delays-v1"},
                )
                _, submitted = call(port, "POST", "/requests", request.to_dict())
                ticket = submitted["ticket"]
                while True:
                    status, payload = call(port, "GET", f"/requests/{ticket}/result")
                    if status != 202:
                        break
                    time.sleep(0.1)
                result = payload["result"]
                print(
                    f"served by {result['stage_names']['session_generator']}: "
                    f"{len(result['operations'])} operations, "
                    f"compliant={result['fully_compliant']}, "
                    f"episodes_trained={result['episodes_trained']}"
                )
                for signature in result["operations"]:
                    print(f"  {signature}")
        finally:
            scheduler.shutdown()
            if engine.policy_registry is not None:
                engine.policy_registry.close()


if __name__ == "__main__":
    main()
