"""LLM layer: task interfaces, prompt rendering and the offline simulated clients."""

from .interface import (
    TASK_NL_TO_LDX,
    TASK_NL_TO_PANDAS,
    TASK_PANDAS_TO_LDX,
    DerivationTask,
    FewShotExample,
    LLMClient,
)
from .mock import (
    CHATGPT_PROFILE,
    GPT4_PROFILE,
    SimulatedLLM,
    TierProfile,
    chatgpt_client,
    gpt4_client,
)
from .prompts import render_prompt

__all__ = [
    "CHATGPT_PROFILE",
    "DerivationTask",
    "FewShotExample",
    "GPT4_PROFILE",
    "LLMClient",
    "SimulatedLLM",
    "TASK_NL_TO_LDX",
    "TASK_NL_TO_PANDAS",
    "TASK_PANDAS_TO_LDX",
    "TierProfile",
    "chatgpt_client",
    "gpt4_client",
    "render_prompt",
]
