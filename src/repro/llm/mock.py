"""Offline simulated LLMs.

No network access is available, so GPT-3.5 ("ChatGPT") and GPT-4 are
simulated as **few-shot retrieval + template-transfer** models:

1. retrieve the few-shot example whose goal is most similar to the test goal
   (token overlap; the GPT-4 tier additionally grounds on schema mentions);
2. adapt the retrieved example's solution to the test dataset by re-mapping
   attribute and term slots onto columns/values mentioned in the test goal
   (the GPT-4 tier does fuzzy token matching, the ChatGPT tier only exact
   substrings);
3. inject deterministic, tier- and task-dependent corruption: direct NL→LDX
   answers suffer from the unfamiliar-LDX-syntax problem far more often than
   the chained NL→PyLDX→LDX route, and the ChatGPT tier is noisier than the
   GPT-4 tier.

The simulation is calibrated to reproduce the *shape* of Table 2 (seen vs
unseen scenarios, +Pd gains, GPT-4 ≥ ChatGPT), not the exact numbers — see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.ldx.parser import try_parse_ldx
from repro.nl2ldx.pyldx import ldx_to_pyldx, parse_pyldx, pyldx_to_ldx

from .interface import (
    TASK_NL_TO_LDX,
    TASK_NL_TO_PANDAS,
    TASK_PANDAS_TO_LDX,
    DerivationTask,
    FewShotExample,
)

_WORD_RE = re.compile(r"[a-z0-9_]+")

_STOPWORDS = {
    "the", "a", "an", "of", "to", "with", "and", "or", "for", "in", "on", "is",
    "are", "data", "dataset", "please", "we", "i", "you", "your", "task", "need",
    "would", "like", "can", "as", "part", "analysis", "make", "sure", "that",
}


def _tokens(text: str) -> set[str]:
    return {t for t in _WORD_RE.findall(text.lower()) if t not in _STOPWORDS}


def _stable_hash(*parts: str) -> int:
    joined = "||".join(parts)
    return int(hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12], 16)


@dataclass(frozen=True)
class TierProfile:
    """Capability knobs of one simulated LLM tier."""

    name: str
    schema_grounding: bool
    fuzzy_attribute_matching: bool
    #: Probability of corrupting a direct NL->LDX answer (unfamiliar syntax).
    direct_ldx_error_rate: float
    #: Probability of corrupting a PyLDX answer (familiar Python syntax).
    pyldx_error_rate: float
    #: Probability of a translation slip in the Pandas->LDX stage.
    translation_error_rate: float


CHATGPT_PROFILE = TierProfile(
    name="ChatGPT",
    schema_grounding=False,
    fuzzy_attribute_matching=False,
    direct_ldx_error_rate=0.45,
    pyldx_error_rate=0.12,
    translation_error_rate=0.05,
)

GPT4_PROFILE = TierProfile(
    name="GPT-4",
    schema_grounding=True,
    fuzzy_attribute_matching=True,
    direct_ldx_error_rate=0.28,
    pyldx_error_rate=0.05,
    translation_error_rate=0.02,
)


class SimulatedLLM:
    """A deterministic, offline stand-in for an LLM API client."""

    def __init__(self, profile: TierProfile):
        self.profile = profile
        self.name = profile.name

    # -- public API -------------------------------------------------------------------
    def derive(self, task: DerivationTask) -> str:
        if task.kind == TASK_PANDAS_TO_LDX:
            return self._translate_pandas(task)
        if task.kind in (TASK_NL_TO_PANDAS, TASK_NL_TO_LDX):
            return self._derive_from_goal(task)
        raise ValueError(f"unknown task kind {task.kind!r}")

    # -- retrieval + adaptation ---------------------------------------------------------
    def _similarity(self, goal: str, example: FewShotExample, schema: tuple[str, ...]) -> float:
        goal_tokens = _tokens(goal)
        example_tokens = _tokens(example.goal)
        if not goal_tokens or not example_tokens:
            return 0.0
        overlap = len(goal_tokens & example_tokens) / len(goal_tokens | example_tokens)
        if self.profile.schema_grounding:
            # GPT-4 tier: reward examples whose solution uses attributes that the
            # test goal mentions, a crude form of schema linking.
            mentioned = {c.lower() for c in schema if c.lower() in goal.lower()}
            used = {t for t in _tokens(example.ldx_text)}
            if mentioned and mentioned & used:
                overlap += 0.15
        return overlap

    def _retrieve(self, task: DerivationTask) -> FewShotExample:
        if not task.examples:
            # Zero-shot fallback: a minimal generic exploration specification.
            return FewShotExample(
                goal="explore the data",
                dataset=task.dataset or "data",
                schema=task.schema,
                pyldx_code='df = pd.read_csv("data.csv")\nagg = df.groupby(<COL>).agg(<AGG>)',
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
            )
        scored = sorted(
            task.examples,
            key=lambda ex: self._similarity(task.goal, ex, task.schema),
            reverse=True,
        )
        return scored[0]

    def _map_attributes(self, ldx_text: str, task: DerivationTask, example: FewShotExample) -> str:
        """Re-target attribute names of the retrieved solution to the test schema."""
        goal_lower = task.goal.lower()
        schema = list(task.schema)
        mentioned: list[str] = []
        for column in schema:
            if column.lower() in goal_lower:
                mentioned.append(column)
            elif self.profile.fuzzy_attribute_matching:
                column_tokens = set(column.lower().replace("_", " ").split())
                if column_tokens and column_tokens <= _tokens(task.goal):
                    mentioned.append(column)
        source_attrs = [
            attr for attr in _extract_attributes(ldx_text) if attr not in task.schema
        ]
        adapted = ldx_text
        for index, attr in enumerate(source_attrs):
            if index < len(mentioned):
                replacement = mentioned[index]
            elif mentioned:
                replacement = mentioned[-1]
            elif schema:
                # No grounded attribute: fall back to a schema column (weak guess).
                replacement = schema[min(index + 1, len(schema) - 1)]
            else:
                continue
            adapted = re.sub(rf"(?<=[\[,]){re.escape(attr)}(?=[,\]])", replacement, adapted)
        # Re-target literal terms mentioned in the goal (quoted values or numbers).
        terms = re.findall(r"'([^']+)'|\b(\d+(?:\.\d+)?)\b", task.goal)
        flattened = [a or b for a, b in terms if (a or b)]
        source_terms = _extract_literal_terms(adapted)
        for index, term in enumerate(source_terms):
            if index < len(flattened) and flattened[index] not in task.schema:
                adapted = adapted.replace(f",{term}]", f",{flattened[index]}]", 1)
        return adapted

    def _derive_from_goal(self, task: DerivationTask) -> str:
        example = self._retrieve(task)
        adapted_ldx = self._map_attributes(example.ldx_text, task, example)
        seed = _stable_hash(self.name, task.kind, task.goal, task.dataset)
        if task.kind == TASK_NL_TO_LDX:
            corrupted = self._maybe_corrupt_ldx(
                adapted_ldx, seed, self.profile.direct_ldx_error_rate
            )
            return corrupted
        # NL -> PyLDX: render as template code, with a (smaller) corruption chance.
        pyldx = ldx_to_pyldx(adapted_ldx, dataset_name=task.dataset or "data")
        if _chance(seed + 1, self.profile.pyldx_error_rate):
            pyldx = _corrupt_pyldx(pyldx, seed)
        return pyldx

    # -- Pandas -> LDX translation ---------------------------------------------------------
    def _translate_pandas(self, task: DerivationTask) -> str:
        seed = _stable_hash(self.name, task.kind, task.pyldx_code)
        try:
            ldx_text = pyldx_to_ldx(parse_pyldx(task.pyldx_code))
        except Exception:  # noqa: BLE001 - malformed upstream code yields a malformed answer
            return "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"
        if _chance(seed, self.profile.translation_error_rate):
            ldx_text = self._maybe_corrupt_ldx(ldx_text, seed + 7, 1.0)
        return ldx_text

    # -- corruption ---------------------------------------------------------------------
    def _maybe_corrupt_ldx(self, ldx_text: str, seed: int, rate: float) -> str:
        if not _chance(seed, rate):
            return ldx_text
        query = try_parse_ldx(ldx_text)
        lines = [line for line in ldx_text.splitlines() if line.strip()]
        mode = seed % 3
        if mode == 0 and len(lines) > 2:
            # Forget one specification line entirely.
            del lines[1 + seed % (len(lines) - 1)]
            return "\n".join(lines)
        if mode == 1:
            # Break the continuity syntax (the typical unfamiliar-LDX failure).
            return ldx_text.replace("(?<", "(<", 1)
        if query is not None and query.operational_specs():
            # Swap an operation kind (G <-> F), producing a plausible but wrong spec.
            return ldx_text.replace("[G,", "[F,", 1) if "[G," in ldx_text else ldx_text.replace(
                "[F,", "[G,", 1
            )
        return ldx_text


def _chance(seed: int, rate: float) -> bool:
    """Deterministic Bernoulli draw with probability *rate*."""
    return (seed % 10_000) / 10_000.0 < rate


def _corrupt_pyldx(code: str, seed: int) -> str:
    lines = [line for line in code.splitlines() if line.strip()]
    if len(lines) <= 2:
        return code
    # Drop one operation line (the model "forgot" a step).
    index = 1 + seed % (len(lines) - 1)
    del lines[index]
    return "\n".join(lines)


def _extract_attributes(ldx_text: str) -> list[str]:
    """Attribute-position fields of every operation pattern in the LDX text."""
    attrs = []
    for match in re.finditer(r"\[(F|G),([^,\]]+)", ldx_text):
        field = match.group(2).strip().strip("'\"")
        if field not in (".*", "*") and not field.startswith("(?<"):
            attrs.append(field)
    ordered: list[str] = []
    for attr in attrs:
        if attr not in ordered:
            ordered.append(attr)
    return ordered


def _extract_literal_terms(ldx_text: str) -> list[str]:
    """Literal term fields of filter patterns (last positional field)."""
    terms = []
    for match in re.finditer(r"\[F,[^,\]]+,[^,\]]+,([^,\]]+)\]", ldx_text):
        field = match.group(1).strip().strip("'\"")
        if field not in (".*", "*") and not field.startswith("(?<"):
            terms.append(field)
    return terms


def chatgpt_client() -> SimulatedLLM:
    """The simulated GPT-3.5 tier."""
    return SimulatedLLM(CHATGPT_PROFILE)


def gpt4_client() -> SimulatedLLM:
    """The simulated GPT-4 tier."""
    return SimulatedLLM(GPT4_PROFILE)
