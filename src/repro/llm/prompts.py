"""Textual prompt construction (Figure 3 and Appendix B.1).

The prompts are not consumed by the offline simulated LLM (which works on the
structured task), but they are rendered exactly as in the paper so that (a)
swapping in a real API client requires no pipeline changes and (b) prompt
structure can be inspected in the examples and tests.
"""

from __future__ import annotations

from .interface import (
    TASK_NL_TO_LDX,
    TASK_NL_TO_PANDAS,
    TASK_PANDAS_TO_LDX,
    DerivationTask,
)

_NL2PANDAS_HEADER = (
    "PyLDX is an extension to Python pandas used to sketch exploration sessions. "
    "PyLDX supports the operations: filter, groupby, agg. Parameters that should be "
    "discovered automatically are written as placeholders like <VALUE>, <COL>, <AGG>.\n"
    "Here are examples for generating PyLDX code, given a dataset and an analysis goal:"
)

_PANDAS2LDX_HEADER = (
    "LDX is a specification language that extends Tregex, a query language for "
    "tree-structured data. LDX describes the structure of an exploration session, the "
    "type and parameters of its query operations, and continuity variables that connect "
    "them. LDX supported operators are filter (F) and group by with aggregation (G).\n"
    "Here are examples for converting Pandas code to LDX:"
)

_NL2LDX_HEADER = (
    "LDX is a specification language that extends Tregex, a query language for "
    "tree-structured data. The language is especially useful for specifying the order of "
    "a notebook's query operations and their type and parameters.\n"
    "Here are examples of how to convert analysis tasks to LDX:"
)


def render_prompt(task: DerivationTask) -> str:
    """Render the full textual prompt for *task* (header, few-shots, test section)."""
    if task.kind == TASK_NL_TO_PANDAS:
        return _render_nl2pandas(task)
    if task.kind == TASK_PANDAS_TO_LDX:
        return _render_pandas2ldx(task)
    if task.kind == TASK_NL_TO_LDX:
        return _render_nl2ldx(task)
    raise ValueError(f"unknown task kind {task.kind!r}")


def _render_nl2pandas(task: DerivationTask) -> str:
    parts = [_NL2PANDAS_HEADER, ""]
    for example in task.examples:
        parts.extend(
            [
                f"Analysis Goal: {example.goal}",
                f"Dataset: {example.dataset}",
                f"Scheme: {', '.join(example.schema)}",
                "PyLDX Code:",
                example.pyldx_code,
                f"Explanation: {example.explanation}" if example.explanation else "",
                "",
            ]
        )
    parts.extend(
        [
            "Use this sample of the first rows from the dataset as a reference:",
            task.dataset_sample,
            "",
            f"Analysis Goal: {task.goal}",
            f"Dataset: {task.dataset}",
            f"Scheme: {', '.join(task.schema)}",
            "PyLDX Code:",
        ]
    )
    return "\n".join(part for part in parts if part is not None)


def _render_pandas2ldx(task: DerivationTask) -> str:
    parts = [_PANDAS2LDX_HEADER, ""]
    for example in task.examples:
        parts.extend(
            [
                "Pandas:",
                example.pyldx_code,
                "LDX:",
                example.ldx_text,
                f"Explanation: {example.explanation}" if example.explanation else "",
                "",
            ]
        )
    parts.extend(["Pandas:", task.pyldx_code, "LDX:"])
    return "\n".join(part for part in parts if part is not None)


def _render_nl2ldx(task: DerivationTask) -> str:
    parts = [_NL2LDX_HEADER, ""]
    for example in task.examples:
        parts.extend(
            [
                f"Task: {example.goal}",
                f"Dataset: {example.dataset}",
                f"Scheme: {', '.join(example.schema)}",
                "LDX:",
                example.ldx_text,
                "",
            ]
        )
    parts.extend(
        [
            "Use this sample of the first rows from the dataset as a reference:",
            task.dataset_sample,
            "",
            f"Task: {task.goal}",
            f"Dataset: {task.dataset}",
            f"Scheme: {', '.join(task.schema)}",
            "LDX:",
        ]
    )
    return "\n".join(part for part in parts if part is not None)
