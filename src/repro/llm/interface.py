"""Interfaces for the LLM layer.

LINX talks to an LLM twice (NL→PyLDX, PyLDX→LDX) or once (direct NL→LDX for
the ablation baseline).  The interaction is modelled as a structured
:class:`DerivationTask`; implementations may additionally consume the
rendered textual prompt (see :mod:`repro.llm.prompts`).  Offline, the only
implementation is the simulated LLM in :mod:`repro.llm.mock`; swapping in a
real API client only requires implementing :class:`LLMClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

#: Task kinds.
TASK_NL_TO_PANDAS = "nl2pandas"
TASK_PANDAS_TO_LDX = "pandas2ldx"
TASK_NL_TO_LDX = "nl2ldx"


@dataclass(frozen=True)
class FewShotExample:
    """One few-shot example: a goal over a dataset with its PyLDX and LDX solutions."""

    goal: str
    dataset: str
    schema: tuple[str, ...]
    pyldx_code: str
    ldx_text: str
    explanation: str = ""
    meta_goal_id: int = 0


@dataclass(frozen=True)
class DerivationTask:
    """A single LLM call: task kind, few-shot examples and the test input."""

    kind: str
    examples: tuple[FewShotExample, ...]
    goal: str = ""
    dataset: str = ""
    schema: tuple[str, ...] = field(default_factory=tuple)
    dataset_sample: str = ""
    pyldx_code: str = ""  # only for the Pandas-to-LDX stage


class LLMClient(Protocol):
    """Anything that can answer a derivation task with raw text."""

    name: str

    def derive(self, task: DerivationTask) -> str:
        """Return the model's raw textual answer for *task*."""
