"""Fault-tolerance primitives shared by the store, cache and serving tiers.

Distributed-systems robustness work is only trustworthy when its failure
modes can be *provoked on demand*: this module supplies the deterministic
seams every other layer threads through.

* :class:`FaultPlan` / :class:`FaultSpec` / :func:`fault_point` — a
  deterministic fault-injection harness.  Production code marks its
  crash-relevant seams with ``fault_point(SITE_...)``; with no plan
  installed the call is one global read.  Tests (and the
  ``serve_cluster`` smoke) install a plan that fires a scripted fault —
  an injected crash, a ``database is locked`` storm, a hung stage, a
  torn payload — on the *N*-th arrival at a site, the same way every
  time.  Plans serialize to JSON so subprocess replicas inherit them
  through an environment variable (:data:`FAULT_PLAN_ENV`).
* :func:`retry_sqlite` — the shared bounded-exponential-backoff-with-
  jitter retry helper wrapped around every sqlite write in
  :class:`~repro.engine.store.ResultStore` and
  :class:`~repro.explore.diskcache.DiskCacheTier`, so transient
  ``sqlite3.OperationalError: database is locked`` under multi-replica
  load degrades to a retry instead of failing the request.
* :class:`FileCancelEvent` — a sentinel-file-backed stand-in for
  :class:`threading.Event`, the cross-process cancellation registry
  entry: ``cancel()`` on one side touches a file, the engine's existing
  cooperative checkpoints on the other side poll it, so cancellation
  reaches a request running in a process-pool worker (or another
  replica's worker) that an in-memory event can never reach.
* :func:`quarantine_sqlite` — crash-recovery for the stores themselves:
  a corrupt/truncated database file is renamed aside (never deleted,
  never reinterpreted) so the engine rebuilds a fresh store instead of
  failing construction.

This module is deliberately stdlib-only and imports nothing from
``repro``, so both :mod:`repro.engine` and :mod:`repro.explore` can
depend on it without import cycles.  The engine-facing harness module is
:mod:`repro.engine.faults`, which re-exports everything here.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Environment variable a subprocess replica reads a JSON fault plan from
#: (installed at import time, so ``python -m repro.engine.server`` style
#: children are covered without any wiring).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

# -- fault sites ------------------------------------------------------------------------
#: Immediately after a lease claim transaction commits (the claim is durable,
#: the work has not started): a crash here leaves a held-but-dead lease that
#: only expiry-based takeover can recover.
SITE_CLAIM_ACQUIRED = "store.claim.acquired"
#: Just before the result-store commit (the work is done, nothing durable
#: yet): a crash here loses the execution and must trigger re-execution.
SITE_STORE_COMMIT = "store.put.before-commit"
#: Inside every retry-wrapped result-store write transaction.
SITE_STORE_WRITE = "store.sqlite.write"
#: Inside every retry-wrapped disk-cache write transaction.
SITE_CACHE_WRITE = "diskcache.sqlite.write"
#: Per-entry payload encoding in the disk cache (torn-write injection).
SITE_CACHE_PAYLOAD = "diskcache.payload"
#: The engine's cooperative cancellation/timeout checkpoint (stage
#: boundaries and episode ticks) — where a hung stage becomes observable.
SITE_CHECKPOINT = "engine.checkpoint"
#: Each scheduler heartbeat iteration (killing it simulates a replica that
#: stops renewing its leases without dying).
SITE_HEARTBEAT = "scheduler.heartbeat"

# -- fault kinds ------------------------------------------------------------------------
KIND_CRASH = "crash"          # raise InjectedFaultError (or os._exit(exit_code))
KIND_BUSY = "sqlite-busy"     # raise sqlite3.OperationalError("database is locked")
KIND_HANG = "hang"            # sleep for `seconds` (a slow/hung stage)
KIND_TORN = "torn-write"      # no action here; the seam truncates its payload

FAULT_KINDS = (KIND_CRASH, KIND_BUSY, KIND_HANG, KIND_TORN)


class InjectedFaultError(RuntimeError):
    """A scripted crash fired at a :func:`fault_point` seam.

    Deliberately *not* an ``EngineError``: production code must treat it
    exactly like any other unexpected failure (that is the point).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: fire *times* times once *site* has been hit *after* times.

    The site's arrival counter is global to the plan, so ``after=2,
    times=1`` means "the third arrival at this site fires, every time the
    plan is replayed" — deterministic by construction.
    """

    site: str
    kind: str
    after: int = 0
    times: int = 1
    #: Sleep duration of a :data:`KIND_HANG` fault.
    seconds: float = 0.05
    #: When set, a :data:`KIND_CRASH` fault hard-kills the process with
    #: ``os._exit(exit_code)`` instead of raising — the real crash, for
    #: subprocess replicas under the cluster smoke.
    exit_code: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.after < 0 or self.times < 1:
            raise ValueError("after must be >= 0 and times >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "after": self.after,
            "times": self.times,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSpec":
        return cls(
            site=payload["site"],
            kind=payload["kind"],
            after=int(payload.get("after", 0)),
            times=int(payload.get("times", 1)),
            seconds=float(payload.get("seconds", 0.05)),
            exit_code=payload.get("exit_code"),
        )


class FaultPlan:
    """A deterministic script of faults, replayed against the fault sites.

    Thread-safe: site arrival counters advance under a lock, the (possibly
    slow or raising) fault action runs outside it.  ``fired`` counts how
    often each spec actually fired — the assertion handle for tests.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._site_hits: dict[str, int] = {}
        self.fired: dict[int, int] = {index: 0 for index in range(len(self.specs))}

    # -- scripted-plan constructors (one per FaultPlan kind) -----------------------
    @classmethod
    def crash_after_claim(cls, *, after: int = 0, times: int = 1,
                          exit_code: Optional[int] = None) -> "FaultPlan":
        return cls([FaultSpec(SITE_CLAIM_ACQUIRED, KIND_CRASH, after=after,
                              times=times, exit_code=exit_code)])

    @classmethod
    def crash_before_commit(cls, *, after: int = 0, times: int = 1,
                            exit_code: Optional[int] = None) -> "FaultPlan":
        return cls([FaultSpec(SITE_STORE_COMMIT, KIND_CRASH, after=after,
                              times=times, exit_code=exit_code)])

    @classmethod
    def sqlite_busy(cls, *, site: str = SITE_STORE_WRITE, after: int = 0,
                    times: int = 3) -> "FaultPlan":
        return cls([FaultSpec(site, KIND_BUSY, after=after, times=times)])

    @classmethod
    def hung_stage(cls, *, seconds: float = 0.25, after: int = 0,
                   times: int = 1) -> "FaultPlan":
        return cls([FaultSpec(SITE_CHECKPOINT, KIND_HANG, after=after,
                              times=times, seconds=seconds)])

    @classmethod
    def torn_cache_write(cls, *, after: int = 0, times: int = 1) -> "FaultPlan":
        return cls([FaultSpec(SITE_CACHE_PAYLOAD, KIND_TORN, after=after, times=times)])

    # -- serialization -------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([spec.to_dict() for spec in self.specs])

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls(FaultSpec.from_dict(entry) for entry in json.loads(payload))

    # -- firing --------------------------------------------------------------------
    def total_fired(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def hit(self, site: str) -> Optional[FaultSpec]:
        """Advance *site*'s arrival counter; perform and return a due fault."""
        spec: Optional[FaultSpec] = None
        with self._lock:
            count = self._site_hits.get(site, 0) + 1
            self._site_hits[site] = count
            for index, candidate in enumerate(self.specs):
                if candidate.site != site:
                    continue
                if candidate.after < count <= candidate.after + candidate.times:
                    self.fired[index] += 1
                    spec = candidate
                    break
        if spec is None:
            return None
        # Actions run outside the lock: a hang must not serialize every
        # other fault site behind it.
        if spec.kind == KIND_HANG:
            time.sleep(spec.seconds)
            return spec
        if spec.kind == KIND_BUSY:
            raise sqlite3.OperationalError("database is locked [injected]")
        if spec.kind == KIND_CRASH:
            if spec.exit_code is not None:
                os._exit(spec.exit_code)  # the real thing: no cleanup, no unwind
            raise InjectedFaultError(f"injected crash at {site}")
        return spec  # KIND_TORN: the seam applies the corruption itself


_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make *plan* the process-wide active fault plan; returns it."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return plan


def clear_plan() -> None:
    """Deactivate fault injection (the idle state: one global read per seam)."""
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def fault_point(site: str) -> Optional[FaultSpec]:
    """The seam production code threads through its crash-relevant points.

    With no plan installed this is one global read and a ``None`` check.
    With a plan, a due fault fires *here*: a crash raises (or hard-exits),
    a busy storm raises ``sqlite3.OperationalError``, a hang sleeps, and a
    torn write returns its spec so the calling seam corrupts its payload.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return None
    return plan.hit(site)


# Subprocess replicas (cluster smoke, CI) inherit their scripted faults
# through the environment: installing at import time covers every entry
# point without per-module wiring.
if os.environ.get(FAULT_PLAN_ENV):
    install_plan(FaultPlan.from_json(os.environ[FAULT_PLAN_ENV]))


# -- retry with bounded exponential backoff ----------------------------------------------

#: Defaults tuned for sqlite write contention: 6 attempts spanning roughly
#: half a second of cumulative backoff — enough to ride out a WAL writer
#: burst from sibling replicas, short enough that a genuinely wedged store
#: still fails the request promptly.
DEFAULT_RETRY_ATTEMPTS = 6
DEFAULT_RETRY_BASE_DELAY = 0.01
DEFAULT_RETRY_MAX_DELAY = 0.25


def is_transient_sqlite_error(exc: BaseException) -> bool:
    """Whether *exc* is a lock/busy condition worth retrying (not corruption)."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def retry_sqlite(
    operation: Callable[[], T],
    *,
    attempts: int = DEFAULT_RETRY_ATTEMPTS,
    base_delay: float = DEFAULT_RETRY_BASE_DELAY,
    max_delay: float = DEFAULT_RETRY_MAX_DELAY,
    retryable: Callable[[BaseException], bool] = is_transient_sqlite_error,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run *operation*, retrying transient failures with backoff + jitter.

    The delay before retry ``n`` (0-based) is ``min(max_delay, base_delay *
    2**n)`` scaled by a jitter factor in ``[0.5, 1.0]`` so competing
    replicas de-synchronise instead of retrying in lock-step.  A
    non-retryable error, or exhaustion of *attempts*, re-raises the last
    failure unchanged.  ``on_retry(attempt, exc, delay)`` observes every
    retry (telemetry counters hook in here).
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    jitter = rng.random if rng is not None else random.random
    for attempt in range(attempts):
        try:
            return operation()
        except Exception as exc:  # noqa: BLE001 — filtered by `retryable`
            if attempt + 1 >= attempts or not retryable(exc):
                raise
            delay = min(max_delay, base_delay * (2 ** attempt))
            delay *= 0.5 + jitter() / 2.0
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


# -- cross-process cancellation ----------------------------------------------------------

class FileCancelEvent:
    """A ``threading.Event`` look-alike backed by a sentinel file.

    The shared cancellation registry entry: the controlling side calls
    :meth:`set` (touching the file), workers in *other processes* poll
    :meth:`is_set` at the engine's existing cooperative checkpoints.  The
    filesystem check is rate-limited to *poll_interval* so per-episode
    polling stays cheap; once observed set, the answer is latched.
    """

    def __init__(self, path: str | os.PathLike, poll_interval: float = 0.05):
        self.path = Path(path)
        self.poll_interval = poll_interval
        self._set = False
        self._last_poll = 0.0

    def set(self) -> None:
        self._set = True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch()

    def clear(self) -> None:
        self._set = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def is_set(self) -> bool:
        if self._set:
            return True
        now = time.monotonic()
        if now - self._last_poll < self.poll_interval:
            return False
        self._last_poll = now
        self._set = self.path.exists()
        return self._set

    def wait(self, timeout: Optional[float] = None) -> bool:
        deadline = time.monotonic() + timeout if timeout is not None else None
        while not self.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_interval)
        return True


# -- corrupt-store quarantine ------------------------------------------------------------

def quarantine_sqlite(path: str | os.PathLike) -> Path:
    """Rename a corrupt sqlite file (and WAL/SHM siblings) aside; return the new path.

    The quarantined file keeps its bytes for post-mortems — corruption is
    *renamed*, never deleted and never reinterpreted — and the caller
    reopens a fresh store at the original path, mirroring the wholesale
    schema-version drop the stores already perform on format mismatches.
    """
    original = Path(path)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    quarantined = original.with_name(f"{original.name}.corrupt-{stamp}-{os.getpid()}")
    os.replace(original, quarantined)
    for suffix in ("-wal", "-shm"):
        sibling = Path(str(original) + suffix)
        if sibling.exists():
            try:
                sibling.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
    return quarantined


def open_sqlite_verified(
    path: str | os.PathLike,
    timeout: float,
    *,
    initialize: Callable[[sqlite3.Connection], None],
) -> tuple[sqlite3.Connection, Optional[Path]]:
    """Connect to *path*, quarantining and rebuilding a corrupt database.

    Runs *initialize* (pragmas + schema setup) against the connection; a
    :class:`sqlite3.DatabaseError` — "file is not a database", truncated
    headers, malformed pages — quarantines the file via
    :func:`quarantine_sqlite` and retries once against a fresh database.
    Returns ``(connection, quarantined_path_or_None)``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    connection = sqlite3.connect(str(target), timeout=timeout, check_same_thread=False)
    try:
        initialize(connection)
        return connection, None
    except sqlite3.DatabaseError:
        try:
            connection.close()
        except Exception:  # pragma: no cover - close best-effort
            pass
        quarantined = quarantine_sqlite(target)
        connection = sqlite3.connect(str(target), timeout=timeout, check_same_thread=False)
        initialize(connection)
        return connection, quarantined


__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_KINDS",
    "KIND_BUSY",
    "KIND_CRASH",
    "KIND_HANG",
    "KIND_TORN",
    "SITE_CACHE_PAYLOAD",
    "SITE_CACHE_WRITE",
    "SITE_CHECKPOINT",
    "SITE_CLAIM_ACQUIRED",
    "SITE_HEARTBEAT",
    "SITE_STORE_COMMIT",
    "SITE_STORE_WRITE",
    "DEFAULT_RETRY_ATTEMPTS",
    "DEFAULT_RETRY_BASE_DELAY",
    "DEFAULT_RETRY_MAX_DELAY",
    "FaultPlan",
    "FaultSpec",
    "FileCancelEvent",
    "InjectedFaultError",
    "active_plan",
    "clear_plan",
    "fault_point",
    "install_plan",
    "is_transient_sqlite_error",
    "open_sqlite_verified",
    "quarantine_sqlite",
    "retry_sqlite",
]
