"""Synthetic Google Play Store apps dataset.

Stands in for the Kaggle "Google Play Store Apps" dataset (10K rows, 11
attributes).  Marginals are chosen so the benchmark goals have discoverable
answers: apps with at least 1M installs are overwhelmingly free, highly
rated and target recent Android versions; price distributions differ sharply
between categories; a handful of categories dominate the store.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import DataTable

SCHEMA = (
    "app_id",
    "app_name",
    "category",
    "rating",
    "reviews",
    "size_mb",
    "installs",
    "price",
    "content_rating",
    "genres",
    "android_version",
)

_CATEGORIES = (
    ("FAMILY", 0.19),
    ("GAME", 0.12),
    ("TOOLS", 0.09),
    ("PRODUCTIVITY", 0.07),
    ("MEDICAL", 0.06),
    ("COMMUNICATION", 0.06),
    ("FINANCE", 0.06),
    ("SPORTS", 0.05),
    ("PHOTOGRAPHY", 0.05),
    ("LIFESTYLE", 0.05),
    ("BUSINESS", 0.05),
    ("ART_AND_DESIGN", 0.04),
    ("EDUCATION", 0.04),
    ("SOCIAL", 0.04),
    ("WEATHER", 0.03),
)
_CONTENT = ("Everyone", "Teen", "Mature 17+", "Everyone 10+")
_ANDROID = ("4.0 and up", "4.1 and up", "4.4 and up", "5.0 and up", "6.0 and up", "Varies")
_INSTALL_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)


def _price(rng: np.random.Generator, category: str) -> float:
    if category in ("MEDICAL", "FINANCE", "PRODUCTIVITY") and rng.random() < 0.3:
        return round(float(rng.choice([0.99, 1.99, 2.99, 4.99, 9.99, 14.99])), 2)
    if rng.random() < 0.07:
        return round(float(rng.choice([0.99, 1.99, 2.99, 4.99])), 2)
    return 0.0


def generate_playstore(num_rows: int = 2500, seed: int = 13) -> DataTable:
    """Generate the synthetic Play Store apps table (default 2,500 rows)."""
    rng = np.random.default_rng(seed)
    categories = [name for name, _ in _CATEGORIES]
    category_probabilities = np.array([weight for _, weight in _CATEGORIES])
    category_probabilities = category_probabilities / category_probabilities.sum()

    records = []
    for index in range(num_rows):
        category = str(rng.choice(categories, p=category_probabilities))
        price = _price(rng, category)
        installs = int(rng.choice(_INSTALL_BUCKETS, p=[0.18, 0.24, 0.26, 0.18, 0.10, 0.04]))
        # Popular apps tend to be free, highly rated and compatible with Android 4+.
        if installs >= 1_000_000:
            price = 0.0 if rng.random() < 0.95 else price
            rating = round(float(np.clip(rng.normal(4.35, 0.25), 2.5, 5.0)), 1)
            android = str(rng.choice(_ANDROID[:3], p=[0.5, 0.3, 0.2]))
        else:
            rating = round(float(np.clip(rng.normal(4.0, 0.5), 1.0, 5.0)), 1)
            android = str(rng.choice(_ANDROID))
        reviews = int(installs * abs(rng.normal(0.02, 0.015))) + 1
        records.append(
            {
                "app_id": index + 1,
                "app_name": f"App {index + 1}",
                "category": category,
                "rating": rating,
                "reviews": reviews,
                "size_mb": round(float(rng.uniform(2, 150)), 1),
                "installs": installs,
                "price": price,
                "content_rating": str(rng.choice(_CONTENT, p=[0.7, 0.15, 0.08, 0.07])),
                "genres": category.title().replace("_", " "),
                "android_version": android,
            }
        )
    return DataTable.from_records(records, name="playstore")
