"""Synthetic Netflix Movies and TV Shows dataset.

The paper evaluates on the Kaggle "Netflix titles" dataset (~8.8K titles,
11 attributes).  The original file is not available offline, so this module
generates a deterministic synthetic dataset with the same schema and with
marginal distributions chosen so the paper's motivating insights hold:

* most titles originate in the US;
* India's catalogue is dominated by movies (~93%) while the rest of the
  world has a substantially larger share of TV shows;
* the most common rating world-wide is TV-MA, whereas Indian titles skew
  toward TV-14.

These are exactly the properties Example 1.2 and Table 3 rely on, so every
downstream experiment exercises the same analytical phenomena as the paper.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import DataTable

SCHEMA = (
    "show_id",
    "type",
    "title",
    "director",
    "cast",
    "country",
    "date_added",
    "release_year",
    "rating",
    "duration",
    "listed_in",
)

_COUNTRIES = (
    ("United States", 0.36),
    ("India", 0.12),
    ("United Kingdom", 0.09),
    ("Japan", 0.06),
    ("South Korea", 0.05),
    ("Canada", 0.05),
    ("France", 0.05),
    ("Spain", 0.04),
    ("Mexico", 0.04),
    ("Egypt", 0.03),
    ("Turkey", 0.03),
    ("Brazil", 0.03),
    ("Germany", 0.03),
    ("Nigeria", 0.02),
)

_RATINGS = ("TV-MA", "TV-14", "TV-PG", "R", "PG-13", "PG", "TV-Y7", "TV-Y", "G", "NR")
_GENRES = (
    "Dramas",
    "Comedies",
    "Documentaries",
    "Action & Adventure",
    "International TV Shows",
    "Kids' TV",
    "Stand-Up Comedy",
    "Horror Movies",
    "Romantic Movies",
    "Crime TV Shows",
)
_DIRECTORS = (
    "Rajiv Chilaka",
    "Jan Suter",
    "Steven Spielberg",
    "Martin Scorsese",
    "Cathy Garcia-Molina",
    "Youssef Chahine",
    "Marcus Raboy",
    "Jay Karas",
    "Anurag Kashyap",
    "Quentin Tarantino",
)
_ACTORS = (
    "Anupam Kher",
    "Shah Rukh Khan",
    "Om Puri",
    "Takahiro Sakurai",
    "Samuel L. Jackson",
    "Julie Tejwani",
    "Nicolas Cage",
    "Scarlett Johansson",
    "Paresh Rawal",
    "Kate Winslet",
)
_MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)


def _movie_probability(country: str) -> float:
    """Share of movies (vs TV shows) per country: India is movie-heavy."""
    if country == "India":
        return 0.93
    if country in ("Japan", "South Korea"):
        return 0.45
    return 0.66


def _rating_distribution(country: str, title_type: str) -> tuple[tuple[str, ...], np.ndarray]:
    """Rating mix: TV-MA dominates globally, TV-14 dominates in India."""
    if country == "India":
        weights = {"TV-14": 0.40, "TV-MA": 0.20, "TV-PG": 0.14, "PG-13": 0.08, "R": 0.03}
    else:
        weights = {"TV-MA": 0.36, "TV-14": 0.22, "TV-PG": 0.10, "R": 0.10, "PG-13": 0.08}
    base = {rating: 0.02 for rating in _RATINGS}
    base.update(weights)
    if title_type == "TV Show":
        # TV ratings only make sense for shows; nudge toward the TV-prefixed ones.
        for rating in ("R", "PG-13", "PG", "G"):
            base[rating] *= 0.3
    ratings = tuple(base)
    probabilities = np.array([base[r] for r in ratings], dtype=float)
    probabilities /= probabilities.sum()
    return ratings, probabilities


def generate_netflix(num_rows: int = 2000, seed: int = 7) -> DataTable:
    """Generate the synthetic Netflix titles table.

    ``num_rows`` defaults to 2,000 (a laptop-scale stand-in for the 8.8K-row
    original); pass a larger value for full-scale runs.
    """
    rng = np.random.default_rng(seed)
    countries = [name for name, _ in _COUNTRIES]
    country_probabilities = np.array([weight for _, weight in _COUNTRIES])
    country_probabilities = country_probabilities / country_probabilities.sum()

    records = []
    for index in range(num_rows):
        country = str(rng.choice(countries, p=country_probabilities))
        title_type = "Movie" if rng.random() < _movie_probability(country) else "TV Show"
        ratings, rating_probabilities = _rating_distribution(country, title_type)
        rating = str(rng.choice(ratings, p=rating_probabilities))
        release_year = int(rng.integers(1998, 2022))
        if title_type == "Movie":
            duration = int(rng.normal(105, 25))
            duration = max(35, min(220, duration))
        else:
            duration = int(rng.integers(1, 9))  # seasons
        records.append(
            {
                "show_id": f"s{index + 1}",
                "type": title_type,
                "title": f"Title {index + 1}",
                "director": str(rng.choice(_DIRECTORS)),
                "cast": str(rng.choice(_ACTORS)),
                "country": country,
                "date_added": f"{rng.choice(_MONTHS)} {int(rng.integers(1, 29))}, "
                f"{int(rng.integers(2015, 2022))}",
                "release_year": release_year,
                "rating": rating,
                "duration": duration,
                "listed_in": str(rng.choice(_GENRES)),
            }
        )
    return DataTable.from_records(records, name="netflix")
