"""Synthetic stand-ins for the paper's three Kaggle datasets."""

from .flights import generate_flights
from .netflix import generate_netflix
from .playstore import generate_playstore
from .registry import (
    DatasetInfo,
    dataset_info,
    dataset_names,
    dataset_schema_description,
    load_dataset,
)

__all__ = [
    "DatasetInfo",
    "dataset_info",
    "dataset_names",
    "dataset_schema_description",
    "generate_flights",
    "generate_netflix",
    "generate_playstore",
    "load_dataset",
]
