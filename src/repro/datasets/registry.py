"""Dataset registry: name-based access to the three benchmark datasets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataframe.table import DataTable

from .flights import generate_flights
from .netflix import generate_netflix
from .playstore import generate_playstore


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata about a registered benchmark dataset."""

    name: str
    description: str
    generator: Callable[..., DataTable]
    default_rows: int


_REGISTRY: dict[str, DatasetInfo] = {
    "netflix": DatasetInfo(
        name="netflix",
        description="Netflix Movies and TV Shows (synthetic stand-in for Kaggle netflix-shows)",
        generator=generate_netflix,
        default_rows=2000,
    ),
    "flights": DatasetInfo(
        name="flights",
        description="US flight delays (synthetic stand-in for Kaggle flight-delays)",
        generator=generate_flights,
        default_rows=3000,
    ),
    "playstore": DatasetInfo(
        name="playstore",
        description="Google Play Store apps (synthetic stand-in for Kaggle google-play-store-apps)",
        generator=generate_playstore,
        default_rows=2500,
    ),
}

#: Cache of generated datasets keyed by (name, rows, seed).
_CACHE: dict[tuple[str, int, int], DataTable] = {}


def dataset_names() -> list[str]:
    """Names of the registered benchmark datasets."""
    return list(_REGISTRY)


def dataset_info(name: str) -> DatasetInfo:
    """Metadata for dataset *name*."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return _REGISTRY[key]


def load_dataset(name: str, num_rows: int | None = None, seed: int | None = None) -> DataTable:
    """Generate (or fetch from cache) one of the benchmark datasets."""
    info = dataset_info(name)
    rows = num_rows if num_rows is not None else info.default_rows
    actual_seed = seed if seed is not None else 0
    cache_key = (info.name, rows, actual_seed)
    if cache_key not in _CACHE:
        kwargs = {"num_rows": rows}
        if seed is not None:
            kwargs["seed"] = seed
        _CACHE[cache_key] = info.generator(**kwargs)
    return _CACHE[cache_key]


def dataset_schema_description(name: str, sample_rows: int = 5) -> str:
    """Schema plus a small sample, formatted for LLM prompts (Section 6)."""
    table = load_dataset(name)
    lines = [f"Dataset: {name}", "Schema: " + ", ".join(table.columns)]
    lines.append("Sample rows:")
    for record in table.head(sample_rows).rows():
        lines.append(", ".join(str(record[c]) for c in table.columns))
    return "\n".join(lines)
