"""Synthetic US flight-delays dataset.

Stands in for the Kaggle "2015 Flight Delays" dataset (5.8M rows, 12
attributes).  The generator produces a laptop-scale sample with the same
schema and with the structure the benchmark goals probe: summer months have
more flights but a steady delay rate, weather delays concentrate in winter
months and specific airlines, and long flights are rarely delayed but when
they are the cause is disproportionately security/late-aircraft.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.table import DataTable

SCHEMA = (
    "flight_id",
    "month",
    "day_of_week",
    "airline",
    "origin_airport",
    "destination_airport",
    "distance",
    "scheduled_departure",
    "departure_delay",
    "arrival_delay",
    "delay_reason",
    "cancelled",
)

_AIRLINES = ("AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX")
_AIRPORTS = ("ATL", "ORD", "DFW", "DEN", "LAX", "SFO", "PHX", "LAS", "IAH", "SEA", "BOS", "JFK")
_REASONS = ("none", "weather", "carrier", "late_aircraft", "security", "nas")


def _month_probability() -> np.ndarray:
    # Roughly a third of flights fall in the summer months (June-August).
    weights = np.array([0.07, 0.065, 0.075, 0.075, 0.08, 0.11, 0.12, 0.11, 0.08, 0.08, 0.07, 0.065])
    return weights / weights.sum()


def _delay_reason(rng: np.random.Generator, month: int, distance: float) -> str:
    if rng.random() > 0.28:
        return "none"
    if distance > 2000:
        # Long flights: rarely delayed, but security / late aircraft dominate.
        return str(rng.choice(["security", "late_aircraft", "carrier"], p=[0.45, 0.35, 0.20]))
    if month in (12, 1, 2):
        return str(rng.choice(["weather", "carrier", "nas", "late_aircraft"], p=[0.5, 0.2, 0.15, 0.15]))
    return str(rng.choice(["carrier", "late_aircraft", "nas", "weather"], p=[0.35, 0.3, 0.2, 0.15]))


def generate_flights(num_rows: int = 3000, seed: int = 11) -> DataTable:
    """Generate the synthetic flight-delays table (default 3,000 rows)."""
    rng = np.random.default_rng(seed)
    month_probabilities = _month_probability()

    records = []
    for index in range(num_rows):
        month = int(rng.choice(np.arange(1, 13), p=month_probabilities))
        airline = str(rng.choice(_AIRLINES))
        origin = str(rng.choice(_AIRPORTS))
        destination = str(rng.choice([a for a in _AIRPORTS if a != origin]))
        distance = float(rng.gamma(shape=2.2, scale=420))
        distance = round(min(distance, 4200), 0)
        reason = _delay_reason(rng, month, distance)
        if reason == "none":
            departure_delay = int(max(-10, rng.normal(-2, 6)))
        else:
            departure_delay = int(abs(rng.normal(35, 30))) + 15
        arrival_delay = departure_delay + int(rng.normal(0, 8))
        cancelled = 1 if (reason == "weather" and rng.random() < 0.08) else 0
        records.append(
            {
                "flight_id": index + 1,
                "month": month,
                "day_of_week": int(rng.integers(1, 8)),
                "airline": airline,
                "origin_airport": origin,
                "destination_airport": destination,
                "distance": distance,
                "scheduled_departure": int(rng.integers(0, 2400)),
                "departure_delay": departure_delay,
                "arrival_delay": arrival_delay,
                "delay_reason": reason,
                "cancelled": cancelled,
            }
        )
    return DataTable.from_records(records, name="flights")
