"""Sharded, connection-pooled sqlite infrastructure for the persistence tier.

PR 9 put N replicas and their worker threads over single-file sqlite stores
(:class:`~repro.engine.store.ResultStore`,
:class:`~repro.explore.diskcache.DiskCacheTier`), but every read and write
funnelled through one ``threading.Lock`` around one connection — WAL's
reader concurrency was thrown away, and writers from different replicas
collided on one file's write lock.  This module supplies the shared
machinery both stores now build on:

* **Key-range sharding** — every ``(namespace, request_hash)`` / cache key
  routes to one of ``num_shards`` sqlite files by a stable prefix of its
  existing hash (:func:`shard_index_for_hex` /
  :func:`shard_index_for_digest`), giving each shard its own WAL file and
  its own write lock, so writers to different shards never queue behind
  each other.  Shard 0 lives at the caller's original path (a
  ``num_shards=1`` store is file-layout-compatible with the legacy
  single-file layout); shards 1..N-1 are ``<name>.shard<k>`` siblings.
* **Per-thread read pooling** — each shard hands every reader thread its
  own connection (:meth:`SqliteShard.read_conn`), so concurrent lookups
  run lock-free beside each other *and* beside a writer, which is exactly
  the concurrency WAL journaling provides.  Read connections are opened
  ``query_only`` with a generous ``mmap_size`` so the hot lookup path is a
  page-cache read, not a write-lock acquisition.
* **Per-shard metadata** — every shard file records the schema version,
  the shard count and its own index (:func:`prepare_shard_meta`).  A store
  opened with a different shard count *detects the mismatch and drops the
  shard wholesale* rather than mis-routing keys, the same policy prior
  schema bumps established; orphaned shard files beyond the configured
  count are unlinked on open (:func:`remove_orphan_shards`).

The reliability seams compose per shard: each shard file is opened through
:func:`~repro.reliability.open_sqlite_verified` (corrupt files are
quarantine-renamed per shard), and callers wrap their per-shard write
transactions in :func:`~repro.reliability.retry_sqlite` exactly as they
did for the single file.  Like :mod:`repro.reliability`, this module is
stdlib-only and imports nothing above it, so both :mod:`repro.engine` and
:mod:`repro.explore` can depend on it without cycles.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, TypeVar

from repro.reliability import open_sqlite_verified

T = TypeVar("T")

#: Sibling-file naming for shards 1..N-1 (shard 0 keeps the original path).
_SHARD_FILE_RE = re.compile(r"\.shard(\d+)$")

#: ``mmap_size`` pragma applied to read connections: lookups become
#: page-cache reads instead of read() syscalls.  64 MiB comfortably covers
#: a serving store; sqlite treats it as an upper bound, not an allocation.
READ_MMAP_BYTES = 64 * 1024 * 1024


def shard_index_for_hex(request_hash: str, num_shards: int) -> int:
    """The shard a hex request hash routes to: ``int(hash[:8], 16) % num_shards``.

    Stable across processes and runs by construction — the routing input is
    the hash string itself, never Python's per-process ``hash()``.  Non-hex
    keys (tests, ad-hoc callers) fall back to a byte-prefix integer, which
    is equally stable.
    """
    if num_shards <= 1:
        return 0
    prefix = request_hash[:8]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = int.from_bytes(prefix.encode("utf-8", "replace"), "big")
    return value % num_shards


def shard_index_for_digest(digest: bytes, num_shards: int) -> int:
    """The shard a binary cache-key digest routes to (first 4 bytes, big-endian)."""
    if num_shards <= 1:
        return 0
    return int.from_bytes(digest[:4], "big") % num_shards


def shard_path(path: Path, index: int) -> Path:
    """Shard *index*'s file: the original *path* for 0, ``<name>.shard<k>`` above."""
    if index == 0:
        return path
    return path.with_name(f"{path.name}.shard{index}")


def remove_orphan_shards(path: Path, num_shards: int) -> list[Path]:
    """Unlink shard files of *path* with an index >= *num_shards*.

    Re-opening a store at a smaller shard count would otherwise leave
    higher-numbered shard files around to be misread by a later open at
    the old count; the meta check would drop them anyway, so removing them
    eagerly (WAL/SHM siblings included) just keeps the directory honest.
    Returns the removed paths.
    """
    removed: list[Path] = []
    prefix = f"{path.name}.shard"
    if not path.parent.exists():
        return removed
    for candidate in path.parent.iterdir():
        name = candidate.name
        if not name.startswith(prefix):
            continue
        match = _SHARD_FILE_RE.search(name)
        if match is None or int(match.group(1)) < num_shards:
            continue
        for stale in (candidate, Path(str(candidate) + "-wal"), Path(str(candidate) + "-shm")):
            try:
                stale.unlink()
                if stale is candidate:
                    removed.append(candidate)
            except OSError:
                pass
    return removed


def prepare_shard_meta(
    conn: sqlite3.Connection,
    *,
    schema_version: int,
    num_shards: int,
    shard_index: int,
) -> bool:
    """Create/verify the shard's ``meta`` table; True when old tables must drop.

    A pre-existing file whose recorded schema version, shard count or shard
    index disagrees with the caller's is **stale**: its rows were written
    under a different layout or a different key→shard routing, so the
    caller must drop its tables wholesale rather than reinterpret (or
    mis-route) them.  A file with no ``num_shards`` row is a legacy
    single-file store, which counts as ``num_shards=1``.  The caller's
    values are (re)written afterwards, so the next open at the same
    configuration is clean.  Runs inside the caller's initialize
    transaction.
    """
    conn.execute("CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)")
    recorded = dict(
        conn.execute(
            "SELECT key, value FROM meta"
            " WHERE key IN ('schema_version', 'num_shards', 'shard_index')"
        ).fetchall()
    )
    drop = bool(recorded) and (
        recorded.get("schema_version") != str(schema_version)
        or recorded.get("num_shards", "1") != str(num_shards)
        or recorded.get("shard_index", "0") != str(shard_index)
    )
    conn.executemany(
        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
        [
            ("schema_version", str(schema_version)),
            ("num_shards", str(num_shards)),
            ("shard_index", str(shard_index)),
        ],
    )
    return drop


class SqliteShard:
    """One shard file: a single write connection + lock, per-thread readers.

    Writes serialize on :attr:`write_lock` around :attr:`conn` (one writer
    per WAL file is a sqlite invariant anyway); reads go through
    :meth:`read_conn`, which hands each calling thread its own pooled
    connection so lookups never queue behind each other or behind the
    writer.  Every opened read connection is registered so :meth:`close`
    can tear the whole pool down.
    """

    def __init__(
        self,
        index: int,
        path: Path,
        timeout: float,
        initialize: Callable[[sqlite3.Connection, int], None],
    ):
        self.index = index
        self.path = path
        self.timeout = timeout
        self.write_lock = threading.Lock()
        self.conn, quarantined = open_sqlite_verified(
            path, timeout, initialize=lambda conn: initialize(conn, index)
        )
        #: Where a corrupt pre-existing shard file was renamed, if any.
        self.quarantined_path: Optional[str] = (
            str(quarantined) if quarantined is not None else None
        )
        self._read_local = threading.local()
        self._read_conns: list[sqlite3.Connection] = []
        self._read_conns_lock = threading.Lock()
        self._closed = False

    def read_conn(self) -> sqlite3.Connection:
        """This thread's pooled read connection (opened lazily, reused forever).

        ``query_only`` guards against accidental writes outside the write
        lock; ``mmap_size`` turns repeat lookups into page-cache reads.
        Python's sqlite3 caches prepared statements per connection, so a
        thread re-running the same lookup skips re-parsing the SQL too.
        """
        conn = getattr(self._read_local, "conn", None)
        if conn is not None:
            return conn
        if self._closed:
            raise sqlite3.ProgrammingError("cannot read from a closed shard")
        conn = sqlite3.connect(
            str(self.path), timeout=self.timeout, check_same_thread=False
        )
        conn.execute(f"PRAGMA mmap_size={READ_MMAP_BYTES}")
        conn.execute("PRAGMA query_only=ON")
        self._read_local.conn = conn
        with self._read_conns_lock:
            self._read_conns.append(conn)
        return conn

    def close(self) -> None:
        self._closed = True
        with self._read_conns_lock:
            for conn in self._read_conns:
                try:
                    conn.close()
                except Exception:  # noqa: BLE001 — close is best-effort
                    pass
            self._read_conns.clear()
        self._read_local = threading.local()
        with self.write_lock:
            self.conn.close()


class ShardedSqlite:
    """A fixed set of :class:`SqliteShard` files under one logical path.

    Construction removes orphaned shard files beyond *num_shards*, then
    opens every shard through the corrupt-file-quarantining
    :func:`~repro.reliability.open_sqlite_verified`, calling
    ``initialize(conn, shard_index)`` on each — where the owning store
    runs its pragmas, schema and :func:`prepare_shard_meta` check.
    """

    def __init__(
        self,
        path: str | Path,
        num_shards: int,
        timeout: float,
        initialize: Callable[[sqlite3.Connection, int], None],
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.path = Path(path)
        self.num_shards = num_shards
        self.path.parent.mkdir(parents=True, exist_ok=True)
        remove_orphan_shards(self.path, num_shards)
        self.shards: list[SqliteShard] = []
        try:
            for index in range(num_shards):
                self.shards.append(
                    SqliteShard(index, shard_path(self.path, index), timeout, initialize)
                )
        except BaseException:
            self.close()
            raise

    def shard_for_hex(self, request_hash: str) -> SqliteShard:
        return self.shards[shard_index_for_hex(request_hash, self.num_shards)]

    def shard_for_digest(self, digest: bytes) -> SqliteShard:
        return self.shards[shard_index_for_digest(digest, self.num_shards)]

    def group_by_shard(
        self, items: Iterable[T], key: Callable[[T], SqliteShard]
    ) -> dict[SqliteShard, list[T]]:
        """Partition *items* by their owning shard (for per-shard batch writes)."""
        groups: dict[SqliteShard, list[T]] = {}
        for item in items:
            groups.setdefault(key(item), []).append(item)
        return groups

    def quarantined_paths(self) -> list[str]:
        return [
            shard.quarantined_path
            for shard in self.shards
            if shard.quarantined_path is not None
        ]

    def close(self) -> None:
        for shard in self.shards:
            try:
                shard.close()
            except Exception:  # noqa: BLE001 — close every shard regardless
                pass


__all__ = [
    "READ_MMAP_BYTES",
    "ShardedSqlite",
    "SqliteShard",
    "prepare_shard_meta",
    "remove_orphan_shards",
    "shard_index_for_digest",
    "shard_index_for_hex",
    "shard_path",
]
