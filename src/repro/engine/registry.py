"""Name-based registry of engine pipeline stages.

Stages used to plug in through constructor arguments only — fine in
process, but a served :class:`~repro.engine.request.ExploreRequest` arrives
as JSON and cannot carry a live object, and process-pool workers can only
rebuild what a picklable spec describes.  This module closes both gaps:
stage implementations register under a short name per *kind* (the
entry-point pattern), and requests / engine specs select them declaratively:

>>> ExploreRequest(goal="...", dataset="netflix",
...                stages={"session_generator": "atena"})   # doctest: +SKIP

A registered factory receives a :class:`StageContext` — the engine's shared
LLM client, lazily-built few-shot bank supplier and CDRL configuration — so
expensive state is injected rather than rebuilt per stage.  The built-in
implementations register themselves when :mod:`repro.engine.stages` is
imported (the registry triggers that import on first use, so name lookups
work regardless of import order); plug-in packages register theirs with the
:func:`register_stage_factory` decorator at import time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from .errors import FieldError, RequestValidationError

if TYPE_CHECKING:  # kept out of the import graph: request validation
    from repro.cdrl.agent import CdrlConfig  # imports this module, and must
    from repro.llm.interface import LLMClient  # stay light.

#: The four pluggable stage kinds, keyed exactly as requests select them.
KIND_SPEC_DERIVER = "spec_deriver"
KIND_SESSION_GENERATOR = "session_generator"
KIND_NOTEBOOK_RENDERER = "notebook_renderer"
KIND_INSIGHT_EXTRACTOR = "insight_extractor"
STAGE_KINDS: tuple[str, ...] = (
    KIND_SPEC_DERIVER,
    KIND_SESSION_GENERATOR,
    KIND_NOTEBOOK_RENDERER,
    KIND_INSIGHT_EXTRACTOR,
)

#: Default stage name per kind (the paper's system).
DEFAULT_STAGE_NAMES: dict[str, str] = {
    KIND_SPEC_DERIVER: "nl2pd2ldx",
    KIND_SESSION_GENERATOR: "cdrl",
    KIND_NOTEBOOK_RENDERER: "markdown",
    KIND_INSIGHT_EXTRACTOR: "mechanical",
}


@dataclass
class StageContext:
    """Shared engine state handed to stage factories.

    ``fewshot_bank`` is a supplier callable (building the bank materialises
    the full benchmark, so it must stay lazy and shared), matching what
    :class:`~repro.engine.stages.ChainedSpecDeriver` expects.
    """

    llm_client: LLMClient
    fewshot_bank: Callable[[], Any]
    cdrl_config: CdrlConfig


#: A stage factory: builds one stage instance from the engine's context.
StageFactory = Callable[[StageContext], Any]


class StageRegistry:
    """Thread-safe mapping of ``(kind, name)`` to stage factories."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._factories: dict[str, dict[str, StageFactory]] = {
            kind: {} for kind in STAGE_KINDS
        }
        self._builtins_loaded = False

    # -- registration ----------------------------------------------------------------
    def register(
        self, kind: str, name: str, factory: StageFactory, *, replace: bool = False
    ) -> None:
        """Register *factory* under ``(kind, name)``.

        Re-registering an existing name raises unless ``replace=True`` —
        silently shadowing a built-in is almost always a bug.
        """
        if kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {kind!r}; expected one of {STAGE_KINDS}")
        if not name or not name.strip():
            raise ValueError("stage name must be a non-empty string")
        key = name.strip().lower()
        with self._lock:
            if not replace and key in self._factories[kind]:
                raise ValueError(f"stage {key!r} already registered for kind {kind!r}")
            self._factories[kind][key] = factory

    # -- lookups ---------------------------------------------------------------------
    def names(self, kind: str) -> list[str]:
        """Registered names for *kind*, sorted."""
        self._ensure_builtins()
        if kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {kind!r}; expected one of {STAGE_KINDS}")
        with self._lock:
            return sorted(self._factories[kind])

    def describe(self) -> dict[str, list[str]]:
        """Every registered name per kind (the server's ``/stages`` payload)."""
        return {kind: self.names(kind) for kind in STAGE_KINDS}

    def create(self, kind: str, name: str, context: StageContext) -> Any:
        """Build the stage registered under ``(kind, name)``.

        Unknown names raise :class:`RequestValidationError` with the field
        spelled ``stages.<kind>``, so serving layers map straight to a
        structured 400 payload.
        """
        self._ensure_builtins()
        if kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {kind!r}; expected one of {STAGE_KINDS}")
        key = str(name).strip().lower()
        with self._lock:
            factory = self._factories[kind].get(key)
        if factory is None:
            raise RequestValidationError(
                [
                    FieldError(
                        f"stages.{kind}",
                        f"unknown stage {name!r}; registered: {self.names(kind)}",
                    )
                ]
            )
        return factory(context)

    def resolve(
        self, selection: Mapping[str, str], context: StageContext
    ) -> dict[str, Any]:
        """Build every stage a selection names (kind → stage instance)."""
        return {
            kind: self.create(kind, name, context) for kind, name in selection.items()
        }

    # -- built-in loading ------------------------------------------------------------
    def _ensure_builtins(self) -> None:
        """Import the built-in stage module once, registering its factories.

        Deferred so that importing this module (e.g. from ``request.py``
        for kind validation) does not pull in the full pipeline stack.
        """
        if self._builtins_loaded:
            return
        self._builtins_loaded = True
        import repro.engine.stages  # noqa: F401  (registers built-ins on import)


#: The process-wide default registry; engines resolve stage names against it.
STAGE_REGISTRY = StageRegistry()


def register_stage_factory(kind: str, name: str, *, replace: bool = False):
    """Decorator registering a stage factory in the default registry::

        @register_stage_factory("session_generator", "my-generator")
        def _build(context: StageContext):
            return MySessionGenerator(context.cdrl_config)

    Worker processes resolve names against *their own* copy of the default
    registry, so a plug-in's defining module must be importable (and
    imported) there too — true automatically for everything registered at
    package import time.
    """

    def decorate(factory: StageFactory) -> StageFactory:
        STAGE_REGISTRY.register(kind, name, factory, replace=replace)
        return factory

    return decorate
