"""Declarative, JSON-serializable explore requests.

An :class:`ExploreRequest` names *what* to explore — a registered dataset
(plus an optional row cap and generation seed), the analytical goal, an
optional explicit LDX specification and an episode budget — without holding
any live objects, so it can be posted over a wire, queued, logged and
replayed.  :meth:`ExploreRequest.validate` checks the request up front and
reports every problem at once as a
:class:`~repro.engine.errors.RequestValidationError`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Mapping

from repro.datasets.registry import dataset_names

from .errors import FieldError, RequestValidationError

#: Version of the request wire format (bump on incompatible changes).
REQUEST_SCHEMA_VERSION = "1.0"


@dataclass(frozen=True)
class ExploreRequest:
    """One declarative LINX exploration request.

    Parameters
    ----------
    goal:
        The analytical goal in natural language.  Used for specification
        derivation (when ``ldx_text`` is not given) and echoed into the
        rendered notebook.
    dataset:
        Name of a registered benchmark dataset (see
        :func:`repro.datasets.registry.dataset_names`).
    num_rows:
        Optional row cap: generate/load at most this many rows.
    dataset_seed:
        Optional seed for the dataset generator (default: the registry's).
    ldx_text:
        Optional explicit LDX specification.  When given, the derivation
        stage is skipped (the power-user path).
    episodes:
        Optional CDRL episode budget override.
    seed:
        Optional seed for session generation (policy init and sampling);
        ``None`` defers to the session generator's configured seed.
    request_id:
        Optional caller-assigned identifier, echoed on progress events and
        into the result.
    """

    goal: str
    dataset: str
    num_rows: int | None = None
    dataset_seed: int | None = None
    ldx_text: str | None = None
    episodes: int | None = None
    seed: int | None = None
    request_id: str = ""
    schema_version: str = REQUEST_SCHEMA_VERSION

    # -- validation ------------------------------------------------------------------
    def validation_errors(
        self, known_datasets: Iterable[str] | None = None
    ) -> list[FieldError]:
        """Every problem with this request (empty when valid).

        ``known_datasets`` overrides the registry lookup; pass ``None`` to
        validate against the registered benchmark datasets, or an explicit
        collection (e.g. when the caller supplies its own table).
        """
        errors: list[FieldError] = []
        if self.schema_version != REQUEST_SCHEMA_VERSION:
            errors.append(
                FieldError(
                    "schema_version",
                    f"unsupported version {self.schema_version!r}; "
                    f"expected {REQUEST_SCHEMA_VERSION!r}",
                )
            )
        if not isinstance(self.goal, str) or not self.goal.strip():
            errors.append(FieldError("goal", "must be a non-empty string"))
        if not isinstance(self.dataset, str) or not self.dataset.strip():
            errors.append(FieldError("dataset", "must be a non-empty string"))
        else:
            known = list(known_datasets) if known_datasets is not None else dataset_names()
            if self.dataset.strip().lower() not in {name.lower() for name in known}:
                errors.append(
                    FieldError(
                        "dataset",
                        f"unknown dataset {self.dataset!r}; available: {sorted(known)}",
                    )
                )
        for name, value in (("num_rows", self.num_rows), ("episodes", self.episodes)):
            if value is not None and (
                not _is_int(value) or value < 1
            ):
                errors.append(FieldError(name, "must be a positive integer or null"))
        if self.dataset_seed is not None and not _is_int(self.dataset_seed):
            errors.append(FieldError("dataset_seed", "must be an integer or null"))
        if self.seed is not None and not _is_int(self.seed):
            errors.append(FieldError("seed", "must be an integer or null"))
        if self.ldx_text is not None and (
            not isinstance(self.ldx_text, str) or not self.ldx_text.strip()
        ):
            errors.append(FieldError("ldx_text", "must be a non-empty string or null"))
        if not isinstance(self.request_id, str):
            errors.append(FieldError("request_id", "must be a string"))
        return errors

    def validate(self, known_datasets: Iterable[str] | None = None) -> "ExploreRequest":
        """Raise :class:`RequestValidationError` unless the request is valid."""
        errors = self.validation_errors(known_datasets)
        if errors:
            raise RequestValidationError(errors)
        return self

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-native dict representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExploreRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys are rejected (they usually indicate a schema mismatch);
        field *values* are checked by :meth:`validate`, not here.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError(
                [FieldError("request", f"expected an object, got {type(payload).__name__}")]
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestValidationError(
                [FieldError(name, "unknown request field") for name in unknown]
            )
        missing = [name for name in ("goal", "dataset") if name not in payload]
        if missing:
            raise RequestValidationError(
                [FieldError(name, "required field is missing") for name in missing]
            )
        return cls(**dict(payload))


def _is_int(value: Any) -> bool:
    """True for genuine integers (bools are excluded on purpose)."""
    return isinstance(value, int) and not isinstance(value, bool)
