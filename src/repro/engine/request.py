"""Declarative, JSON-serializable explore requests.

An :class:`ExploreRequest` names *what* to explore — a registered dataset
(plus an optional row cap and generation seed), the analytical goal, an
optional explicit LDX specification, an episode budget and an optional
declarative stage selection (``stages={"session_generator": "atena"}``,
resolved against the :mod:`~repro.engine.registry`) — without holding any
live objects, so it can be posted over a wire, queued, logged and replayed.
:meth:`ExploreRequest.validate` checks the request up front and reports
every problem at once as a
:class:`~repro.engine.errors.RequestValidationError`.

:meth:`ExploreRequest.canonical_hash` gives the request's *identity*: a
stable digest of every execution-relevant field (the caller-assigned
``request_id`` label is excluded), used by the scheduler to deduplicate
in-flight work and by the result store to serve identical requests
idempotently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Mapping

from repro.datasets.registry import dataset_names

from .errors import FieldError, RequestValidationError
from .registry import STAGE_KINDS

#: Version of the request wire format (bump on incompatible changes).
#: 1.1 added the optional ``stages`` selection; 1.0 payloads (which simply
#: lack the field) are still accepted.
REQUEST_SCHEMA_VERSION = "1.1"

#: Request wire-format versions this build can parse.
SUPPORTED_REQUEST_VERSIONS = ("1.0", "1.1")


@dataclass(frozen=True)
class ExploreRequest:
    """One declarative LINX exploration request.

    Parameters
    ----------
    goal:
        The analytical goal in natural language.  Used for specification
        derivation (when ``ldx_text`` is not given) and echoed into the
        rendered notebook.
    dataset:
        Name of a registered benchmark dataset (see
        :func:`repro.datasets.registry.dataset_names`).
    num_rows:
        Optional row cap: generate/load at most this many rows.
    dataset_seed:
        Optional seed for the dataset generator (default: the registry's).
    ldx_text:
        Optional explicit LDX specification.  When given, the derivation
        stage is skipped (the power-user path).
    episodes:
        Optional CDRL episode budget override.
    seed:
        Optional seed for session generation (policy init and sampling);
        ``None`` defers to the session generator's configured seed.
    stages:
        Optional declarative stage selection: a mapping from stage kind
        (:data:`~repro.engine.registry.STAGE_KINDS`) to a registered stage
        name, e.g. ``{"session_generator": "atena"}``.  Unselected kinds
        keep the engine's configured stage.
    request_id:
        Optional caller-assigned identifier, echoed on progress events and
        into the result.  A *label*, not part of the request's identity:
        :meth:`canonical_hash` ignores it.
    """

    goal: str
    dataset: str
    num_rows: int | None = None
    dataset_seed: int | None = None
    ldx_text: str | None = None
    episodes: int | None = None
    seed: int | None = None
    stages: dict[str, str] | None = None
    request_id: str = ""
    schema_version: str = REQUEST_SCHEMA_VERSION

    # -- validation ------------------------------------------------------------------
    def validation_errors(
        self, known_datasets: Iterable[str] | None = None
    ) -> list[FieldError]:
        """Every problem with this request (empty when valid).

        ``known_datasets`` overrides the registry lookup; pass ``None`` to
        validate against the registered benchmark datasets, or an explicit
        collection (e.g. when the caller supplies its own table).
        """
        errors: list[FieldError] = []
        if self.schema_version not in SUPPORTED_REQUEST_VERSIONS:
            errors.append(
                FieldError(
                    "schema_version",
                    f"unsupported version {self.schema_version!r}; "
                    f"supported: {list(SUPPORTED_REQUEST_VERSIONS)}",
                )
            )
        if not isinstance(self.goal, str) or not self.goal.strip():
            errors.append(FieldError("goal", "must be a non-empty string"))
        if not isinstance(self.dataset, str) or not self.dataset.strip():
            errors.append(FieldError("dataset", "must be a non-empty string"))
        else:
            known = list(known_datasets) if known_datasets is not None else dataset_names()
            if self.dataset.strip().lower() not in {name.lower() for name in known}:
                errors.append(
                    FieldError(
                        "dataset",
                        f"unknown dataset {self.dataset!r}; available: {sorted(known)}",
                    )
                )
        for name, value in (("num_rows", self.num_rows), ("episodes", self.episodes)):
            if value is not None and (
                not _is_int(value) or value < 1
            ):
                errors.append(FieldError(name, "must be a positive integer or null"))
        if self.dataset_seed is not None and not _is_int(self.dataset_seed):
            errors.append(FieldError("dataset_seed", "must be an integer or null"))
        if self.seed is not None and not _is_int(self.seed):
            errors.append(FieldError("seed", "must be an integer or null"))
        if self.ldx_text is not None and (
            not isinstance(self.ldx_text, str) or not self.ldx_text.strip()
        ):
            errors.append(FieldError("ldx_text", "must be a non-empty string or null"))
        errors.extend(self._stage_selection_errors())
        if not isinstance(self.request_id, str):
            errors.append(FieldError("request_id", "must be a string"))
        return errors

    def _stage_selection_errors(self) -> list[FieldError]:
        """Structural problems with the ``stages`` selection.

        Stage *names* are resolved against the registry when the engine
        executes the request (custom stages may be registered after
        validation); only the shape and the kinds are checked here.
        """
        if self.stages is None:
            return []
        if not isinstance(self.stages, Mapping):
            return [FieldError("stages", "must be an object mapping stage kind to name")]
        errors: list[FieldError] = []
        for kind, name in self.stages.items():
            if kind not in STAGE_KINDS:
                errors.append(
                    FieldError(
                        f"stages.{kind}",
                        f"unknown stage kind; expected one of {sorted(STAGE_KINDS)}",
                    )
                )
            elif not isinstance(name, str) or not name.strip():
                errors.append(
                    FieldError(f"stages.{kind}", "stage name must be a non-empty string")
                )
        return errors

    def validate(self, known_datasets: Iterable[str] | None = None) -> "ExploreRequest":
        """Raise :class:`RequestValidationError` unless the request is valid."""
        errors = self.validation_errors(known_datasets)
        if errors:
            raise RequestValidationError(errors)
        return self

    # -- identity --------------------------------------------------------------------
    def canonical_hash(self) -> str:
        """A stable hex digest identifying *what this request executes*.

        Two requests hash identically exactly when the engine would do
        identical work for them: every execution-relevant field
        participates, normalised (an empty ``stages`` mapping equals
        ``None``, selection order is irrelevant, and the wire-format
        version is pinned so a 1.0 payload hashes like its 1.1 re-send).
        The caller-assigned ``request_id`` label is excluded.  Used for
        scheduler deduplication and as the result-store key.
        """
        payload = self.to_dict()
        del payload["request_id"]
        payload["schema_version"] = REQUEST_SCHEMA_VERSION
        stages = payload.get("stages")
        # Stage names resolve case-insensitively (stripped) in the
        # registry, so equivalent spellings must hash identically too.
        payload["stages"] = (
            {
                kind: str(stages[kind]).strip().lower()
                for kind in sorted(stages)
            }
            if stages
            else None
        )
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=20).hexdigest()

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-native dict representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExploreRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys are rejected (they usually indicate a schema mismatch);
        field *values* are checked by :meth:`validate`, not here.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError(
                [FieldError("request", f"expected an object, got {type(payload).__name__}")]
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RequestValidationError(
                [FieldError(name, "unknown request field") for name in unknown]
            )
        missing = [name for name in ("goal", "dataset") if name not in payload]
        if missing:
            raise RequestValidationError(
                [FieldError(name, "required field is missing") for name in missing]
            )
        prepared = dict(payload)
        if isinstance(prepared.get("stages"), Mapping):
            prepared["stages"] = dict(prepared["stages"])
        return cls(**prepared)


def _is_int(value: Any) -> bool:
    """True for genuine integers (bools are excluded on purpose)."""
    return isinstance(value, int) and not isinstance(value, bool)
