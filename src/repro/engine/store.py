"""A persistent, sqlite-backed store of explore results keyed by request hash.

The scheduler executes a request at most once: results land here under
``(namespace, canonical_hash)``, so an identical resubmission — same goal,
dataset, seeds, episode budget and stage selection — is served from disk
byte-for-byte instead of re-training, and
:meth:`ExploreResult.rebuild_session` turns the stored operation trace back
into a live session for warm replay.  The *namespace* is the submitting
engine's :meth:`~repro.engine.core.LinxEngine.config_fingerprint`, so one
store file shared across servers with different configurations never serves
one configuration's results for another's requests; the composite primary
key doubles as the covering index for the hot lookup path.

Durability follows :class:`~repro.explore.diskcache.DiskCacheTier` exactly:
WAL journaling for concurrent readers beside a writer, one transaction per
insert (a cancelled or crashed request can never leave a half-written row),
and a schema-version row that drops the store *wholesale* on mismatch —
stale formats are discarded, never misread.  Payloads are the canonical
JSON wire format (:meth:`ExploreResult.to_dict`), so the store doubles as a
replay log that any JSON consumer can read.  Long-running servers bound
disk growth with :meth:`prune`, the disk analogue of the scheduler's
terminal-ticket GC.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Optional

from .result import ExploreResult

#: Version of the on-disk layout (sqlite schema + result payload format).
#: Bump on any incompatible change: a mismatching store is dropped and
#: recreated on open, mirroring ``DiskCacheTier`` semantics.
#: v2: namespace split into its own column — composite primary key
#: ``(namespace, request_hash)`` covers the lookup path, and a
#: ``created_at`` index makes :meth:`prune` a range scan.
STORE_SCHEMA_VERSION = 2


class ResultStore:
    """Persistent mapping of ``(namespace, request hash)`` → serialized result.

    All operations are guarded by an in-process lock so one store instance
    can be shared across the scheduler's worker threads; WAL journaling
    handles concurrent *processes* on the same file.

    Parameters
    ----------
    path:
        The sqlite file (parent directories are created).  Conventionally
        ``<dir>/results.sqlite``.
    timeout:
        Seconds a writer waits on a locked database before giving up.
    """

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        #: Lookups served / fallen through / results written / rows pruned.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.pruned = 0
        #: True when a version mismatch dropped a pre-existing store.
        self.invalidated = False
        self._ensure_schema()

    # -- schema -----------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and row[0] != str(STORE_SCHEMA_VERSION):
                # A stale layout (e.g. v1's combined "namespace:hash" key
                # column): drop everything, never attempt to reinterpret
                # old rows.
                self._conn.execute("DROP TABLE IF EXISTS results")
                self.invalidated = True
            # The composite primary key IS the covering index for the hot
            # ``(namespace, request_hash)`` lookup; created_at gets its own
            # index so prune() is a range scan, not a table scan.
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " request_id TEXT NOT NULL,"
                " dataset TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_created_at"
                " ON results (created_at)"
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    # -- lookups ----------------------------------------------------------------------
    def get_payload(
        self, namespace: str, request_hash: str
    ) -> Optional[dict[str, Any]]:
        """The stored result dict under ``(namespace, request_hash)``, or ``None``.

        The raw wire-format payload — what a serving layer returns without
        re-materialising an :class:`ExploreResult`.  An unreadable payload
        behaves like a miss and is removed so it cannot keep failing.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results"
                " WHERE namespace = ? AND request_hash = ?",
                (namespace, request_hash),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
        try:
            payload = json.loads(row[0])
            if not isinstance(payload, dict):
                raise ValueError("result payload must be a JSON object")
        except Exception:
            with self._lock, self._conn:
                self._conn.execute(
                    "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                )
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def get(self, namespace: str, request_hash: str) -> Optional[ExploreResult]:
        """The stored :class:`ExploreResult`, or ``None``."""
        payload = self.get_payload(namespace, request_hash)
        if payload is None:
            return None
        try:
            return ExploreResult.from_dict(payload)
        except Exception:
            # Parseable JSON that no longer matches the result schema (e.g.
            # written by a newer minor version): treat as a miss.
            with self._lock:
                self.hits -= 1
                self.misses += 1
            return None

    def contains(self, namespace: str, request_hash: str) -> bool:
        """Whether a result is stored under the key (no counter bump)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE namespace = ? AND request_hash = ?",
                (namespace, request_hash),
            ).fetchone()
        return row is not None

    # -- writes -----------------------------------------------------------------------
    def put(self, namespace: str, request_hash: str, result: ExploreResult) -> None:
        """Persist *result* under ``(namespace, request_hash)`` in one transaction.

        ``INSERT OR REPLACE`` keeps the store idempotent under concurrent
        executions of the same request (last writer wins; both wrote
        identical work).
        """
        payload = json.dumps(result.to_dict())
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (namespace, request_hash, request_id, dataset, payload, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    namespace,
                    request_hash,
                    str(result.request.get("request_id", "")),
                    result.dataset_name,
                    payload,
                    time.time(),
                ),
            )
            self.writes += 1

    def delete(self, namespace: str, request_hash: str) -> bool:
        """Remove the row under the key; True when one existed."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                (namespace, request_hash),
            )
            return cursor.rowcount > 0

    # -- maintenance ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            )

    def request_hashes(self, namespace: Optional[str] = None) -> list[str]:
        """Stored hashes, oldest first (the replay/audit index).

        With *namespace*, only that configuration's hashes; without, every
        stored hash across namespaces.
        """
        with self._lock:
            if namespace is None:
                rows = self._conn.execute(
                    "SELECT request_hash FROM results ORDER BY created_at"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT request_hash FROM results WHERE namespace = ?"
                    " ORDER BY created_at",
                    (namespace,),
                ).fetchall()
        return [row[0] for row in rows]

    def prune(self, older_than: float) -> int:
        """Delete results written more than *older_than* seconds ago.

        The disk analogue of the scheduler's terminal-ticket GC: a
        long-running server calls this periodically so the store stays
        bounded while recent results remain servable.  Returns the number
        of rows removed.
        """
        if older_than < 0:
            raise ValueError(f"older_than must be >= 0, got {older_than}")
        cutoff = time.time() - older_than
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE created_at < ?", (cutoff,)
            )
            removed = cursor.rowcount
            self.pruned += removed
        return removed

    def clear(self) -> None:
        """Drop every stored result (the schema version row stays)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM results")

    def describe(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "pruned": self.pruned,
            "invalidated": self.invalidated,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
