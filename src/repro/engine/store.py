"""A persistent, sqlite-backed store of explore results keyed by request hash.

The scheduler executes a request at most once: results land here under
``(namespace, canonical_hash)``, so an identical resubmission — same goal,
dataset, seeds, episode budget and stage selection — is served from disk
byte-for-byte instead of re-training, and
:meth:`ExploreResult.rebuild_session` turns the stored operation trace back
into a live session for warm replay.  The *namespace* is the submitting
engine's :meth:`~repro.engine.core.LinxEngine.config_fingerprint`, so one
store file shared across servers with different configurations never serves
one configuration's results for another's requests; the composite primary
key doubles as the covering index for the hot lookup path.

Beyond results, the store is the cluster's **coordination point**: the
``leases`` table implements single-transaction compare-and-claim
(:meth:`claim` / :meth:`renew` / :meth:`release`), so N server replicas
sharing one store file never execute the same canonical hash concurrently
— and a lease whose holder stops renewing (a crashed replica) expires and
is *taken over* by the next replica to ask.

Durability follows :class:`~repro.explore.diskcache.DiskCacheTier` exactly:
WAL journaling for concurrent readers beside a writer, one transaction per
insert (a cancelled or crashed request can never leave a half-written row),
and a schema-version row that drops the store *wholesale* on mismatch —
stale formats are discarded, never misread.  A corrupt/truncated database
file is quarantine-renamed and rebuilt on open instead of failing engine
construction, and every write rides the shared
:func:`~repro.reliability.retry_sqlite` backoff helper so transient
``database is locked`` contention between replicas degrades to a retry.
Payloads are the canonical JSON wire format (:meth:`ExploreResult.to_dict`),
so the store doubles as a replay log that any JSON consumer can read.
Long-running servers bound disk growth with :meth:`prune`, the disk
analogue of the scheduler's terminal-ticket GC.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional, TypeVar

from repro.reliability import (
    SITE_CLAIM_ACQUIRED,
    SITE_STORE_COMMIT,
    SITE_STORE_WRITE,
    fault_point,
    open_sqlite_verified,
    retry_sqlite,
)

from .result import ExploreResult

T = TypeVar("T")

#: Version of the on-disk layout (sqlite schema + result payload format).
#: Bump on any incompatible change: a mismatching store is dropped and
#: recreated on open, mirroring ``DiskCacheTier`` semantics.
#: v2: namespace split into its own column — composite primary key
#: ``(namespace, request_hash)`` covers the lookup path, and a
#: ``created_at`` index makes :meth:`prune` a range scan.  The ``leases``
#: coordination table is additive (``CREATE TABLE IF NOT EXISTS``), so it
#: does not bump the version: v2 files gain it in place, and older readers
#: simply ignore it.
STORE_SCHEMA_VERSION = 2


class ResultStore:
    """Persistent mapping of ``(namespace, request hash)`` → serialized result.

    All operations are guarded by an in-process lock so one store instance
    can be shared across the scheduler's worker threads; WAL journaling
    handles concurrent *processes* on the same file, and sqlite's write
    lock makes :meth:`claim` a genuine cross-process compare-and-claim.

    Parameters
    ----------
    path:
        The sqlite file (parent directories are created).  Conventionally
        ``<dir>/results.sqlite``.  A corrupt file found here is renamed to
        ``<name>.corrupt-<stamp>`` and a fresh store is built in its place
        (``quarantined_path`` records the rename).
    timeout:
        Seconds a writer waits on a locked database before giving up.
    """

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        self._lock = threading.Lock()
        #: Lookups served / fallen through / results written / rows pruned.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.pruned = 0
        #: Transient ``database is locked`` write failures absorbed by the
        #: shared backoff helper (telemetry for multi-replica contention).
        self.write_retries = 0
        #: Lease telemetry: successful claims, takeovers of expired leases,
        #: renewals, releases.
        self.lease_claims = 0
        self.lease_takeovers = 0
        self.lease_renewals = 0
        self.lease_releases = 0
        #: True when a version mismatch dropped a pre-existing store.
        self.invalidated = False
        self._conn, quarantined = open_sqlite_verified(
            self.path, timeout, initialize=self._initialize
        )
        #: Where a corrupt pre-existing file was renamed on open, if any.
        self.quarantined_path: Optional[str] = (
            str(quarantined) if quarantined is not None else None
        )

    # -- schema -----------------------------------------------------------------------
    def _initialize(self, conn: sqlite3.Connection) -> None:
        """Pragmas + schema on a fresh connection (quarantine-retried by open)."""
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and row[0] != str(STORE_SCHEMA_VERSION):
                # A stale layout (e.g. v1's combined "namespace:hash" key
                # column): drop everything, never attempt to reinterpret
                # old rows.
                conn.execute("DROP TABLE IF EXISTS results")
                conn.execute("DROP TABLE IF EXISTS leases")
                self.invalidated = True
            # The composite primary key IS the covering index for the hot
            # ``(namespace, request_hash)`` lookup; created_at gets its own
            # index so prune() is a range scan, not a table scan.
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " request_id TEXT NOT NULL,"
                " dataset TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_created_at"
                " ON results (created_at)"
            )
            # The coordination table: at most one replica holds the lease
            # for a (namespace, hash) at a time; expiry makes crashed
            # holders recoverable.
            conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " replica_id TEXT NOT NULL,"
                " expires_at REAL NOT NULL,"
                " claimed_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )

    def _write(self, operation: Callable[[], T]) -> T:
        """Run a write transaction through the shared backoff helper.

        Transient ``database is locked`` errors from sibling replicas on
        the same file degrade to bounded retries (counted in
        ``write_retries``); anything else propagates unchanged.
        """

        def count_retry(attempt: int, exc: BaseException, delay: float) -> None:
            with self._lock:
                self.write_retries += 1

        return retry_sqlite(operation, on_retry=count_retry)

    # -- lookups ----------------------------------------------------------------------
    def get_payload(
        self, namespace: str, request_hash: str
    ) -> Optional[dict[str, Any]]:
        """The stored result dict under ``(namespace, request_hash)``, or ``None``.

        The raw wire-format payload — what a serving layer returns without
        re-materialising an :class:`ExploreResult`.  An unreadable payload
        behaves like a miss and is removed so it cannot keep failing.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results"
                " WHERE namespace = ? AND request_hash = ?",
                (namespace, request_hash),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
        try:
            payload = json.loads(row[0])
            if not isinstance(payload, dict):
                raise ValueError("result payload must be a JSON object")
        except Exception:
            def remove() -> None:
                with self._lock, self._conn:
                    self._conn.execute(
                        "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                        (namespace, request_hash),
                    )
                    self.misses += 1
            self._write(remove)
            return None
        with self._lock:
            self.hits += 1
        return payload

    def get(self, namespace: str, request_hash: str) -> Optional[ExploreResult]:
        """The stored :class:`ExploreResult`, or ``None``."""
        payload = self.get_payload(namespace, request_hash)
        if payload is None:
            return None
        try:
            return ExploreResult.from_dict(payload)
        except Exception:
            # Parseable JSON that no longer matches the result schema (e.g.
            # written by a newer minor version): treat as a miss.
            with self._lock:
                self.hits -= 1
                self.misses += 1
            return None

    def contains(self, namespace: str, request_hash: str) -> bool:
        """Whether a result is stored under the key (no counter bump)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE namespace = ? AND request_hash = ?",
                (namespace, request_hash),
            ).fetchone()
        return row is not None

    # -- writes -----------------------------------------------------------------------
    def put(self, namespace: str, request_hash: str, result: ExploreResult) -> None:
        """Persist *result* under ``(namespace, request_hash)`` in one transaction.

        ``INSERT OR REPLACE`` keeps the store idempotent under concurrent
        executions of the same request (last writer wins; both wrote
        identical work).
        """
        payload = json.dumps(result.to_dict())
        fault_point(SITE_STORE_COMMIT)

        def insert() -> None:
            with self._lock, self._conn:
                fault_point(SITE_STORE_WRITE)
                self._conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (namespace, request_hash, request_id, dataset, payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        namespace,
                        request_hash,
                        str(result.request.get("request_id", "")),
                        result.dataset_name,
                        payload,
                        time.time(),
                    ),
                )
                self.writes += 1

        self._write(insert)

    def delete(self, namespace: str, request_hash: str) -> bool:
        """Remove the row under the key; True when one existed."""

        def remove() -> bool:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                )
                return cursor.rowcount > 0

        return self._write(remove)

    # -- leases (cross-replica exactly-once coordination) -----------------------------
    def claim(
        self, namespace: str, request_hash: str, replica_id: str, ttl: float
    ) -> bool:
        """Compare-and-claim the execution lease for ``(namespace, request_hash)``.

        One atomic upsert: the claim succeeds when no lease row exists, the
        existing lease has **expired** (its holder stopped renewing — a
        takeover, counted in ``lease_takeovers``), or *replica_id* already
        holds it (re-entrant).  A live lease held by another replica leaves
        the row untouched and returns ``False``.  Sqlite's single-writer
        lock makes this safe across processes sharing the file.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")

        def upsert() -> tuple[bool, bool]:
            with self._lock, self._conn:
                fault_point(SITE_STORE_WRITE)
                now = time.time()
                row = self._conn.execute(
                    "SELECT replica_id, expires_at FROM leases"
                    " WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                ).fetchone()
                cursor = self._conn.execute(
                    "INSERT INTO leases"
                    " (namespace, request_hash, replica_id, expires_at, claimed_at)"
                    " VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT(namespace, request_hash) DO UPDATE SET"
                    "  replica_id = excluded.replica_id,"
                    "  expires_at = excluded.expires_at,"
                    "  claimed_at = excluded.claimed_at"
                    "  WHERE leases.expires_at <= ?"
                    "     OR leases.replica_id = excluded.replica_id",
                    (namespace, request_hash, replica_id, now + ttl, now, now),
                )
                claimed = cursor.rowcount > 0
                takeover = (
                    claimed and row is not None and row[0] != replica_id
                )
                return claimed, takeover

        claimed, takeover = self._write(upsert)
        if claimed:
            with self._lock:
                self.lease_claims += 1
                if takeover:
                    self.lease_takeovers += 1
            # The crash-after-claim seam: the lease row is durable, the
            # work has not started.  A crash here is exactly the failure
            # expiry-based takeover exists to recover.
            fault_point(SITE_CLAIM_ACQUIRED)
        return claimed

    def renew(
        self, namespace: str, request_hash: str, replica_id: str, ttl: float
    ) -> bool:
        """Extend a lease *replica_id* still holds; False when it was lost."""
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")

        def extend() -> bool:
            with self._lock, self._conn:
                fault_point(SITE_STORE_WRITE)
                now = time.time()
                cursor = self._conn.execute(
                    "UPDATE leases SET expires_at = ?"
                    " WHERE namespace = ? AND request_hash = ?"
                    "  AND replica_id = ? AND expires_at > ?",
                    (now + ttl, namespace, request_hash, replica_id, now),
                )
                return cursor.rowcount > 0

        renewed = self._write(extend)
        if renewed:
            with self._lock:
                self.lease_renewals += 1
        return renewed

    def release(self, namespace: str, request_hash: str, replica_id: str) -> bool:
        """Drop the lease iff *replica_id* holds it; True when a row was removed."""

        def drop() -> bool:
            with self._lock, self._conn:
                fault_point(SITE_STORE_WRITE)
                cursor = self._conn.execute(
                    "DELETE FROM leases WHERE namespace = ? AND request_hash = ?"
                    " AND replica_id = ?",
                    (namespace, request_hash, replica_id),
                )
                return cursor.rowcount > 0

        released = self._write(drop)
        if released:
            with self._lock:
                self.lease_releases += 1
        return released

    def release_all(self, replica_id: str) -> int:
        """Drop every lease held by *replica_id* (graceful-drain cleanup)."""

        def drop() -> int:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM leases WHERE replica_id = ?", (replica_id,)
                )
                return cursor.rowcount

        released = self._write(drop)
        with self._lock:
            self.lease_releases += released
        return released

    def lease(self, namespace: str, request_hash: str) -> Optional[dict[str, Any]]:
        """The **live** lease on the key, or ``None`` (expired rows don't count)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT replica_id, expires_at, claimed_at FROM leases"
                " WHERE namespace = ? AND request_hash = ? AND expires_at > ?",
                (namespace, request_hash, time.time()),
            ).fetchone()
        if row is None:
            return None
        return {"replica_id": row[0], "expires_at": row[1], "claimed_at": row[2]}

    def leases_held(self, replica_id: str) -> list[str]:
        """Request hashes whose live lease *replica_id* currently holds."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT request_hash FROM leases"
                " WHERE replica_id = ? AND expires_at > ? ORDER BY claimed_at",
                (replica_id, time.time()),
            ).fetchall()
        return [row[0] for row in rows]

    def expire_leases(self) -> int:
        """Delete expired lease rows (housekeeping; claims handle them in place)."""

        def sweep() -> int:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM leases WHERE expires_at <= ?", (time.time(),)
                )
                return cursor.rowcount

        return self._write(sweep)

    # -- maintenance ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            )

    def request_hashes(self, namespace: Optional[str] = None) -> list[str]:
        """Stored hashes, oldest first (the replay/audit index).

        With *namespace*, only that configuration's hashes; without, every
        stored hash across namespaces.
        """
        with self._lock:
            if namespace is None:
                rows = self._conn.execute(
                    "SELECT request_hash FROM results ORDER BY created_at"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT request_hash FROM results WHERE namespace = ?"
                    " ORDER BY created_at",
                    (namespace,),
                ).fetchall()
        return [row[0] for row in rows]

    def prune(self, older_than: float) -> int:
        """Delete results written more than *older_than* seconds ago.

        The disk analogue of the scheduler's terminal-ticket GC: a
        long-running server calls this periodically so the store stays
        bounded while recent results remain servable.  Expired lease rows
        ride along.  Returns the number of result rows removed.
        """
        if older_than < 0:
            raise ValueError(f"older_than must be >= 0, got {older_than}")
        cutoff = time.time() - older_than

        def sweep() -> int:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE created_at < ?", (cutoff,)
                )
                removed = cursor.rowcount
                self._conn.execute(
                    "DELETE FROM leases WHERE expires_at <= ?", (time.time(),)
                )
                self.pruned += removed
                return removed

        return self._write(sweep)

    def clear(self) -> None:
        """Drop every stored result and lease (the schema version row stays)."""

        def wipe() -> None:
            with self._lock, self._conn:
                self._conn.execute("DELETE FROM results")
                self._conn.execute("DELETE FROM leases")

        self._write(wipe)

    def describe(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "pruned": self.pruned,
            "write_retries": self.write_retries,
            "invalidated": self.invalidated,
            "quarantined_path": self.quarantined_path,
            "leases": {
                "claims": self.lease_claims,
                "takeovers": self.lease_takeovers,
                "renewals": self.lease_renewals,
                "releases": self.lease_releases,
            },
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
