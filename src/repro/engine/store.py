"""A persistent, sharded sqlite store of explore results keyed by request hash.

The scheduler executes a request at most once: results land here under
``(namespace, canonical_hash)``, so an identical resubmission — same goal,
dataset, seeds, episode budget and stage selection — is served from disk
byte-for-byte instead of re-training, and
:meth:`ExploreResult.rebuild_session` turns the stored operation trace back
into a live session for warm replay.  The *namespace* is the submitting
engine's :meth:`~repro.engine.core.LinxEngine.config_fingerprint`, so one
store shared across servers with different configurations never serves
one configuration's results for another's requests; the composite primary
key doubles as the covering index for the hot lookup path.

Beyond results, the store is the cluster's **coordination point**: the
``leases`` table implements single-transaction compare-and-claim
(:meth:`claim` / :meth:`renew` / :meth:`release`), so N server replicas
sharing one store never execute the same canonical hash concurrently — and
a lease whose holder stops renewing (a crashed replica) expires and is
*taken over* by the next replica to ask.

**Sharding and pooling** (see :mod:`repro.shards`): every
``(namespace, request_hash)`` routes to one of ``num_shards`` sqlite files
by a stable prefix of the request hash, so each shard has its own WAL
file and its own write lock — writers to different shards never collide —
and every reader thread gets its own pooled connection, so concurrent
lookups run beside each other and beside writers instead of queueing on a
global lock.  Results and leases shard *together* (same routing function),
so claim/renew/release and the exactly-once guarantee are per-key
unchanged.  Shard 0 lives at the original path; a ``num_shards=1`` store
is file-layout-compatible with the legacy single file.

Durability follows :class:`~repro.explore.diskcache.DiskCacheTier`: WAL
journaling per shard, one transaction per commit (a crashed request never
leaves a half-written row), and per-shard schema/shard-count metadata that
drops a stale shard *wholesale* on mismatch — old formats (and old
key→shard routings) are discarded, never misread.  A corrupt/truncated
shard file is quarantine-renamed and rebuilt on open, and every write
rides :func:`~repro.reliability.retry_sqlite` so transient ``database is
locked`` contention between replicas degrades to a retry.  Payloads are
the canonical JSON wire format (:meth:`ExploreResult.to_dict`) stored as
UTF-8 blobs; :meth:`get_payload_text` hands the serving tier the raw JSON
text so the hot dedup path never re-parses a stored result.  Long-running
servers bound disk growth with :meth:`prune`, the disk analogue of the
scheduler's terminal-ticket GC.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, TypeVar

import threading

from repro.reliability import (
    SITE_CLAIM_ACQUIRED,
    SITE_STORE_COMMIT,
    SITE_STORE_WRITE,
    fault_point,
    retry_sqlite,
)
from repro.shards import ShardedSqlite, SqliteShard, prepare_shard_meta

from .result import ExploreResult

T = TypeVar("T")

#: Version of the on-disk layout (sqlite schema + result payload format).
#: Bump on any incompatible change: a mismatching store is dropped and
#: recreated on open, mirroring ``DiskCacheTier`` semantics.
#: v2: namespace split into its own column; composite primary key
#: ``(namespace, request_hash)``; ``created_at`` index for :meth:`prune`.
#: v3: sharded layout — payloads stored as UTF-8 BLOBs (the raw-text read
#: path never re-encodes), and per-shard ``num_shards`` / ``shard_index``
#: meta rows guard the key→shard routing: a legacy single-file store (or
#: a store written at a different shard count) is version-dropped
#: wholesale, never migrated row-by-row into the wrong shard.
STORE_SCHEMA_VERSION = 3

#: Per-shard counter names surfaced in :meth:`ResultStore.describe`.
_SHARD_COUNTERS = ("hits", "misses", "writes", "write_retries")


class ResultStore:
    """Persistent mapping of ``(namespace, request hash)`` → serialized result.

    Lookups run on per-thread pooled read connections (no lock at all);
    writes serialize per *shard* on that shard's write lock, so one store
    instance is shared across the scheduler's worker threads while WAL
    journaling handles concurrent *processes* on the same files — sqlite's
    per-file write lock makes :meth:`claim` a genuine cross-process
    compare-and-claim.

    Parameters
    ----------
    path:
        The sqlite file of shard 0 (parent directories are created).
        Conventionally ``<dir>/results.sqlite``; shards 1..N-1 live at
        ``results.sqlite.shard<k>`` alongside it.  A corrupt shard file is
        renamed to ``<name>.corrupt-<stamp>`` and rebuilt in place
        (``quarantined_path`` records the first rename).
    timeout:
        Seconds a writer waits on a locked database before giving up.
    num_shards:
        How many sqlite files the key space is striped over.  ``1``
        (default) keeps the legacy single-file layout; a store opened at a
        different count than it was written with is dropped wholesale
        (per-shard meta guards the routing).
    """

    def __init__(self, path: str | Path, timeout: float = 30.0, num_shards: int = 1):
        self.path = Path(path)
        self.num_shards = num_shards
        self._lock = threading.Lock()  # guards counters only, never I/O
        #: Lookups served / fallen through / results written / rows pruned.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.pruned = 0
        #: Transient ``database is locked`` write failures absorbed by the
        #: shared backoff helper (telemetry for multi-replica contention).
        self.write_retries = 0
        #: Lease telemetry: successful claims, takeovers of expired leases,
        #: renewals, releases.
        self.lease_claims = 0
        self.lease_takeovers = 0
        self.lease_renewals = 0
        self.lease_releases = 0
        #: True when a version/shard-count mismatch dropped existing rows.
        self.invalidated = False
        self._shard_counters = [
            {name: 0 for name in _SHARD_COUNTERS} for _ in range(num_shards)
        ]
        self._pool = ShardedSqlite(self.path, num_shards, timeout, self._initialize)
        #: Where a corrupt pre-existing shard file was renamed on open, if
        #: any (the first one; ``describe()`` lists all of them).
        quarantined = self._pool.quarantined_paths()
        self.quarantined_path: Optional[str] = quarantined[0] if quarantined else None

    # -- schema -----------------------------------------------------------------------
    @property
    def _conn(self) -> sqlite3.Connection:
        """Shard 0's write connection (compatibility handle for tests/tools)."""
        return self._pool.shards[0].conn

    def _initialize(self, conn: sqlite3.Connection, shard_index: int) -> None:
        """Pragmas + schema on a fresh shard connection (quarantine-retried)."""
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        with conn:
            if prepare_shard_meta(
                conn,
                schema_version=STORE_SCHEMA_VERSION,
                num_shards=self.num_shards,
                shard_index=shard_index,
            ):
                # A stale layout (e.g. v2's TEXT payloads) or a different
                # key→shard routing: drop everything, never attempt to
                # reinterpret — or mis-route — old rows.
                conn.execute("DROP TABLE IF EXISTS results")
                conn.execute("DROP TABLE IF EXISTS leases")
                self.invalidated = True
            # The composite primary key IS the covering index for the hot
            # ``(namespace, request_hash)`` lookup; created_at gets its own
            # index so prune() is a range scan, not a table scan.
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " request_id TEXT NOT NULL,"
                " dataset TEXT NOT NULL,"
                " payload BLOB NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_created_at"
                " ON results (created_at)"
            )
            # The coordination table: at most one replica holds the lease
            # for a (namespace, hash) at a time; expiry makes crashed
            # holders recoverable.  Leases shard with their results.
            conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                " namespace TEXT NOT NULL,"
                " request_hash TEXT NOT NULL,"
                " replica_id TEXT NOT NULL,"
                " expires_at REAL NOT NULL,"
                " claimed_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, request_hash))"
            )

    def _shard(self, request_hash: str) -> SqliteShard:
        return self._pool.shard_for_hex(request_hash)

    def _count(self, shard: Optional[SqliteShard], name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
            if shard is not None and name in _SHARD_COUNTERS:
                self._shard_counters[shard.index][name] += amount

    def _write(self, shard: SqliteShard, operation: Callable[[], T]) -> T:
        """Run a write transaction through the shared backoff helper.

        Transient ``database is locked`` errors from sibling replicas on
        the same shard file degrade to bounded retries (counted in
        ``write_retries``, per shard); anything else propagates unchanged.
        """

        def count_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self._count(shard, "write_retries")

        return retry_sqlite(operation, on_retry=count_retry)

    # -- lookups ----------------------------------------------------------------------
    def get_payload_text(self, namespace: str, request_hash: str) -> Optional[str]:
        """The stored result as raw JSON text, or ``None`` — the hot serving path.

        Runs on this thread's pooled read connection: no lock, no JSON
        parse, no re-encode — the serving layer splices the text straight
        into its response.  A payload that is not valid UTF-8 or not a
        JSON object at the byte level behaves like a miss and is removed
        so it cannot keep failing (full JSON validation happens only in
        :meth:`get_payload`, off the hot path).
        """
        shard = self._shard(request_hash)
        row = shard.read_conn().execute(
            "SELECT payload FROM results WHERE namespace = ? AND request_hash = ?",
            (namespace, request_hash),
        ).fetchone()
        if row is None:
            self._count(shard, "misses")
            return None
        raw = row[0]
        try:
            text = raw.decode("utf-8") if isinstance(raw, bytes) else str(raw)
        except UnicodeDecodeError:
            self._remove_corrupt(shard, namespace, request_hash)
            return None
        stripped = text.strip()
        if not (stripped.startswith("{") and stripped.endswith("}")):
            self._remove_corrupt(shard, namespace, request_hash)
            return None
        self._count(shard, "hits")
        return text

    def get_payload(
        self, namespace: str, request_hash: str
    ) -> Optional[dict[str, Any]]:
        """The stored result dict under ``(namespace, request_hash)``, or ``None``.

        The parsed wire-format payload.  An unreadable payload behaves
        like a miss and is removed so it cannot keep failing.
        """
        text = self.get_payload_text(namespace, request_hash)
        if text is None:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("result payload must be a JSON object")
        except Exception:
            shard = self._shard(request_hash)
            self._count(shard, "hits", -1)  # undo the raw-text hit
            self._remove_corrupt(shard, namespace, request_hash)
            return None
        return payload

    def _remove_corrupt(
        self, shard: SqliteShard, namespace: str, request_hash: str
    ) -> None:
        """Delete an unreadable row and count the lookup as a miss."""

        def remove() -> None:
            with shard.write_lock, shard.conn:
                shard.conn.execute(
                    "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                )

        self._write(shard, remove)
        self._count(shard, "misses")

    def get(self, namespace: str, request_hash: str) -> Optional[ExploreResult]:
        """The stored :class:`ExploreResult`, or ``None``."""
        payload = self.get_payload(namespace, request_hash)
        if payload is None:
            return None
        try:
            return ExploreResult.from_dict(payload)
        except Exception:
            # Parseable JSON that no longer matches the result schema (e.g.
            # written by a newer minor version): treat as a miss.
            shard = self._shard(request_hash)
            self._count(shard, "hits", -1)
            self._count(shard, "misses")
            return None

    def contains(self, namespace: str, request_hash: str) -> bool:
        """Whether a result is stored under the key (no counter bump)."""
        row = self._shard(request_hash).read_conn().execute(
            "SELECT 1 FROM results WHERE namespace = ? AND request_hash = ?",
            (namespace, request_hash),
        ).fetchone()
        return row is not None

    # -- writes -----------------------------------------------------------------------
    def commit_result(
        self,
        namespace: str,
        request_hash: str,
        payload_text: str,
        *,
        request_id: str = "",
        dataset: str = "",
        replica_id: Optional[str] = None,
    ) -> bool:
        """Persist pre-serialized *payload_text* — and release the lease — atomically.

        One transaction on the key's shard: ``INSERT OR REPLACE`` the
        result row and, with *replica_id*, delete that replica's lease on
        the same key.  Merging the two closes the window where a result is
        durable but its lease still held (a crash there previously left
        siblings waiting out the TTL), and saves a write transaction per
        execution.  Returns True when a lease row was released.

        ``INSERT OR REPLACE`` keeps the store idempotent under concurrent
        executions of the same request (last writer wins; both wrote
        identical work).
        """
        payload = payload_text.encode("utf-8")
        fault_point(SITE_STORE_COMMIT)
        shard = self._shard(request_hash)

        def insert() -> int:
            with shard.write_lock, shard.conn:
                fault_point(SITE_STORE_WRITE)
                shard.conn.execute(
                    "INSERT OR REPLACE INTO results"
                    " (namespace, request_hash, request_id, dataset, payload, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (namespace, request_hash, request_id, dataset, payload, time.time()),
                )
                if replica_id is None:
                    return 0
                cursor = shard.conn.execute(
                    "DELETE FROM leases WHERE namespace = ? AND request_hash = ?"
                    " AND replica_id = ?",
                    (namespace, request_hash, replica_id),
                )
                return cursor.rowcount

        released = self._write(shard, insert)
        self._count(shard, "writes")
        if released:
            self._count(None, "lease_releases", released)
        return bool(released)

    def put(self, namespace: str, request_hash: str, result: ExploreResult) -> None:
        """Persist *result* under ``(namespace, request_hash)`` in one transaction."""
        self.commit_result(
            namespace,
            request_hash,
            json.dumps(result.to_dict()),
            request_id=str(result.request.get("request_id", "")),
            dataset=result.dataset_name,
        )

    def delete(self, namespace: str, request_hash: str) -> bool:
        """Remove the row under the key; True when one existed."""
        shard = self._shard(request_hash)

        def remove() -> bool:
            with shard.write_lock, shard.conn:
                cursor = shard.conn.execute(
                    "DELETE FROM results WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                )
                return cursor.rowcount > 0

        return self._write(shard, remove)

    # -- leases (cross-replica exactly-once coordination) -----------------------------
    def claim(
        self, namespace: str, request_hash: str, replica_id: str, ttl: float
    ) -> bool:
        """Compare-and-claim the execution lease for ``(namespace, request_hash)``.

        One atomic upsert on the key's shard: the claim succeeds when no
        lease row exists, the existing lease has **expired** (its holder
        stopped renewing — a takeover, counted in ``lease_takeovers``), or
        *replica_id* already holds it (re-entrant).  A live lease held by
        another replica leaves the row untouched and returns ``False``.
        Sqlite's per-file write lock makes this safe across processes
        sharing the shard.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        shard = self._shard(request_hash)

        def upsert() -> tuple[bool, bool]:
            with shard.write_lock, shard.conn:
                fault_point(SITE_STORE_WRITE)
                now = time.time()
                row = shard.conn.execute(
                    "SELECT replica_id, expires_at FROM leases"
                    " WHERE namespace = ? AND request_hash = ?",
                    (namespace, request_hash),
                ).fetchone()
                cursor = shard.conn.execute(
                    "INSERT INTO leases"
                    " (namespace, request_hash, replica_id, expires_at, claimed_at)"
                    " VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT(namespace, request_hash) DO UPDATE SET"
                    "  replica_id = excluded.replica_id,"
                    "  expires_at = excluded.expires_at,"
                    "  claimed_at = excluded.claimed_at"
                    "  WHERE leases.expires_at <= ?"
                    "     OR leases.replica_id = excluded.replica_id",
                    (namespace, request_hash, replica_id, now + ttl, now, now),
                )
                claimed = cursor.rowcount > 0
                takeover = claimed and row is not None and row[0] != replica_id
                return claimed, takeover

        claimed, takeover = self._write(shard, upsert)
        if claimed:
            with self._lock:
                self.lease_claims += 1
                if takeover:
                    self.lease_takeovers += 1
            # The crash-after-claim seam: the lease row is durable, the
            # work has not started.  A crash here is exactly the failure
            # expiry-based takeover exists to recover.
            fault_point(SITE_CLAIM_ACQUIRED)
        return claimed

    def renew(
        self, namespace: str, request_hash: str, replica_id: str, ttl: float
    ) -> bool:
        """Extend a lease *replica_id* still holds; False when it was lost."""
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        shard = self._shard(request_hash)

        def extend() -> bool:
            with shard.write_lock, shard.conn:
                fault_point(SITE_STORE_WRITE)
                now = time.time()
                cursor = shard.conn.execute(
                    "UPDATE leases SET expires_at = ?"
                    " WHERE namespace = ? AND request_hash = ?"
                    "  AND replica_id = ? AND expires_at > ?",
                    (now + ttl, namespace, request_hash, replica_id, now),
                )
                return cursor.rowcount > 0

        renewed = self._write(shard, extend)
        if renewed:
            self._count(None, "lease_renewals")
        return renewed

    def renew_many(
        self,
        namespace: str,
        request_hashes: Iterable[str],
        replica_id: str,
        ttl: float,
    ) -> int:
        """Extend every listed lease *replica_id* still holds; returns the count.

        The heartbeat path: one ``UPDATE ... WHERE request_hash IN (...)``
        statement per shard instead of a transaction per lease, so a
        replica holding many leases renews them in at most ``num_shards``
        writes per beat.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        hashes = list(dict.fromkeys(request_hashes))
        if not hashes:
            return 0
        groups = self._pool.group_by_shard(hashes, self._shard)
        renewed = 0
        for shard, members in groups.items():

            def extend(shard: SqliteShard = shard, members: list[str] = members) -> int:
                with shard.write_lock, shard.conn:
                    fault_point(SITE_STORE_WRITE)
                    now = time.time()
                    placeholders = ",".join("?" for _ in members)
                    cursor = shard.conn.execute(
                        "UPDATE leases SET expires_at = ?"
                        f" WHERE namespace = ? AND request_hash IN ({placeholders})"
                        "  AND replica_id = ? AND expires_at > ?",
                        [now + ttl, namespace, *members, replica_id, now],
                    )
                    return cursor.rowcount

            renewed += self._write(shard, extend)
        if renewed:
            self._count(None, "lease_renewals", renewed)
        return renewed

    def release(self, namespace: str, request_hash: str, replica_id: str) -> bool:
        """Drop the lease iff *replica_id* holds it; True when a row was removed."""
        shard = self._shard(request_hash)

        def drop() -> bool:
            with shard.write_lock, shard.conn:
                fault_point(SITE_STORE_WRITE)
                cursor = shard.conn.execute(
                    "DELETE FROM leases WHERE namespace = ? AND request_hash = ?"
                    " AND replica_id = ?",
                    (namespace, request_hash, replica_id),
                )
                return cursor.rowcount > 0

        released = self._write(shard, drop)
        if released:
            self._count(None, "lease_releases")
        return released

    def release_all(self, replica_id: str) -> int:
        """Drop every lease held by *replica_id*, shard by shard (drain cleanup)."""
        released = 0
        for shard in self._pool.shards:

            def drop(shard: SqliteShard = shard) -> int:
                with shard.write_lock, shard.conn:
                    cursor = shard.conn.execute(
                        "DELETE FROM leases WHERE replica_id = ?", (replica_id,)
                    )
                    return cursor.rowcount

            released += self._write(shard, drop)
        if released:
            self._count(None, "lease_releases", released)
        return released

    def lease(self, namespace: str, request_hash: str) -> Optional[dict[str, Any]]:
        """The **live** lease on the key, or ``None`` (expired rows don't count)."""
        row = self._shard(request_hash).read_conn().execute(
            "SELECT replica_id, expires_at, claimed_at FROM leases"
            " WHERE namespace = ? AND request_hash = ? AND expires_at > ?",
            (namespace, request_hash, time.time()),
        ).fetchone()
        if row is None:
            return None
        return {"replica_id": row[0], "expires_at": row[1], "claimed_at": row[2]}

    def leases_held(self, replica_id: str) -> list[str]:
        """Request hashes whose live lease *replica_id* holds (oldest claim first)."""
        now = time.time()
        rows: list[tuple[float, str]] = []
        for shard in self._pool.shards:
            rows.extend(
                (claimed_at, request_hash)
                for request_hash, claimed_at in shard.read_conn().execute(
                    "SELECT request_hash, claimed_at FROM leases"
                    " WHERE replica_id = ? AND expires_at > ?",
                    (replica_id, now),
                ).fetchall()
            )
        rows.sort()
        return [request_hash for _, request_hash in rows]

    def expire_leases(self) -> int:
        """Delete expired lease rows: one ``DELETE`` statement per shard.

        Housekeeping only — claims handle expired rows in place (and count
        takeovers); this sweep just keeps the lease tables from
        accumulating corpses.
        """
        expired = 0
        for shard in self._pool.shards:

            def sweep(shard: SqliteShard = shard) -> int:
                with shard.write_lock, shard.conn:
                    cursor = shard.conn.execute(
                        "DELETE FROM leases WHERE expires_at <= ?", (time.time(),)
                    )
                    return cursor.rowcount

            expired += self._write(shard, sweep)
        return expired

    # -- maintenance ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(
            int(
                shard.read_conn()
                .execute("SELECT COUNT(*) FROM results")
                .fetchone()[0]
            )
            for shard in self._pool.shards
        )

    def request_hashes(self, namespace: Optional[str] = None) -> list[str]:
        """Stored hashes, oldest first across all shards (the replay/audit index).

        With *namespace*, only that configuration's hashes; without, every
        stored hash across namespaces.
        """
        rows: list[tuple[float, str]] = []
        for shard in self._pool.shards:
            if namespace is None:
                fetched = shard.read_conn().execute(
                    "SELECT created_at, request_hash FROM results"
                ).fetchall()
            else:
                fetched = shard.read_conn().execute(
                    "SELECT created_at, request_hash FROM results WHERE namespace = ?",
                    (namespace,),
                ).fetchall()
            rows.extend(fetched)
        rows.sort(key=lambda row: row[0])
        return [request_hash for _, request_hash in rows]

    def prune(self, older_than: float) -> int:
        """Delete results written more than *older_than* seconds ago, per shard.

        The disk analogue of the scheduler's terminal-ticket GC: a
        long-running server calls this periodically so the store stays
        bounded while recent results remain servable.  Expired lease rows
        ride along in the same per-shard transactions.  Returns the number
        of result rows removed.
        """
        if older_than < 0:
            raise ValueError(f"older_than must be >= 0, got {older_than}")
        cutoff = time.time() - older_than
        removed = 0
        for shard in self._pool.shards:

            def sweep(shard: SqliteShard = shard) -> int:
                with shard.write_lock, shard.conn:
                    cursor = shard.conn.execute(
                        "DELETE FROM results WHERE created_at < ?", (cutoff,)
                    )
                    shard.conn.execute(
                        "DELETE FROM leases WHERE expires_at <= ?", (time.time(),)
                    )
                    return cursor.rowcount

            removed += self._write(shard, sweep)
        self._count(None, "pruned", removed)
        return removed

    def clear(self) -> None:
        """Drop every stored result and lease (the schema version rows stay)."""
        for shard in self._pool.shards:

            def wipe(shard: SqliteShard = shard) -> None:
                with shard.write_lock, shard.conn:
                    shard.conn.execute("DELETE FROM results")
                    shard.conn.execute("DELETE FROM leases")

            self._write(shard, wipe)

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard telemetry: the ``/stats`` / ``/healthz`` contention view.

        One row per shard file — entries, live leases held, and that
        shard's slice of the hit/miss/write/retry counters — so hot shards
        and lock contention are observable per file, not just in
        aggregate.
        """
        now = time.time()
        rows: list[dict[str, Any]] = []
        with self._lock:
            counters = [dict(shard) for shard in self._shard_counters]
        for shard in self._pool.shards:
            entries = int(
                shard.read_conn().execute("SELECT COUNT(*) FROM results").fetchone()[0]
            )
            leases_held = int(
                shard.read_conn().execute(
                    "SELECT COUNT(*) FROM leases WHERE expires_at > ?", (now,)
                ).fetchone()[0]
            )
            rows.append(
                {
                    "shard": shard.index,
                    "path": str(shard.path),
                    "entries": entries,
                    "leases_held": leases_held,
                    **counters[shard.index],
                }
            )
        return rows

    def describe(self) -> dict[str, Any]:
        shards = self.shard_stats()
        return {
            "path": str(self.path),
            "schema_version": STORE_SCHEMA_VERSION,
            "num_shards": self.num_shards,
            "entries": sum(shard["entries"] for shard in shards),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "pruned": self.pruned,
            "write_retries": self.write_retries,
            "invalidated": self.invalidated,
            "quarantined_path": self.quarantined_path,
            "quarantined_paths": self._pool.quarantined_paths(),
            "leases": {
                "claims": self.lease_claims,
                "takeovers": self.lease_takeovers,
                "renewals": self.lease_renewals,
                "releases": self.lease_releases,
            },
            "shards": shards,
        }

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
