"""Pluggable pipeline stages of the LINX engine.

The engine's request pipeline is four stages — specification derivation,
constrained session generation, notebook rendering and insight extraction —
each behind a small :class:`~typing.Protocol`.  The defaults reproduce the
paper's system (chained NL→PyLDX→LDX prompting and the CDRL agent), and
alternates plug in without touching the engine:

* :class:`AtenaSessionGenerator` swaps in the goal-agnostic ATENA baseline
  (``repro.baselines.atena``) as the generation stage, and
* ablation configurations (:func:`repro.cdrl.ablation.variant_config`) slot
  straight into :class:`CdrlSessionGenerator` via its ``config`` argument.

Stage implementations are stateless per request (safe to share across the
engine's worker threads); anything request-scoped arrives as arguments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.baselines.atena import AtenaAgent, AtenaConfig
from repro.bench.generator import BenchmarkInstance
from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent
from repro.dataframe.table import DataTable
from repro.explore.cache import ExecutionCache
from repro.explore.reward import GenericExplorationReward
from repro.explore.session import ExplorationSession
from repro.ldx.parser import try_parse_ldx
from repro.ldx.verifier import verify, verify_structure
from repro.llm.interface import LLMClient
from repro.nl2ldx.fewshot import SCENARIOS, FewShotBank
from repro.nl2ldx.pipeline import ChainedPipeline
from repro.notebook.insights import Insight, extract_insights
from repro.notebook.render import Notebook, render_notebook

from .registry import (
    KIND_INSIGHT_EXTRACTOR,
    KIND_NOTEBOOK_RENDERER,
    KIND_SESSION_GENERATOR,
    KIND_SPEC_DERIVER,
    StageContext,
    register_stage_factory,
)

#: Episode-tick callback: (episode index, episode return, session so far).
#: Raising from the callback aborts generation and propagates out of the
#: stage — the engine's cooperative cancellation checkpoints rely on this.
EpisodeCallback = Callable[[int, float, ExplorationSession], None]


def _seeded(config, seed: int | None):
    """The generator config with *seed* applied (``None`` keeps the config's)."""
    return config if seed is None else dataclasses.replace(config, seed=seed)


# -- stage data ----------------------------------------------------------------------
@dataclass
class SpecDerivation:
    """Output of the specification-derivation stage."""

    ldx_text: str
    intermediate_pyldx: str = ""


@dataclass
class SessionOutcome:
    """Output of the session-generation stage."""

    session: ExplorationSession
    fully_compliant: bool = False
    structurally_compliant: bool = False
    utility_score: float = 0.0
    episodes_trained: int = 0


# -- stage protocols -----------------------------------------------------------------
@runtime_checkable
class SpecDeriver(Protocol):
    """Derives LDX specification text from an analytical goal (LINX step 1)."""

    name: str

    def derive(self, dataset_name: str, goal: str) -> SpecDerivation: ...


@runtime_checkable
class SessionGenerator(Protocol):
    """Generates an exploration session for (dataset, LDX) (LINX step 2)."""

    name: str

    def generate(
        self,
        table: DataTable,
        ldx_text: str,
        *,
        episodes: int | None = None,
        seed: int | None = None,
        cache: ExecutionCache | None = None,
        on_episode: EpisodeCallback | None = None,
    ) -> SessionOutcome: ...


@runtime_checkable
class NotebookRenderer(Protocol):
    """Renders a session as a notebook."""

    name: str

    def render(self, session: ExplorationSession, goal: str) -> Notebook: ...


@runtime_checkable
class InsightExtractor(Protocol):
    """Extracts candidate insights from a session."""

    name: str

    def extract(self, session: ExplorationSession) -> list[Insight]: ...


# -- default implementations ---------------------------------------------------------
class ChainedSpecDeriver:
    """The paper's NL2PD2LDX chained prompting pipeline as a stage.

    The few-shot bank is expensive to build (it materialises the full
    benchmark), so it arrives through a supplier callable — the engine
    passes its lazily-built, memoized bank.
    """

    name = "nl2pd2ldx"

    def __init__(self, client: LLMClient, bank_supplier: Callable[[], FewShotBank]):
        self.client = client
        self._bank_supplier = bank_supplier

    def derive(self, dataset_name: str, goal: str) -> SpecDerivation:
        probe = BenchmarkInstance(
            instance_id=-1,
            meta_goal_id=0,
            meta_goal_name="ad-hoc",
            dataset=dataset_name,
            goal=goal,
            ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
        )
        pipeline = ChainedPipeline(self.client, self._bank_supplier())
        # Ad-hoc requests use every available example (seen dataset & meta-goal).
        result = pipeline.derive(probe, SCENARIOS[0])
        return SpecDerivation(
            ldx_text=result.ldx_text,
            intermediate_pyldx=result.intermediate_pyldx,
        )


class CdrlSessionGenerator:
    """The LINX CDRL engine as the default session-generation stage."""

    name = "cdrl"
    #: The engine passes its :class:`~repro.engine.batcher.InferenceBatcher`
    #: only to stages that declare support; stages without the flag (ATENA,
    #: custom generators) run exactly as before.
    supports_batching = True

    def __init__(self, config: CdrlConfig | None = None):
        self.config = config or CdrlConfig(episodes=150)

    def generate(
        self,
        table: DataTable,
        ldx_text: str,
        *,
        episodes: int | None = None,
        seed: int | None = None,
        cache: ExecutionCache | None = None,
        on_episode: EpisodeCallback | None = None,
        batcher=None,
    ) -> SessionOutcome:
        config = _seeded(self.config, seed)
        agent = LinxCdrlAgent(table, ldx_text, config=config, cache=cache, batcher=batcher)
        result = agent.run(episodes=episodes, episode_callback=on_episode)
        return SessionOutcome(
            session=result.session,
            fully_compliant=result.fully_compliant,
            structurally_compliant=result.structurally_compliant,
            utility_score=result.utility_score,
            episodes_trained=result.episodes_trained,
        )


class AtenaSessionGenerator:
    """The goal-agnostic ATENA baseline as an alternate generation stage.

    ATENA ignores the specifications while training; compliance is still
    verified against them afterwards so results stay comparable with CDRL.
    """

    name = "atena"

    def __init__(self, config: AtenaConfig | None = None):
        self.config = config or AtenaConfig(episodes=150)
        self._scorer = GenericExplorationReward()

    def generate(
        self,
        table: DataTable,
        ldx_text: str,
        *,
        episodes: int | None = None,
        seed: int | None = None,
        cache: ExecutionCache | None = None,
        on_episode: EpisodeCallback | None = None,
    ) -> SessionOutcome:
        config = _seeded(self.config, seed)
        agent = AtenaAgent(table, config=config, cache=cache)
        result = agent.run(episodes=episodes, episode_callback=on_episode)
        query = try_parse_ldx(ldx_text)
        tree = result.session.to_tree()
        return SessionOutcome(
            session=result.session,
            fully_compliant=bool(query and verify(tree, query)),
            structurally_compliant=bool(query and verify_structure(tree, query)),
            utility_score=result.utility_score,
            episodes_trained=len(result.history.episode_returns),
        )


class MarkdownNotebookRenderer:
    """The default notebook renderer (one cell per query operation)."""

    name = "markdown"

    def __init__(self, preview_rows: int = 8):
        self.preview_rows = preview_rows

    def render(self, session: ExplorationSession, goal: str) -> Notebook:
        return render_notebook(session, goal=goal, preview_rows=self.preview_rows)


class DefaultInsightExtractor:
    """The default mechanical insight extractor (Section 7.3 simulation)."""

    name = "mechanical"

    def __init__(self, max_insights: int = 12):
        self.max_insights = max_insights

    def extract(self, session: ExplorationSession) -> list[Insight]:
        return extract_insights(session, max_insights=self.max_insights)


# -- registry entries ----------------------------------------------------------------
# Each built-in registers under its ``name`` so requests and engine specs can
# select it declaratively (``stages={"session_generator": "atena"}``) — in
# thread *and* process modes, since a name rides in a picklable spec where a
# live stage object cannot.

@register_stage_factory(KIND_SPEC_DERIVER, ChainedSpecDeriver.name)
def _build_chained_deriver(context: StageContext) -> ChainedSpecDeriver:
    return ChainedSpecDeriver(context.llm_client, context.fewshot_bank)


@register_stage_factory(KIND_SESSION_GENERATOR, CdrlSessionGenerator.name)
def _build_cdrl_generator(context: StageContext) -> CdrlSessionGenerator:
    return CdrlSessionGenerator(context.cdrl_config)


@register_stage_factory(KIND_SESSION_GENERATOR, AtenaSessionGenerator.name)
def _build_atena_generator(context: StageContext) -> AtenaSessionGenerator:
    # ATENA inherits the engine's episode budget and seed so swapping the
    # generator by name changes the algorithm, not the training budget.
    return AtenaSessionGenerator(
        AtenaConfig(
            episodes=context.cdrl_config.episodes, seed=context.cdrl_config.seed
        )
    )


@register_stage_factory(KIND_NOTEBOOK_RENDERER, MarkdownNotebookRenderer.name)
def _build_markdown_renderer(context: StageContext) -> MarkdownNotebookRenderer:
    return MarkdownNotebookRenderer()


@register_stage_factory(KIND_INSIGHT_EXTRACTOR, DefaultInsightExtractor.name)
def _build_mechanical_extractor(context: StageContext) -> DefaultInsightExtractor:
    return DefaultInsightExtractor()
