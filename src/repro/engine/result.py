"""Serializable explore results with per-stage status, timings and telemetry.

Following the enrichment pattern of staged extraction pipelines, a single
:class:`ExploreResult` is built up stage by stage: every stage only *adds*
fields and flips its own :class:`StageStatus` from ``pending`` to
``complete`` / ``failed`` / ``skipped``.  All compared fields are JSON-native
(strings, numbers, bools, lists, dicts), so

>>> ExploreResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result

holds losslessly and results can be served, stored and replayed.  Live
objects (the session tree, the notebook, the parsed query) ride along in
:class:`EngineArtifacts`, which is excluded from comparison and from the
wire format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.explore.operations import Operation, operation_from_signature
from repro.explore.session import ExplorationSession, session_from_operations
from repro.ldx.ast import LdxQuery
from repro.notebook.insights import Insight
from repro.notebook.render import Notebook

from .errors import FieldError, RequestValidationError

#: Version of the result wire format (bump on incompatible changes).
#: 1.1 added ``stage_names`` (which registered implementation ran each
#: stage); 1.0 payloads (which simply lack the field) are still accepted.
RESULT_SCHEMA_VERSION = "1.1"

#: Result wire-format versions this build can parse.
SUPPORTED_RESULT_VERSIONS = ("1.0", "1.1")

#: Stage names, in pipeline order.
STAGE_DERIVE = "derive_spec"
STAGE_GENERATE = "generate_session"
STAGE_RENDER = "render_notebook"
STAGE_INSIGHTS = "extract_insights"
STAGE_ORDER: tuple[str, ...] = (
    STAGE_DERIVE,
    STAGE_GENERATE,
    STAGE_RENDER,
    STAGE_INSIGHTS,
)

STATUS_PENDING = "pending"
STATUS_COMPLETE = "complete"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"
STATUS_CANCELLED = "cancelled"


@dataclass
class StageStatus:
    """Completion status of one pipeline stage.

    ``seconds`` (wall-clock duration) is serialized but excluded from
    equality: two semantically identical results stay equal across runs.
    """

    name: str
    status: str = STATUS_PENDING
    detail: str = ""
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageStatus":
        return cls(
            name=payload["name"],
            status=payload.get("status", STATUS_PENDING),
            detail=payload.get("detail", ""),
            seconds=payload.get("seconds", 0.0),
        )


@dataclass
class EngineArtifacts:
    """Live (non-serializable) objects produced alongside a result."""

    session: Optional[ExplorationSession] = None
    notebook: Optional[Notebook] = None
    query: Optional[LdxQuery] = None
    insights: list[Insight] = field(default_factory=list)


@dataclass
class ExploreResult:
    """Everything the engine produced for one request, as plain data.

    The compared fields are all JSON-native so the result round-trips
    through ``to_dict()`` / ``from_dict()`` without loss.  ``cache_stats``
    (per-request execution-cache deltas — load dependent) and per-stage
    ``seconds`` are serialized but excluded from equality.
    """

    request: dict[str, Any]
    dataset_name: str = ""
    goal: str = ""
    ldx_text: str = ""
    derivation_fallback: bool = False
    fully_compliant: bool = False
    structurally_compliant: bool = False
    utility_score: float = 0.0
    episodes_trained: int = 0
    #: Flat operation trace (positional signatures, back moves included);
    #: enough to re-materialise the session tree against the dataset.
    operations: list[list[str]] = field(default_factory=list)
    notebook_markdown: str = ""
    insights: list[dict[str, Any]] = field(default_factory=list)
    stages: list[StageStatus] = field(default_factory=list)
    #: Which registered implementation ran each stage (stage name →
    #: implementation name), so served results record e.g. that the
    #: ``atena`` generator produced this session.
    stage_names: dict[str, str] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    cache_stats: Optional[dict[str, Any]] = field(default=None, compare=False)
    schema_version: str = RESULT_SCHEMA_VERSION
    #: Live objects for in-process callers; never serialized, never compared.
    artifacts: Optional[EngineArtifacts] = field(default=None, compare=False, repr=False)

    # -- stage bookkeeping -----------------------------------------------------------
    def stage(self, name: str) -> StageStatus:
        """The status record of stage *name* (created on first access)."""
        for status in self.stages:
            if status.name == name:
                return status
        status = StageStatus(name=name)
        self.stages.append(status)
        return status

    def stage_status(self, name: str) -> str:
        return self.stage(name).status

    # -- session re-materialisation --------------------------------------------------
    def operation_list(self) -> list[Operation]:
        """The operation trace as live :class:`Operation` objects."""
        return [operation_from_signature(signature) for signature in self.operations]

    def rebuild_session(self, dataset) -> ExplorationSession:
        """Replay the operation trace against *dataset* into a session tree.

        This is how a serving tier turns a stored result back into a live
        session (for re-rendering, verification or insight re-extraction).
        """
        return session_from_operations(dataset, self.operation_list())

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-native dict representation (inverse of :meth:`from_dict`)."""
        return {
            "schema_version": self.schema_version,
            "request": dict(self.request),
            "dataset_name": self.dataset_name,
            "goal": self.goal,
            "ldx_text": self.ldx_text,
            "derivation_fallback": self.derivation_fallback,
            "fully_compliant": self.fully_compliant,
            "structurally_compliant": self.structurally_compliant,
            "utility_score": self.utility_score,
            "episodes_trained": self.episodes_trained,
            "operations": [list(signature) for signature in self.operations],
            "notebook_markdown": self.notebook_markdown,
            "insights": [dict(insight) for insight in self.insights],
            "stages": [status.to_dict() for status in self.stages],
            "stage_names": dict(self.stage_names),
            "warnings": list(self.warnings),
            "cache_stats": dict(self.cache_stats) if self.cache_stats is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExploreResult":
        """Rebuild a result from :meth:`to_dict` output (artifacts stay ``None``)."""
        if not isinstance(payload, Mapping):
            raise RequestValidationError(
                [FieldError("result", f"expected an object, got {type(payload).__name__}")]
            )
        unknown = sorted(set(payload) - _RESULT_FIELDS)
        if unknown:
            raise RequestValidationError(
                [FieldError(name, "unknown result field") for name in unknown]
            )
        version = payload.get("schema_version", RESULT_SCHEMA_VERSION)
        if version not in SUPPORTED_RESULT_VERSIONS:
            raise RequestValidationError(
                [
                    FieldError(
                        "schema_version",
                        f"unsupported version {version!r}; "
                        f"supported: {list(SUPPORTED_RESULT_VERSIONS)}",
                    )
                ]
            )
        return cls(
            schema_version=version,
            request=dict(payload.get("request", {})),
            dataset_name=payload.get("dataset_name", ""),
            goal=payload.get("goal", ""),
            ldx_text=payload.get("ldx_text", ""),
            derivation_fallback=payload.get("derivation_fallback", False),
            fully_compliant=payload.get("fully_compliant", False),
            structurally_compliant=payload.get("structurally_compliant", False),
            utility_score=payload.get("utility_score", 0.0),
            episodes_trained=payload.get("episodes_trained", 0),
            operations=[list(signature) for signature in payload.get("operations", [])],
            notebook_markdown=payload.get("notebook_markdown", ""),
            insights=[dict(insight) for insight in payload.get("insights", [])],
            stages=[StageStatus.from_dict(status) for status in payload.get("stages", [])],
            stage_names=dict(payload.get("stage_names", {})),
            warnings=list(payload.get("warnings", [])),
            cache_stats=(
                dict(payload["cache_stats"])
                if payload.get("cache_stats") is not None
                else None
            ),
        )


#: Keys of the result wire format; unknown keys are rejected by
#: :meth:`ExploreResult.from_dict` (they usually indicate a schema mismatch).
_RESULT_FIELDS = frozenset(
    {
        "schema_version",
        "request",
        "dataset_name",
        "goal",
        "ldx_text",
        "derivation_fallback",
        "fully_compliant",
        "structurally_compliant",
        "utility_score",
        "episodes_trained",
        "operations",
        "notebook_markdown",
        "insights",
        "stages",
        "stage_names",
        "warnings",
        "cache_stats",
    }
)


def insight_to_dict(insight: Insight) -> dict[str, Any]:
    """JSON-native rendering of one extracted insight."""
    return {
        "text": insight.text,
        "kind": insight.kind,
        "source_nodes": list(insight.source_nodes),
        "strength": insight.strength,
    }
