"""The long-lived LINX engine: a service-oriented facade over the pipeline.

One :class:`LinxEngine` instance owns the expensive shared state — an LLM
client, a lazily-built memoized few-shot bank, and one thread-safe
:class:`~repro.explore.cache.ExecutionCache` shared by every request — and
processes declarative :class:`~repro.engine.request.ExploreRequest` objects
through four pluggable stages (derive → generate → render → insights) into
serializable :class:`~repro.engine.result.ExploreResult` objects.

Unlike the legacy :class:`repro.linx.Linx` facade (now a thin wrapper over
this class), the engine

* validates requests up front with structured errors,
* never rebuilds the benchmark or few-shot bank per request,
* shares one execution cache across all requests, so a batch of related
  requests reuses each other's query results,
* optionally layers that cache over a persistent sqlite tier
  (``disk_cache_path``), so results survive restarts and cross process
  boundaries,
* fans batches out over a thread pool — or, opt-in, a **process pool**
  (``explore_many(..., workers="process")``) whose workers rebuild the
  engine and share the disk tier, turning GIL-bound interleaving into real
  multi-core throughput — with ordered per-request progress events, and
* returns results that round-trip through JSON for serving and storage.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, TypeVar

from repro.bench.generator import generate_benchmark
from repro.cdrl.agent import CdrlConfig
from repro.dataframe.table import DataTable
from repro.datasets.registry import dataset_names, load_dataset
from repro.explore.cache import (
    DEFAULT_MAX_ENTRIES,
    ExecutionCache,
    ThreadSafeExecutionCache,
)
from repro.explore.diskcache import (
    ThreadSafeTieredExecutionCache,
    TieredExecutionCache,
)
from repro.explore.session import ExplorationSession
from repro.ldx.parser import parse_ldx, try_parse_ldx
from repro.llm.interface import LLMClient
from repro.llm.mock import gpt4_client
from repro.nl2ldx.fewshot import FewShotBank
from repro.reliability import SITE_CHECKPOINT, FileCancelEvent, fault_point

from .errors import (
    FieldError,
    RequestCancelledError,
    RequestTimeoutError,
    RequestValidationError,
    StageFailedError,
)
from .events import (
    EVENT_EPISODE,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_SKIPPED,
    EVENT_STAGE_STARTED,
    ProgressEvent,
    ProgressObserver,
)
from .registry import (
    KIND_INSIGHT_EXTRACTOR,
    KIND_NOTEBOOK_RENDERER,
    KIND_SESSION_GENERATOR,
    KIND_SPEC_DERIVER,
    STAGE_REGISTRY,
    StageContext,
)
from .request import ExploreRequest
from .result import (
    STAGE_DERIVE,
    STAGE_GENERATE,
    STAGE_INSIGHTS,
    STAGE_ORDER,
    STAGE_RENDER,
    STATUS_CANCELLED,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_SKIPPED,
    EngineArtifacts,
    ExploreResult,
    insight_to_dict,
)
from .stages import (
    CdrlSessionGenerator,
    ChainedSpecDeriver,
    DefaultInsightExtractor,
    InsightExtractor,
    MarkdownNotebookRenderer,
    NotebookRenderer,
    SessionGenerator,
    SpecDeriver,
)

#: Permissive fallback specification used when derived/explicit LDX fails to
#: parse: the engine still produces a useful (if less targeted) session.
PERMISSIVE_LDX = "ROOT CHILDREN <A1,A2>\nA1 LIKE [F,.*]\nA2 LIKE [G,.*]"

#: Default row budget of the engine's shared cache.  The engine is long-lived
#: and serves arbitrarily many requests, so unlike per-agent caches its volume
#: must be bounded: 2M cached rows keeps worst-case residency at a few hundred
#: MB even on wide tables, while far exceeding a single request's working set.
DEFAULT_ENGINE_MAX_CACHED_ROWS = 2_000_000

#: Stage kind → the engine attribute holding that stage's instance.
STAGE_KIND_ATTRS: dict[str, str] = {
    KIND_SPEC_DERIVER: "spec_deriver",
    KIND_SESSION_GENERATOR: "session_generator",
    KIND_NOTEBOOK_RENDERER: "notebook_renderer",
    KIND_INSIGHT_EXTRACTOR: "insight_extractor",
}

T = TypeVar("T")


class LinxEngine:
    """Long-lived, batchable, pluggable LINX service facade.

    Parameters
    ----------
    llm_client:
        LLM client used by the default specification deriver (offline: the
        simulated GPT-4 tier).
    cdrl_config:
        Configuration of the default CDRL session generator.
    spec_deriver / session_generator / notebook_renderer / insight_extractor:
        Stage overrides (see :mod:`repro.engine.stages`); pass e.g.
        :class:`~repro.engine.stages.AtenaSessionGenerator` to swap the
        baseline in as the generation stage.
    cache:
        Execution cache shared by every request.  Defaults to a
        :class:`~repro.explore.cache.ThreadSafeExecutionCache` bounded by
        *max_cache_entries* entries and *max_cached_rows* total cached rows
        (default :data:`DEFAULT_ENGINE_MAX_CACHED_ROWS`; pass ``None`` to
        disable the row budget).
    disk_cache_path:
        Optional sqlite file layered *under* the default cache as a
        persistent tier (:class:`~repro.explore.diskcache.TieredExecutionCache`):
        results survive restarts, and warm-start sweeps or process-pool
        workers reuse each other's executions.  Ignored when an explicit
        *cache* is supplied.
    disk_cache_shards:
        Sqlite shard count for the disk cache tier (keys stripe over this
        many WAL files so concurrent workers never queue on one write
        lock; see :mod:`repro.shards`).  ``1`` keeps the legacy
        single-file layout.  Declarative, so process-pool workers rebuild
        their tier with the same routing.
    policy_registry_path:
        Optional sqlite file of a :class:`~repro.train.registry.PolicyRegistry`.
        Every trained artifact in it self-registers as a session-generator
        stage (``cdrl:<name>-v<N>`` plus the floating ``cdrl:<name>`` alias),
        so requests can serve trained policies by name.  Declarative — a
        path, not an object — so it survives ``explore_many(workers=
        "process")`` worker rebuilds.

    Example
    -------
    >>> from repro.engine import ExploreRequest, LinxEngine
    >>> engine = LinxEngine()
    >>> result = engine.explore(ExploreRequest(
    ...     goal="Find a country with different viewing habits than the rest of the world",
    ...     dataset="netflix", num_rows=800))          # doctest: +SKIP
    >>> result.notebook_markdown                        # doctest: +SKIP
    """

    def __init__(
        self,
        llm_client: LLMClient | None = None,
        cdrl_config: CdrlConfig | None = None,
        *,
        spec_deriver: SpecDeriver | None = None,
        session_generator: SessionGenerator | None = None,
        notebook_renderer: NotebookRenderer | None = None,
        insight_extractor: InsightExtractor | None = None,
        stages: Mapping[str, str] | None = None,
        cache: ExecutionCache | None = None,
        max_cache_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = DEFAULT_ENGINE_MAX_CACHED_ROWS,
        disk_cache_path: str | os.PathLike | None = None,
        disk_cache_shards: int = 1,
        policy_registry_path: str | os.PathLike | None = None,
        inference_batching: bool = False,
        batch_linger_ms: float = 2.0,
        max_batch_size: int = 64,
    ):
        self.llm_client = llm_client or gpt4_client()
        self.cdrl_config = cdrl_config or CdrlConfig(episodes=150)
        # Continuous cross-request batching (opt-in): concurrent requests'
        # policy forwards coalesce into shared stacked waves, and their
        # content-keyed exploration state is pooled.  Results are
        # bit-identical to unbatched execution at equal seeds, so this knob
        # deliberately stays OUT of ``config_fingerprint()`` — batched and
        # unbatched servers may share one result store.  Only stages that
        # declare ``supports_batching`` receive the batcher; everything else
        # (ATENA baseline, custom stages, process-pool workers, which
        # rebuild engines from ``worker_spec()``) falls back to the
        # unbatched path.
        self.batcher = None
        if inference_batching:
            # Lazy import: repro.engine.batcher imports rl/explore modules.
            from .batcher import InferenceBatcher

            self.batcher = InferenceBatcher(
                max_batch_size=max_batch_size, linger_ms=batch_linger_ms
            )
        self.disk_cache_path = (
            str(disk_cache_path) if disk_cache_path is not None else None
        )
        self.disk_cache_shards = disk_cache_shards
        if cache is not None:
            self.cache = cache
        elif self.disk_cache_path is not None:
            self.cache = ThreadSafeTieredExecutionCache(
                self.disk_cache_path,
                max_entries=max_cache_entries,
                max_cached_rows=max_cached_rows,
                disk_shards=disk_cache_shards,
            )
        else:
            self.cache = ThreadSafeExecutionCache(
                max_entries=max_cache_entries, max_cached_rows=max_cached_rows
            )
        self._max_cache_entries = max_cache_entries
        self._max_cached_rows = max_cached_rows
        # Process-pool workers rebuild the engine from a picklable spec, so
        # they can only reproduce declaratively-configured engines.  Stage
        # selection *by registered name* (``stages=...``) stays declarative
        # — only live stage objects, caches and clients disqualify.
        self._custom_stages = any(
            stage is not None
            for stage in (
                spec_deriver,
                session_generator,
                notebook_renderer,
                insight_extractor,
            )
        ) or cache is not None or llm_client is not None
        self._bank_lock = threading.Lock()
        self._bank: Optional[FewShotBank] = None
        self._table_memo: dict = {}
        self._table_memo_lock = threading.Lock()
        self.registry = STAGE_REGISTRY
        self.policy_registry_path = (
            str(policy_registry_path) if policy_registry_path is not None else None
        )
        self.policy_registry = None
        if self.policy_registry_path is not None:
            # Lazy import: repro.train builds on this module's layer.
            from repro.train.registry import PolicyRegistry

            self.policy_registry = PolicyRegistry(self.policy_registry_path)
            # Trained artifacts become selectable stages (before stage
            # resolution, so ``stages=`` may name one directly).
            self.policy_registry.attach(self.registry)
        self.stage_selection: dict[str, str] = dict(stages or {})
        unknown_kinds = sorted(set(self.stage_selection) - set(STAGE_KIND_ATTRS))
        if unknown_kinds:
            raise ValueError(
                f"unknown stage kinds {unknown_kinds}; expected a subset of "
                f"{sorted(STAGE_KIND_ATTRS)}"
            )
        named = self.registry.resolve(self.stage_selection, self._stage_context())
        self.spec_deriver: SpecDeriver = (
            spec_deriver
            or named.get(KIND_SPEC_DERIVER)
            or ChainedSpecDeriver(self.llm_client, self.fewshot_bank)
        )
        self.session_generator: SessionGenerator = (
            session_generator
            or named.get(KIND_SESSION_GENERATOR)
            or CdrlSessionGenerator(self.cdrl_config)
        )
        self.notebook_renderer: NotebookRenderer = (
            notebook_renderer
            or named.get(KIND_NOTEBOOK_RENDERER)
            or MarkdownNotebookRenderer()
        )
        self.insight_extractor: InsightExtractor = (
            insight_extractor
            or named.get(KIND_INSIGHT_EXTRACTOR)
            or DefaultInsightExtractor()
        )
        # Per-request stage instances resolved by name, memoized: stage
        # implementations are stateless per request, so one instance per
        # (kind, name) serves every request and thread.
        self._stage_instances: dict[tuple[str, str], Any] = {}
        self._stage_instances_lock = threading.Lock()

    # -- shared state ----------------------------------------------------------------
    def fewshot_bank(self) -> FewShotBank:
        """The engine-wide few-shot bank, built once on first use.

        Building materialises the full benchmark (182 goal/LDX instances),
        so it is deferred until a request actually needs derivation and then
        reused by every subsequent request, across threads.
        """
        if self._bank is None:
            with self._bank_lock:
                if self._bank is None:
                    self._bank = FewShotBank(generate_benchmark())
        return self._bank

    def cache_stats(self) -> dict:
        """Engine-wide execution-cache statistics and occupancy."""
        return self.cache.describe()

    def close(self) -> None:
        """Release background resources (currently the batcher wave thread)."""
        if self.batcher is not None:
            self.batcher.close()

    def config_fingerprint(self) -> str:
        """Digest of this engine's result-shaping configuration.

        Covers everything that changes *what identical requests produce*
        under engine defaults — the CDRL configuration (episode budget,
        seeds, trainer hyper-parameters) and the ``name`` of every
        configured stage implementation (which also distinguishes custom
        stage *objects* from the defaults, as long as they carry distinct
        names).  The scheduler namespaces result-store keys with it, so a
        store file shared across servers (or restarts) with different
        configurations never serves one configuration's results for
        another's requests.
        """
        import dataclasses
        import hashlib

        payload = repr(
            (
                sorted(dataclasses.asdict(self.cdrl_config).items()),
                [
                    (kind, getattr(getattr(self, attribute), "name", "custom"))
                    for kind, attribute in sorted(STAGE_KIND_ATTRS.items())
                ],
            )
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=12).hexdigest()

    def _stage_context(self) -> StageContext:
        """The shared-state bundle handed to registry stage factories."""
        return StageContext(
            llm_client=self.llm_client,
            fewshot_bank=self.fewshot_bank,
            cdrl_config=self.cdrl_config,
        )

    def _stage_by_name(self, kind: str, name: str) -> Any:
        """The memoized stage instance registered under ``(kind, name)``."""
        key = (kind, str(name).strip().lower())
        with self._stage_instances_lock:
            instance = self._stage_instances.get(key)
        if instance is None:
            instance = self.registry.create(kind, name, self._stage_context())
            with self._stage_instances_lock:
                instance = self._stage_instances.setdefault(key, instance)
        return instance

    def _stages_for(self, request: ExploreRequest) -> dict[str, Any]:
        """The stage instances serving *request* (kind → stage).

        A request's declarative ``stages`` selection overrides the engine's
        configured stage per kind; unselected kinds keep the engine's.
        Unknown names raise :class:`RequestValidationError` before any work
        starts.
        """
        stages = {
            kind: getattr(self, attribute)
            for kind, attribute in STAGE_KIND_ATTRS.items()
        }
        for kind, name in (request.stages or {}).items():
            stages[kind] = self._stage_by_name(kind, name)
        return stages

    #: Resolved datasets memoised per engine (generation is deterministic
    #: in ``(name, num_rows, seed)``, so sharing one immutable table across
    #: requests and threads changes nothing but the time spent).
    _TABLE_MEMO_MAX = 16

    def resolve_table(self, request: ExploreRequest) -> DataTable:
        """Materialise the dataset a request refers to (memoised).

        Synthetic datasets are regenerated deterministically from
        ``(dataset, num_rows, dataset_seed)``; under serving load every
        request paid that generation cost again.  The memo is bounded by
        wholesale clearing (the registry only has a handful of datasets,
        but ``num_rows`` sweeps shouldn't grow it without bound).
        """
        key = (request.dataset, request.num_rows, request.dataset_seed)
        # Generation happens *under* the lock: a burst of concurrent
        # requests for the same dataset must not each regenerate it
        # (thundering herd) — the first loader blocks the rest, which
        # then hit the memo.  Generation is GIL-bound anyway, so the
        # serialisation costs nothing in wall-clock terms.
        with self._table_memo_lock:
            table = self._table_memo.get(key)
            if table is None:
                table = load_dataset(
                    request.dataset,
                    num_rows=request.num_rows,
                    seed=request.dataset_seed,
                )
                if len(self._table_memo) >= self._TABLE_MEMO_MAX:
                    self._table_memo.clear()
                self._table_memo[key] = table
        return table

    # -- convenience (legacy-facade support) -----------------------------------------
    def derive_specifications(self, dataset_name: str, goal: str) -> str:
        """Derive LDX specification text for *goal* (LINX step 1)."""
        return self.spec_deriver.derive(dataset_name, goal).ldx_text

    # -- request execution -----------------------------------------------------------
    def explore(
        self,
        request: ExploreRequest,
        *,
        table: DataTable | None = None,
        observer: ProgressObserver | None = None,
        timeout: float | None = None,
        cancel_event: threading.Event | None = None,
        _label: str = "",
    ) -> ExploreResult:
        """Process one request through the full pipeline.

        ``table`` overrides dataset resolution with an in-memory
        :class:`DataTable` (the in-process escape hatch used by the legacy
        facade); the request stays declarative and serializable either way.
        ``observer`` receives ordered :class:`ProgressEvent` notifications.

        ``timeout`` (seconds) and ``cancel_event`` enable *cooperative*
        interruption: the engine checks both at every stage boundary and at
        every training-episode tick, and raises
        :class:`~repro.engine.errors.RequestTimeoutError` /
        :class:`~repro.engine.errors.RequestCancelledError` — never a
        partial result — when the deadline passes or the event is set.
        """
        known = None
        if table is not None:
            known = list(dataset_names()) + [table.name]
        request.validate(known_datasets=known)
        if (
            request.ldx_text is None
            and table is not None
            and table.name.strip().lower() not in dataset_names()
        ):
            raise RequestValidationError(
                [
                    FieldError(
                        "ldx_text",
                        "specification derivation needs a registered dataset; "
                        f"supply ldx_text explicitly for ad-hoc table {table.name!r}",
                    )
                ]
            )

        request_id = request.request_id or _label or "request"
        emit: ProgressObserver = observer or (lambda event: None)
        stages = self._stages_for(request)
        deadline = time.monotonic() + timeout if timeout is not None else None

        def guard() -> None:
            # The cooperative checkpoint: cheap enough for every episode tick.
            # The fault seam runs first so an injected hang is observed by
            # the deadline check below — exactly how a hung stage is cut
            # loose in production.
            fault_point(SITE_CHECKPOINT)
            if cancel_event is not None and cancel_event.is_set():
                raise RequestCancelledError(request_id)
            if deadline is not None and time.monotonic() > deadline:
                raise RequestTimeoutError(request_id, timeout)

        guard()
        result = ExploreResult(
            request=request.to_dict(),
            dataset_name=request.dataset,
            goal=request.goal,
        )
        for stage_name in STAGE_ORDER:
            result.stage(stage_name)  # pre-register, status "pending"
        result.stage_names = {
            stage_kind: getattr(stage, "name", type(stage).__name__)
            for stage_kind, stage in stages.items()
        }
        emit(ProgressEvent(request_id, EVENT_REQUEST_STARTED))

        if table is None:
            table = self.resolve_table(request)
        result.dataset_name = table.name
        counters_before = self.cache.snapshot_counters()

        # -- stage 1: specification derivation ----------------------------------
        if request.ldx_text is not None:
            status = result.stage(STAGE_DERIVE)
            status.status = STATUS_SKIPPED
            status.detail = "explicit ldx_text supplied"
            emit(ProgressEvent(request_id, EVENT_STAGE_SKIPPED, STAGE_DERIVE))
            ldx_text = request.ldx_text
        else:
            guard()
            derivation = self._run_stage(
                result,
                STAGE_DERIVE,
                request_id,
                emit,
                lambda: stages[KIND_SPEC_DERIVER].derive(table.name, request.goal),
                required=True,
            )
            ldx_text = derivation.ldx_text

        query = try_parse_ldx(ldx_text)
        if query is None:
            # Permissive fallback instead of failing outright — and, unlike
            # the old facade, the substitution is recorded on the result.
            result.derivation_fallback = True
            result.warnings.append(
                "specification did not parse as LDX; substituted the permissive "
                "fallback specification"
            )
            result.stage(STAGE_DERIVE).detail = (
                result.stage(STAGE_DERIVE).detail or "fell back to permissive LDX"
            )
            ldx_text = PERMISSIVE_LDX
            query = parse_ldx(ldx_text)
        result.ldx_text = ldx_text

        # -- stage 2: constrained session generation ----------------------------
        def on_episode(episode: int, episode_return: float, _session) -> None:
            guard()
            emit(
                ProgressEvent(
                    request_id,
                    EVENT_EPISODE,
                    STAGE_GENERATE,
                    {"episode": episode, "return": episode_return},
                )
            )

        guard()
        generator = stages[KIND_SESSION_GENERATOR]
        generate_kwargs: dict[str, Any] = {}
        if self.batcher is not None and getattr(generator, "supports_batching", False):
            generate_kwargs["batcher"] = self.batcher
        outcome = self._run_stage(
            result,
            STAGE_GENERATE,
            request_id,
            emit,
            lambda: generator.generate(
                table,
                ldx_text,
                episodes=request.episodes,
                seed=request.seed,
                cache=self.cache,
                on_episode=on_episode,
                **generate_kwargs,
            ),
            required=True,
        )
        session: ExplorationSession = outcome.session
        result.fully_compliant = outcome.fully_compliant
        result.structurally_compliant = outcome.structurally_compliant
        result.utility_score = outcome.utility_score
        result.episodes_trained = outcome.episodes_trained
        result.operations = [
            list(operation.signature()) for operation in session.operations
        ]

        # -- stage 3 + 4: rendering and insights (non-fatal on failure) ----------
        guard()
        notebook = self._run_stage(
            result,
            STAGE_RENDER,
            request_id,
            emit,
            lambda: stages[KIND_NOTEBOOK_RENDERER].render(session, request.goal),
            required=False,
        )
        if notebook is not None:
            result.notebook_markdown = notebook.to_markdown()
        guard()
        insights = self._run_stage(
            result,
            STAGE_INSIGHTS,
            request_id,
            emit,
            lambda: stages[KIND_INSIGHT_EXTRACTOR].extract(session),
            required=False,
        )
        if insights is not None:
            result.insights = [insight_to_dict(insight) for insight in insights]

        result.cache_stats = self._cache_delta(counters_before)
        result.artifacts = EngineArtifacts(
            session=session,
            notebook=notebook,
            query=query,
            insights=list(insights) if insights is not None else [],
        )
        if isinstance(self.cache, TieredExecutionCache):
            # Land this request's write-behind buffer so concurrent
            # processes (and the next engine start) see its results.
            self.cache.flush()
        emit(ProgressEvent(request_id, EVENT_REQUEST_FINISHED))
        return result

    def explore_many(
        self,
        requests: Iterable[ExploreRequest],
        *,
        max_workers: int | None = None,
        observer: ProgressObserver | None = None,
        workers: str = "thread",
        timeout: float | None = None,
        cancel_event: threading.Event | None = None,
    ) -> list[ExploreResult]:
        """Process a batch of requests, fanned out over a worker pool.

        Results are returned in request order.  The default ``workers=
        "thread"`` pool shares the engine's execution cache in memory, so
        overlapping requests reuse each other's query results; with
        ``max_workers=1`` the batch runs sequentially (events of different
        requests never interleave), otherwise observer callbacks may arrive
        concurrently from worker threads (per-request ordering is still
        guaranteed).  The first failing request propagates its exception
        after in-flight work completes.

        ``workers="process"`` is the multi-core opt-in: requests are
        serialized to a :class:`ProcessPoolExecutor` whose workers rebuild
        the engine from this one's declarative configuration.  CDRL training
        is pure Python/numpy and GIL-bound, so threads mostly interleave —
        processes actually scale.  Caveats: only declaratively-configured
        engines qualify — default stages *or stages selected by registered
        name* (engine-level ``stages=...`` or per-request
        ``request.stages``), default LLM/cache; a ``disk_cache_path`` lets
        the workers share executed results through the persistent tier —
        and results come back as lossless JSON round-trips, so live
        ``artifacts`` (session/notebook objects) are not attached.  With an
        ``observer``, workers stream their full event sequence (episode
        ticks included) back over a multiprocessing queue; per-request
        ordering is preserved, cross-request interleaving mirrors thread
        mode.  Request seeds behave exactly as in thread mode, so a batch's
        results are identical run-to-run and mode-to-mode.

        ``timeout`` applies *per request* in both modes; a request past its
        deadline raises :class:`~repro.engine.errors.RequestTimeoutError`
        out of the batch.  ``cancel_event`` cancels the whole batch
        cooperatively — in process mode it is bridged to the workers
        through a sentinel file (a
        :class:`~repro.reliability.FileCancelEvent` is used directly),
        so setting it reaches requests already running in the pool at
        their next checkpoint.
        """
        if workers not in ("thread", "process"):
            raise ValueError(f"workers must be 'thread' or 'process', got {workers!r}")
        batch: Sequence[ExploreRequest] = list(requests)
        if not batch:
            return []
        labels = [
            request.request_id or f"request-{index}"
            for index, request in enumerate(batch)
        ]
        if workers == "process":
            return self._explore_many_processes(
                batch, labels, max_workers, observer, timeout, cancel_event
            )
        pool_size = max_workers if max_workers is not None else min(4, len(batch))
        if pool_size <= 1 or len(batch) == 1:
            return [
                self.explore(
                    request,
                    observer=observer,
                    timeout=timeout,
                    cancel_event=cancel_event,
                    _label=label,
                )
                for request, label in zip(batch, labels)
            ]
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                pool.submit(
                    self.explore,
                    request,
                    observer=observer,
                    timeout=timeout,
                    cancel_event=cancel_event,
                    _label=label,
                )
                for request, label in zip(batch, labels)
            ]
            return [future.result() for future in futures]

    def _explore_many_processes(
        self,
        batch: Sequence[ExploreRequest],
        labels: Sequence[str],
        max_workers: int | None,
        observer: ProgressObserver | None,
        timeout: float | None = None,
        cancel_event: threading.Event | None = None,
    ) -> list[ExploreResult]:
        """Fan the batch out over processes that rebuild this engine's config."""
        if self._custom_stages:
            raise ValueError(
                "workers='process' requires a declaratively-configured engine "
                "(default or registry-named stages, default LLM client and "
                "cache); custom in-memory components cannot be rebuilt in "
                "worker processes"
            )
        spec = self.worker_spec()
        # Validate everything before any work is dispatched, so an invalid
        # request cannot strand already-submitted siblings mid-flight.
        for request in batch:
            request.validate()
        if isinstance(self.cache, TieredExecutionCache):
            # Everything executed so far becomes visible to the workers.
            self.cache.flush()
        pool_size = max_workers if max_workers is not None else min(
            len(batch), os.cpu_count() or 1
        )

        # With an observer, workers stream their complete per-request event
        # sequence — episode ticks included — back through a managed queue
        # drained by a parent thread (the PR-4 follow-up: progress used to
        # be request-granularity only).
        progress_queue = None
        drainer = None
        manager = None
        if observer is not None:
            import multiprocessing

            manager = multiprocessing.Manager()
            progress_queue = manager.Queue()
            drainer = threading.Thread(
                target=drain_progress_queue,
                args=(progress_queue, lambda label, event: observer(event)),
                daemon=True,
            )
            drainer.start()

        # Cross-process cancellation rides a sentinel file the workers poll
        # at their cooperative checkpoints — an in-memory event cannot cross
        # the process boundary.  A FileCancelEvent contributes its own path;
        # any other event is bridged by a watcher thread that touches a
        # temporary sentinel when it fires.
        cancel_path: Optional[str] = None
        bridge_stop: Optional[threading.Event] = None
        bridge: Optional[threading.Thread] = None
        if cancel_event is not None:
            if isinstance(cancel_event, FileCancelEvent):
                cancel_path = str(cancel_event.path)
            else:
                cancel_path = str(
                    Path(tempfile.mkdtemp(prefix="linx-cancel-")) / "batch.cancel"
                )
                bridge_stop = threading.Event()

                def _bridge_cancel() -> None:
                    while not bridge_stop.is_set():
                        if cancel_event.is_set():
                            FileCancelEvent(cancel_path).set()
                            return
                        bridge_stop.wait(0.05)

                bridge = threading.Thread(target=_bridge_cancel, daemon=True)
                bridge.start()
        try:
            with ProcessPoolExecutor(max_workers=max(1, pool_size)) as pool:
                futures = [
                    pool.submit(
                        _process_worker,
                        request.to_dict(),
                        spec,
                        label,
                        progress_queue,
                        timeout,
                        cancel_path,
                    )
                    for request, label in zip(batch, labels)
                ]
                return [
                    ExploreResult.from_dict(future.result()) for future in futures
                ]
        finally:
            if bridge_stop is not None:
                bridge_stop.set()
                bridge.join(timeout=5)
            if progress_queue is not None:
                progress_queue.put(None)
                drainer.join(timeout=30)
                manager.shutdown()

    def worker_spec(self) -> dict[str, Any]:
        """The picklable spec a worker process rebuilds this engine from.

        Only meaningful for declaratively-configured engines (the process
        entry points check ``_custom_stages`` before using it).
        """
        return {
            "cdrl_config": self.cdrl_config,
            "disk_cache_path": self.disk_cache_path,
            "disk_cache_shards": self.disk_cache_shards,
            "max_cache_entries": self._max_cache_entries,
            "max_cached_rows": self._max_cached_rows,
            "stages": dict(self.stage_selection),
            "policy_registry_path": self.policy_registry_path,
        }

    # -- internals -------------------------------------------------------------------
    def _run_stage(
        self,
        result: ExploreResult,
        stage_name: str,
        request_id: str,
        emit: ProgressObserver,
        run: Callable[[], T],
        *,
        required: bool,
    ) -> Optional[T]:
        """Run one stage with timing, status bookkeeping and events.

        Required stages re-raise failures as :class:`StageFailedError`;
        optional stages record the failure on their status (plus a result
        warning) and let the request complete, mirroring the stage-failure
        policy of staged enrichment pipelines.
        """
        status = result.stage(stage_name)
        emit(ProgressEvent(request_id, EVENT_STAGE_STARTED, stage_name))
        started = time.perf_counter()
        try:
            value = run()
        except RequestCancelledError:
            # Cooperative cancellation aborts the whole request (required or
            # not) and is never wrapped: schedulers must be able to tell
            # "cancelled" from "failed".
            status.seconds = time.perf_counter() - started
            status.status = STATUS_CANCELLED
            emit(
                ProgressEvent(
                    request_id,
                    EVENT_STAGE_FINISHED,
                    stage_name,
                    {"status": STATUS_CANCELLED},
                )
            )
            raise
        except Exception as exc:
            status.seconds = time.perf_counter() - started
            status.status = STATUS_FAILED
            status.detail = f"{type(exc).__name__}: {exc}"
            emit(
                ProgressEvent(
                    request_id, EVENT_STAGE_FINISHED, stage_name, {"status": STATUS_FAILED}
                )
            )
            if required:
                raise StageFailedError(stage_name, exc) from exc
            result.warnings.append(f"stage {stage_name} failed: {exc}")
            return None
        status.seconds = time.perf_counter() - started
        status.status = STATUS_COMPLETE
        emit(
            ProgressEvent(
                request_id, EVENT_STAGE_FINISHED, stage_name, {"status": STATUS_COMPLETE}
            )
        )
        return value

    def _cache_delta(self, counters_before: tuple[int, int, int, int, int]) -> dict:
        """Per-request cache counters (approximate under concurrent batches)."""
        hits_before, misses_before, evictions_before, plan_hits_before, fusions_before = (
            counters_before
        )
        hits_after, misses_after, evictions_after, plan_hits_after, fusions_after = (
            self.cache.snapshot_counters()
        )
        hits = hits_after - hits_before
        misses = misses_after - misses_before
        plan_hits = plan_hits_after - plan_hits_before
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions_after - evictions_before,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "plan_hits": plan_hits,
            "plan_hit_rate": round(plan_hits / lookups, 4) if lookups else 0.0,
            "fusion_count": fusions_after - fusions_before,
            "entries": len(self.cache),
            "cached_rows": self.cache.cached_rows,
        }


# -- process-pool worker ----------------------------------------------------------------
#: The engine a worker process lazily builds and then reuses across tasks,
#: keyed by the spec that built it (one warm engine per worker).
_worker_engine: Optional[LinxEngine] = None
_worker_spec: Optional[dict[str, Any]] = None


def drain_progress_queue(queue, route: Callable[[str, ProgressEvent], None]) -> None:
    """Forward ``(label, event)`` pairs from a worker queue until ``None``.

    Shared by :meth:`LinxEngine.explore_many` (which drops the label — the
    events already carry their request id) and the request scheduler (which
    routes by label to per-ticket event logs).  Run it on a daemon thread;
    enqueue ``None`` to stop it.
    """
    while True:
        item = queue.get()
        if item is None:
            return
        label, event = item
        try:
            route(label, event)
        except Exception:
            # A broken observer must not kill the drainer (and with it
            # every subsequent event of the batch).
            pass


def worker_engine(spec: dict[str, Any]) -> LinxEngine:
    """This worker process's warm engine for *spec* (rebuilt on spec change)."""
    global _worker_engine, _worker_spec
    if _worker_engine is None or spec != _worker_spec:
        _worker_engine = LinxEngine(
            cdrl_config=spec["cdrl_config"],
            max_cache_entries=spec["max_cache_entries"],
            max_cached_rows=spec["max_cached_rows"],
            disk_cache_path=spec["disk_cache_path"],
            disk_cache_shards=spec.get("disk_cache_shards", 1),
            stages=spec.get("stages") or None,
            policy_registry_path=spec.get("policy_registry_path"),
        )
        _worker_spec = spec
    return _worker_engine


def _process_worker(
    request_payload: dict[str, Any],
    spec: dict[str, Any],
    label: str = "",
    progress_queue: Any = None,
    timeout: float | None = None,
    cancel_path: str | None = None,
) -> dict[str, Any]:
    """Process one serialized request in a pool worker; returns the result dict.

    The worker materialises a :class:`LinxEngine` from the parent's
    declarative *spec* on first use (or when the spec changes) and keeps it
    warm: the few-shot bank, the in-memory cache tier and — when a
    ``disk_cache_path`` is configured — the shared persistent tier all
    survive across the worker's tasks.  With a *progress_queue*, every
    engine event is streamed to the parent as a ``(label, event)`` pair;
    *timeout* bounds this request cooperatively (the deadline starts when
    the worker picks the request up, not when it was queued).  With a
    *cancel_path*, the worker polls that sentinel file at its cooperative
    checkpoints — the cross-process half of the cancellation registry: the
    parent's ``cancel()`` touches the file, this request stops at its next
    stage boundary or episode tick.
    """
    engine = worker_engine(spec)
    observer = None
    if progress_queue is not None:
        observer = lambda event: progress_queue.put((label, event))  # noqa: E731
    cancel_event = FileCancelEvent(cancel_path) if cancel_path else None
    result = engine.explore(
        ExploreRequest.from_dict(request_payload),
        observer=observer,
        timeout=timeout,
        cancel_event=cancel_event,
        _label=label,
    )
    return result.to_dict()
