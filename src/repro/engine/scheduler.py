"""The request scheduler: a bounded queue between callers and the engine.

A :class:`RequestScheduler` turns the in-process :class:`LinxEngine` into a
serving component.  Callers :meth:`~RequestScheduler.submit` declarative
requests and get back a **ticket**; worker threads drain the bounded queue
and drive each request through the engine, recording every
:class:`~repro.engine.events.ProgressEvent` on its ticket so event streams
(SSE, websockets, polling) replay and follow live.  Each ticket moves
through one lifecycle::

    queued ──> running ──> done
                   │  └──> failed
                   └─────> cancelled        (queued tickets cancel directly)

Three serving behaviours live here rather than in the engine:

* **Back-pressure** — at most ``max_pending`` tickets may be queued or
  running; past that, :meth:`submit` raises
  :class:`~repro.engine.errors.SchedulerFullError` (HTTP 429 upstream).
* **Deduplication** — a request whose
  :meth:`~repro.engine.request.ExploreRequest.canonical_hash` matches a
  live ticket joins that ticket instead of enqueueing duplicate work, and a
  hash already in the :class:`~repro.engine.store.ResultStore` is served
  from disk without executing at all (idempotent resubmission).
* **Timeout / cancellation** — per-ticket deadlines and
  :meth:`~RequestScheduler.cancel` ride the engine's cooperative
  checkpoints; a cancelled request yields a ``cancelled`` ticket and never
  touches the store.

Execution is pluggable: ``workers="thread"`` runs requests on the
scheduler's own threads over the engine's shared cache;
``workers="process"`` reuses :func:`~repro.engine.core._process_worker` —
the same machinery as ``explore_many(workers="process")`` — with worker
events streamed back over a multiprocessing queue and routed to tickets by
a drainer thread.

**Multi-replica coordination.**  When several schedulers (in separate
processes, on separate servers) share one :class:`ResultStore` file, the
store's lease table makes execution exactly-once: before running a
request, a worker **claims** ``(namespace, canonical_hash)`` — a
single-transaction compare-and-claim — and a request whose hash another
replica holds waits for that replica's result instead of duplicating the
work.  A heartbeat thread renews held leases; a replica that crashes
stops renewing, its leases expire, and the next replica to ask *takes
over* and re-executes.  Cancellation reaches process-pool workers through
sentinel files under a shared directory (the cross-process cancellation
registry), and :meth:`~RequestScheduler.drain` implements graceful
SIGTERM shutdown: stop accepting (503 upstream), finish or release
in-flight leases, flush the write-behind cache.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import traceback
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.explore.diskcache import TieredExecutionCache
from repro.reliability import SITE_HEARTBEAT, fault_point

from .core import LinxEngine, _process_worker, drain_progress_queue
from .errors import (
    RequestCancelledError,
    RequestTimeoutError,
    SchedulerDrainingError,
    SchedulerFullError,
)
from .events import (
    EVENT_REQUEST_CANCELLED,
    EVENT_REQUEST_FAILED,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    TERMINAL_EVENTS,
    ProgressEvent,
)
from .request import ExploreRequest
from .result import ExploreResult
from .store import ResultStore

#: Ticket lifecycle states.
TICKET_QUEUED = "queued"
TICKET_RUNNING = "running"
TICKET_DONE = "done"
TICKET_FAILED = "failed"
TICKET_CANCELLED = "cancelled"

#: States in which a ticket consumes queue capacity.
ACTIVE_STATES = frozenset({TICKET_QUEUED, TICKET_RUNNING})
#: States a ticket can no longer leave.
TERMINAL_STATES = frozenset({TICKET_DONE, TICKET_FAILED, TICKET_CANCELLED})


@dataclass
class Ticket:
    """One scheduled request and everything observed about it."""

    ticket_id: str
    request: ExploreRequest
    request_hash: str
    state: str = TICKET_QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    timeout: Optional[float] = None
    #: True when this submit joined an already-live identical request.
    deduplicated: bool = False
    #: True when the result came from the store without executing.
    served_from_store: bool = False
    error: str = ""
    error_kind: str = ""
    events: list[ProgressEvent] = field(default_factory=list)
    result_payload: Optional[dict[str, Any]] = None
    #: The serialized wire-format result, when it exists in that form —
    #: stored results (read raw off disk) and freshly committed ones (the
    #: text that was just written).  Serving splices this into responses
    #: without a parse/re-dump round-trip; ``result_payload`` is parsed
    #: from it lazily on first dict access.
    result_text: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Point-in-time :meth:`snapshot` taken under the scheduler lock when the
    #: submission was accepted.  The server's POST response uses this instead
    #: of re-reading the live state, which a fast worker may already have
    #: advanced (a fresh submission must report "queued", not race to "done").
    submit_snapshot: dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-native status view (the server's ``/requests/<id>`` body)."""
        return {
            "ticket": self.ticket_id,
            "request_id": self.request.request_id,
            "request_hash": self.request_hash,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timeout": self.timeout,
            "deduplicated": self.deduplicated,
            "served_from_store": self.served_from_store,
            "error": self.error,
            "error_kind": self.error_kind,
            "events_seen": len(self.events),
        }


class RequestScheduler:
    """Bounded-queue request execution over a :class:`LinxEngine`.

    Parameters
    ----------
    engine:
        The engine that executes requests.
    store:
        Optional persistent :class:`ResultStore`: completed results are
        written under their canonical request hash (namespaced by the
        engine's :meth:`~repro.engine.core.LinxEngine.config_fingerprint`,
        so differently-configured engines sharing one store file never
        serve each other's results), and submits whose key is already
        stored are served from disk without executing.
    max_pending:
        Queue bound — the maximum number of tickets queued or running at
        once.  :meth:`submit` raises :class:`SchedulerFullError` beyond it.
    max_workers:
        Worker threads draining the queue (= concurrently running
        requests).
    workers:
        ``"thread"`` (default) executes on the scheduler's threads over the
        engine's shared in-memory cache; ``"process"`` fans each request to
        a process pool (declaratively-configured engines only) with worker
        events streamed back to the tickets.
    default_timeout:
        Per-request timeout (seconds) applied when :meth:`submit` gets
        none.  ``None`` means no deadline.
    max_terminal_tickets:
        Retention bound for finished tickets.  Terminal tickets beyond the
        newest *max_terminal_tickets* are dropped entirely (their ids then
        report 404); without a bound, a long-running server's ticket table
        grows forever.
    terminal_events_keep:
        How many of the newest terminal tickets keep their full event logs.
        Older terminal tickets are truncated to just their terminal event
        *before* any ticket is dropped — events dominate a ticket's
        footprint (one per training episode), so truncation reclaims most
        of the memory while status lookups keep working.
    replica_id:
        This scheduler's identity in the store's lease table.  Defaults to
        a per-process unique id; the cluster smoke assigns stable names.
    lease_ttl:
        Seconds a claimed lease stays valid without renewal.  The
        heartbeat renews at ``lease_ttl / 3``, so a healthy replica never
        loses a lease; a crashed one loses them after *lease_ttl* and a
        sibling takes over.
    heartbeat_interval:
        Override the heartbeat period (defaults to ``lease_ttl / 3``).
    cancel_dir:
        Directory of the cross-process cancellation sentinels (defaults to
        ``<store dir>/cancel``, or a temp dir without a store).  Process
        workers poll their ticket's sentinel at engine checkpoints, so
        :meth:`cancel` reaches requests running in the pool.
    execution_journal:
        Optional append-only JSON-lines file recording every ``execute``
        (lease claimed, work starting) and ``commit`` (result stored)
        with the replica id — the cluster smoke's exactly-once evidence.

    The scheduler starts its workers immediately; use it as a context
    manager or call :meth:`shutdown` to stop them.
    """

    def __init__(
        self,
        engine: LinxEngine,
        *,
        store: ResultStore | None = None,
        max_pending: int = 64,
        max_workers: int = 2,
        workers: str = "thread",
        default_timeout: float | None = None,
        max_terminal_tickets: int = 512,
        terminal_events_keep: int = 64,
        replica_id: str | None = None,
        lease_ttl: float = 30.0,
        heartbeat_interval: float | None = None,
        cancel_dir: str | Path | None = None,
        execution_journal: str | Path | None = None,
    ):
        if workers not in ("thread", "process"):
            raise ValueError(f"workers must be 'thread' or 'process', got {workers!r}")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if max_terminal_tickets < 1:
            raise ValueError("max_terminal_tickets must be positive")
        if terminal_events_keep < 0:
            raise ValueError("terminal_events_keep must be >= 0")
        if workers == "process" and engine._custom_stages:
            raise ValueError(
                "workers='process' requires a declaratively-configured engine "
                "(default or registry-named stages, default LLM client and cache)"
            )
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.engine = engine
        self.store = store
        self.replica_id = (
            replica_id
            if replica_id is not None
            else f"replica-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else lease_ttl / 3.0
        )
        if cancel_dir is not None:
            self._cancel_dir = Path(cancel_dir)
        elif store is not None:
            self._cancel_dir = store.path.parent / "cancel"
        else:
            self._cancel_dir = None  # created lazily on first process cancel
        self._journal_path = (
            Path(execution_journal) if execution_journal is not None else None
        )
        # Store rows are namespaced by the engine's declarative config
        # digest: a store file shared by differently-configured servers
        # (episode budgets, engine-level stage selection) never serves one
        # configuration's results for another's requests.
        self._store_namespace = engine.config_fingerprint()
        self.max_pending = max_pending
        self.workers = workers
        self.default_timeout = default_timeout
        self.max_terminal_tickets = max_terminal_tickets
        self.terminal_events_keep = terminal_events_keep
        #: GC telemetry, surfaced in :meth:`describe` (and hence ``/stats``).
        self.gc_dropped_tickets = 0
        self.gc_truncated_events = 0
        #: Fault-tolerance telemetry.
        self.lease_waits = 0
        self.lease_renewals = 0
        self.worker_respawns = 0
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._queue: deque[str] = deque()
        self._tickets: dict[str, Ticket] = {}
        self._live_by_hash: dict[str, str] = {}
        #: Request hashes whose execution lease this replica currently holds.
        self._held_leases: set[str] = set()
        self._ticket_counter = 0
        self._shutdown = False
        self._draining = False
        self._pool = None
        self._manager = None
        self._progress_queue = None
        self._drainer: Optional[threading.Thread] = None
        if workers == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=max_workers)
            self._manager = multiprocessing.Manager()
            self._progress_queue = self._manager.Queue()
            self._drainer = threading.Thread(
                target=drain_progress_queue,
                args=(self._progress_queue, self._route_event),
                daemon=True,
            )
            self._drainer.start()
        self._threads = [
            threading.Thread(target=self._worker_main, daemon=True, name=f"linx-sched-{i}")
            for i in range(max_workers)
        ]
        for thread in self._threads:
            thread.start()
        # The lease heartbeat: renews everything this replica holds so a
        # healthy replica never loses a lease mid-execution.  Only started
        # with a store — without one there is nothing to coordinate.
        self._heartbeat_stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None
        if store is not None:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop, daemon=True, name="linx-sched-heartbeat"
            )
            self._heartbeat.start()

    # -- submission --------------------------------------------------------------------
    def submit(
        self, request: ExploreRequest, *, timeout: float | None = None
    ) -> Ticket:
        """Queue *request*; returns its (possibly pre-existing) ticket.

        Validation happens up front (raising
        :class:`~repro.engine.errors.RequestValidationError` before a ticket
        exists).  Identical live requests are joined, stored results are
        served immediately, and a full queue raises
        :class:`SchedulerFullError`.

        A join keeps the *original* ticket's deadline — the work is shared,
        so a joining caller's ``timeout`` cannot shorten it (check the
        returned ticket's ``timeout``/``deduplicated`` fields and
        :meth:`cancel` explicitly if a bounded wait matters).
        """
        request.validate()
        request_hash = request.canonical_hash()
        # Join a live identical ticket before touching the store: a burst
        # of identical resubmissions must cost one dict lookup, not one
        # sqlite read each.
        with self._condition:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._draining:
                raise SchedulerDrainingError(self.replica_id)
            ticket = self._live_ticket(request_hash)
            if ticket is not None:
                ticket.deduplicated = True
                ticket.submit_snapshot = ticket.snapshot()
                return ticket
        # The store lookup (a pooled sqlite read of the raw result text —
        # never parsed on this path) happens *outside* the scheduler lock
        # so a burst of submits never stalls running requests' event
        # recording.  The races this opens —
        # an identical request enqueued, or completing and writing the
        # store, between these two critical sections — are benign: the
        # dedup re-check below catches the former, and _execute's own
        # store re-check catches the latter.
        stored = (
            self.store.get_payload_text(self._store_namespace, request_hash)
            if self.store is not None
            else None
        )
        with self._condition:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._draining:
                raise SchedulerDrainingError(self.replica_id)
            ticket = self._live_ticket(request_hash)
            if ticket is not None:
                ticket.deduplicated = True
                ticket.submit_snapshot = ticket.snapshot()
                return ticket
            ticket = self._new_ticket(request, request_hash, timeout)
            if stored is not None:
                self._finish_from_store(ticket, stored)
                self._tickets[ticket.ticket_id] = ticket
                ticket.submit_snapshot = ticket.snapshot()
                return ticket
            active = sum(
                1 for t in self._tickets.values() if t.state in ACTIVE_STATES
            )
            if active >= self.max_pending:
                raise SchedulerFullError(active, self.max_pending)
            self._tickets[ticket.ticket_id] = ticket
            self._live_by_hash[request_hash] = ticket.ticket_id
            self._queue.append(ticket.ticket_id)
            ticket.submit_snapshot = ticket.snapshot()
            self._condition.notify_all()
            return ticket

    def _live_ticket(self, request_hash: str) -> Optional[Ticket]:
        """The ACTIVE ticket for *request_hash*, if any (caller holds the lock).

        Defensive against stale ``_live_by_hash`` entries: a hash whose
        ticket turned terminal — or was dropped entirely by the
        terminal-ticket GC — is *not* live; the mapping is pruned and the
        caller falls through to the result store instead of crashing on a
        missing ticket or re-executing a stored result.
        """
        live = self._live_by_hash.get(request_hash)
        if live is None:
            return None
        ticket = self._tickets.get(live)
        if ticket is None or ticket.state not in ACTIVE_STATES:
            self._live_by_hash.pop(request_hash, None)
            return None
        return ticket

    def _new_ticket(
        self, request: ExploreRequest, request_hash: str, timeout: float | None
    ) -> Ticket:
        self._ticket_counter += 1
        return Ticket(
            ticket_id=f"t-{self._ticket_counter}",
            request=request,
            request_hash=request_hash,
            timeout=timeout if timeout is not None else self.default_timeout,
        )

    def _finish_from_store(self, ticket: Ticket, payload_text: str) -> None:
        """Complete *ticket* directly from stored payload text (no execution).

        The raw JSON text is kept as-is: the serving layer splices it into
        responses untouched, and the dict form is only materialised if a
        caller actually asks for :meth:`result_payload`.
        """
        now = time.time()
        ticket.state = TICKET_DONE
        ticket.served_from_store = True
        ticket.started_at = now
        ticket.finished_at = now
        ticket.result_text = payload_text
        label = ticket.request.request_id or ticket.ticket_id
        ticket.events.append(
            ProgressEvent(label, EVENT_REQUEST_STARTED, "", {"served_from_store": True})
        )
        ticket.events.append(
            ProgressEvent(label, EVENT_REQUEST_FINISHED, "", {"served_from_store": True})
        )
        self._gc_terminal()
        self._condition.notify_all()

    # -- inspection --------------------------------------------------------------------
    def ticket(self, ticket_id: str) -> Ticket:
        """The ticket under *ticket_id* (KeyError when unknown)."""
        with self._lock:
            return self._tickets[ticket_id]

    def status(self, ticket_id: str) -> dict[str, Any]:
        """The JSON-native status snapshot of *ticket_id*."""
        with self._lock:
            return self._tickets[ticket_id].snapshot()

    def result_payload(self, ticket_id: str) -> Optional[dict[str, Any]]:
        """The serialized result of a ``done`` ticket, else ``None``.

        Store-served tickets carry only the raw JSON text; the dict form
        is parsed (and cached on the ticket) on first access here, so
        callers that never need it — the raw-splicing result endpoint —
        never pay for the parse.
        """
        with self._lock:
            ticket = self._tickets[ticket_id]
            if ticket.result_payload is None and ticket.result_text is not None:
                ticket.result_payload = json.loads(ticket.result_text)
            return ticket.result_payload

    def result_text(self, ticket_id: str) -> Optional[str]:
        """The result of a ``done`` ticket as wire-format JSON text, else ``None``.

        The zero-parse serving path: stored and freshly committed results
        already exist in this form and are returned as-is; a result that
        only exists as a dict (no store configured) is serialized once and
        cached on the ticket.
        """
        with self._lock:
            ticket = self._tickets[ticket_id]
            if ticket.result_text is None and ticket.result_payload is not None:
                ticket.result_text = json.dumps(ticket.result_payload)
            return ticket.result_text

    def wait(self, ticket_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block until *ticket_id* reaches a terminal state; returns its snapshot.

        Raises :class:`TimeoutError` if the ticket is still live after
        *timeout* seconds.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._condition:
            while True:
                ticket = self._tickets[ticket_id]
                if ticket.state in TERMINAL_STATES:
                    return ticket.snapshot()
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"ticket {ticket_id} still {ticket.state} after {timeout}s"
                        )
                self._condition.wait(timeout=remaining)

    def events_since(
        self, ticket_id: str, cursor: int = 0, timeout: float | None = None
    ) -> tuple[list[ProgressEvent], int, bool]:
        """Events of *ticket_id* from *cursor* on, blocking up to *timeout*.

        Returns ``(events, next_cursor, done)``: *done* is True once the
        ticket is terminal **and** every event has been delivered — the
        signal for an SSE handler to close the stream.  With no new events
        before *timeout*, returns ``([], cursor, done)`` (a heartbeat
        opportunity).
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._condition:
            while True:
                ticket = self._tickets[ticket_id]
                if len(ticket.events) > cursor:
                    events = list(ticket.events[cursor:])
                    next_cursor = len(ticket.events)
                    done = ticket.state in TERMINAL_STATES
                    return events, next_cursor, done
                if ticket.state in TERMINAL_STATES:
                    return [], cursor, True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return [], cursor, False
                self._condition.wait(timeout=remaining)

    def retry_after_hint(self) -> int:
        """Suggested ``Retry-After`` seconds when the scheduler is full.

        A coarse estimate — one second of drain time per queued ticket per
        worker thread, floored at one second — good enough for polite
        clients to back off without a feedback loop of instant retries.
        """
        with self._lock:
            depth = len(self._queue)
            workers = max(1, len(self._threads))
        return max(1, -(-depth // workers))

    def describe(self) -> dict[str, Any]:
        """Aggregate scheduler telemetry (the server's ``/stats`` section)."""
        batcher = getattr(self.engine, "batcher", None)
        with self._lock:
            states: dict[str, int] = {}
            for ticket in self._tickets.values():
                states[ticket.state] = states.get(ticket.state, 0) + 1
            return {
                "workers": self.workers,
                "max_pending": self.max_pending,
                "queued": len(self._queue),
                "queue_depth": len(self._queue),
                "batching": batcher.describe() if batcher is not None else None,
                "tickets": len(self._tickets),
                "states": states,
                "default_timeout": self.default_timeout,
                "shutdown": self._shutdown,
                "replica_id": self.replica_id,
                "draining": self._draining,
                "worker_respawns": self.worker_respawns,
                "leases": {
                    "held": len(self._held_leases),
                    "ttl": self.lease_ttl,
                    "waits": self.lease_waits,
                    "renewals": self.lease_renewals,
                    "store": (
                        self.store.describe()["leases"]
                        if self.store is not None
                        else None
                    ),
                },
                "terminal_retention": {
                    "max_terminal_tickets": self.max_terminal_tickets,
                    "terminal_events_keep": self.terminal_events_keep,
                },
                "gc": {
                    "dropped_tickets": self.gc_dropped_tickets,
                    "truncated_events": self.gc_truncated_events,
                },
            }

    # -- cancellation ------------------------------------------------------------------
    def _cancel_path(self, ticket: Ticket) -> Path:
        """The sentinel file of *ticket* in the shared cancellation registry."""
        if self._cancel_dir is None:
            # No store to anchor the registry: a per-scheduler temp dir.
            self._cancel_dir = Path(tempfile.mkdtemp(prefix="linx-cancel-"))
        return self._cancel_dir / f"{self.replica_id}-{ticket.ticket_id}.cancel"

    def cancel(self, ticket_id: str) -> bool:
        """Request cancellation of *ticket_id*; True when it will take effect.

        Queued tickets cancel immediately.  Running tickets cancel
        cooperatively at the engine's next checkpoint — in process mode the
        request is reached through its sentinel file in the shared
        cancellation registry, which the worker process polls at the same
        checkpoints.  Terminal tickets report False.
        """
        with self._condition:
            ticket = self._tickets[ticket_id]
            if ticket.state == TICKET_QUEUED:
                self._finalise(ticket, TICKET_CANCELLED, "cancelled before start", "RequestCancelledError")
                return True
            if ticket.state == TICKET_RUNNING:
                ticket.cancel_event.set()
                if self.workers == "process":
                    path = self._cancel_path(ticket)
                    path.parent.mkdir(parents=True, exist_ok=True)
                    path.touch()
                return True
            return False

    # -- execution ---------------------------------------------------------------------
    def _worker_main(self) -> None:
        """Run :meth:`_worker_loop`, respawning it if it ever escapes.

        The loop already converts per-ticket failures into ``failed``
        tickets; this wrapper is the backstop for bugs in the loop's own
        bookkeeping — without it, one escaped exception silently shrinks
        the worker pool forever.
        """
        while True:
            try:
                self._worker_loop()
                return  # clean exit: shutdown drained the loop
            except Exception:  # noqa: BLE001 — the pool must survive anything
                with self._condition:
                    if self._shutdown:
                        return
                    self.worker_respawns += 1

    def _worker_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._shutdown:
                    self._condition.wait()
                if self._shutdown and not self._queue:
                    return
                # A queued id may point at a ticket that was cancelled (and
                # possibly even GC-dropped) while waiting its turn.
                ticket = self._tickets.get(self._queue.popleft())
                if ticket is None or ticket.state != TICKET_QUEUED:
                    continue
                ticket.state = TICKET_RUNNING
                ticket.started_at = time.time()
            try:
                self._execute(ticket)
            except Exception as exc:  # noqa: BLE001 — every failure becomes state
                # _execute handles expected failures itself; anything that
                # still escapes (a store driver bug, an injected crash)
                # must neither kill this worker nor wedge the ticket.  The
                # lease goes first: a waiter that observes the terminal
                # state must find the hash reclaimable immediately.
                self._release_lease(ticket)
                self._finalise(
                    ticket,
                    TICKET_FAILED,
                    f"worker error: {exc}",
                    type(exc).__name__,
                    extra={"traceback": traceback.format_exc()},
                )
            finally:
                self._release_lease(ticket)

    def _acquire(self, ticket: Ticket) -> bool:
        """Claim the execution lease for *ticket*; True when we should execute.

        Returns False when the ticket was completed another way (served
        from a sibling replica's stored result, cancelled, timed out, or
        shut down while waiting).  Without a store there is nothing to
        coordinate and execution proceeds immediately.
        """
        if self.store is None:
            return True
        poll = max(0.05, min(0.5, self.lease_ttl / 5.0))
        first = True
        while True:
            # A sibling replica (or a previous run) may have stored this
            # hash already: serve idempotently, never re-execute.
            payload = self.store.get_payload_text(
                self._store_namespace, ticket.request_hash
            )
            if payload is not None:
                with self._condition:
                    # Drop the live mapping *before* finishing: finishing
                    # runs the terminal-ticket GC, and a mapping that
                    # outlives its ticket would crash later duplicate
                    # submits instead of falling through to the store.
                    self._drop_live(ticket)
                    self._finish_from_store(ticket, payload)
                return False
            if self.store.claim(
                self._store_namespace, ticket.request_hash, self.replica_id,
                self.lease_ttl,
            ):
                with self._lock:
                    self._held_leases.add(ticket.request_hash)
                self._journal("execute", ticket)
                return True
            # Another replica holds the lease: wait for its result (or its
            # lease to expire) instead of duplicating the execution.
            if first:
                first = False
                self._record_event(
                    ticket,
                    ProgressEvent(
                        ticket.request.request_id or ticket.ticket_id,
                        EVENT_REQUEST_STARTED,
                        "",
                        {"waiting_on_lease": True},
                    ),
                )
            with self._lock:
                self.lease_waits += 1
            if ticket.cancel_event.is_set():
                self._finalise(
                    ticket, TICKET_CANCELLED,
                    "cancelled while waiting on another replica's lease",
                    "RequestCancelledError",
                )
                return False
            if (
                ticket.timeout is not None
                and ticket.started_at is not None
                and time.time() - ticket.started_at > ticket.timeout
            ):
                self._finalise(
                    ticket, TICKET_CANCELLED,
                    str(RequestTimeoutError(ticket.request.request_id, ticket.timeout)),
                    "RequestTimeoutError",
                )
                return False
            with self._condition:
                if self._shutdown:
                    self._finalise(
                        ticket, TICKET_CANCELLED, "scheduler shut down",
                        "RequestCancelledError",
                    )
                    return False
                self._condition.wait(timeout=poll)

    def _release_lease(self, ticket: Ticket) -> None:
        """Release *ticket*'s execution lease if this replica holds it."""
        if self.store is None:
            return
        with self._lock:
            if ticket.request_hash not in self._held_leases:
                return
            self._held_leases.discard(ticket.request_hash)
        try:
            self.store.release(
                self._store_namespace, ticket.request_hash, self.replica_id
            )
        except Exception:  # noqa: BLE001 — release is best-effort; expiry covers us
            pass

    def _journal(self, action: str, ticket: Ticket) -> None:
        """Append an execution-journal line (exactly-once audit evidence)."""
        if self._journal_path is None:
            return
        line = json.dumps(
            {
                "action": action,
                "request_hash": ticket.request_hash,
                "replica": self.replica_id,
                "ticket": ticket.ticket_id,
                "at": time.time(),
            }
        )
        try:
            with open(self._journal_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:  # pragma: no cover - journal is observability, not control
            pass

    def _execute(self, ticket: Ticket) -> None:
        if not self._acquire(ticket):
            return
        try:
            if self.workers == "thread":
                result = self.engine.explore(
                    ticket.request,
                    observer=lambda event: self._record_event(ticket, event),
                    timeout=ticket.timeout,
                    cancel_event=ticket.cancel_event,
                    _label=ticket.ticket_id,
                )
                payload = result.to_dict()
            else:
                cancel_path = self._cancel_path(ticket)
                if ticket.cancel_event.is_set():
                    # Cancelled between claim and dispatch: plant the
                    # sentinel so the worker stops at its first checkpoint.
                    cancel_path.parent.mkdir(parents=True, exist_ok=True)
                    cancel_path.touch()
                try:
                    future = self._pool.submit(
                        _process_worker,
                        ticket.request.to_dict(),
                        self.engine.worker_spec(),
                        ticket.ticket_id,
                        self._progress_queue,
                        ticket.timeout,
                        str(cancel_path),
                    )
                    payload = future.result()
                finally:
                    try:
                        cancel_path.unlink()
                    except OSError:
                        pass
                result = ExploreResult.from_dict(payload)
                # The worker's events travel asynchronously through the
                # manager queue; wait for its terminal request_finished to
                # be routed before the ticket turns terminal, so an SSE
                # stream never closes with the event tail undelivered.
                self._await_terminal_event(ticket)
        except RequestCancelledError as exc:
            self._release_lease(ticket)
            self._finalise(ticket, TICKET_CANCELLED, str(exc), type(exc).__name__)
            return
        except Exception as exc:  # noqa: BLE001 — every failure becomes a ticket state
            # Release before the terminal snapshot becomes visible: a
            # caller that observes "failed" must be able to resubmit and
            # reclaim the hash without waiting out the lease TTL.
            self._release_lease(ticket)
            self._finalise(ticket, TICKET_FAILED, str(exc), type(exc).__name__)
            return
        payload_text: Optional[str] = None
        if self.store is not None:
            # Serialize once: this text is the store row, the ticket's
            # servable result AND the lease release, in one transaction.
            payload_text = json.dumps(payload)
            try:
                released = self.store.commit_result(
                    self._store_namespace,
                    ticket.request_hash,
                    payload_text,
                    request_id=str(result.request.get("request_id", "")),
                    dataset=result.dataset_name,
                    replica_id=self.replica_id,
                )
            except Exception as exc:  # noqa: BLE001
                self._release_lease(ticket)
                self._finalise(
                    ticket, TICKET_FAILED, f"result store write failed: {exc}",
                    type(exc).__name__,
                )
                return
            if released:
                # The commit transaction already dropped the lease row;
                # deregister so the worker loop's release is a no-op.
                with self._lock:
                    self._held_leases.discard(ticket.request_hash)
            self._journal("commit", ticket)
        with self._condition:
            ticket.state = TICKET_DONE
            ticket.finished_at = time.time()
            ticket.result_payload = payload
            ticket.result_text = payload_text
            self._drop_live(ticket)
            self._gc_terminal()
            self._condition.notify_all()

    def _await_terminal_event(self, ticket: Ticket, timeout: float = 30.0) -> None:
        """Block until a terminal event has been routed onto *ticket*.

        Bounded: if the drainer died or the queue broke, proceed after
        *timeout* rather than wedge the worker thread — consumers then see
        a terminal ticket with a truncated event log, which is the
        degraded-but-safe outcome.
        """
        deadline = time.monotonic() + timeout
        with self._condition:
            while not any(event.kind in TERMINAL_EVENTS for event in ticket.events):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                self._condition.wait(timeout=remaining)

    def _finalise(
        self,
        ticket: Ticket,
        state: str,
        error: str,
        error_kind: str,
        extra: Optional[dict[str, Any]] = None,
    ) -> None:
        """Move *ticket* to a non-done terminal state with a closing event.

        *extra* merges additional detail (e.g. a worker traceback) into the
        terminal event's payload.
        """
        kind = (
            EVENT_REQUEST_CANCELLED if state == TICKET_CANCELLED else EVENT_REQUEST_FAILED
        )
        label = ticket.request.request_id or ticket.ticket_id
        payload: dict[str, Any] = {"error": error}
        if extra:
            payload.update(extra)
        with self._condition:
            if ticket.state in TERMINAL_STATES:
                return  # already finalised on another path
            ticket.state = state
            ticket.finished_at = time.time()
            ticket.error = error
            ticket.error_kind = error_kind
            ticket.events.append(ProgressEvent(label, kind, "", payload))
            self._drop_live(ticket)
            self._gc_terminal()
            self._condition.notify_all()

    def _drop_live(self, ticket: Ticket) -> None:
        """Remove *ticket*'s live-hash mapping iff it still owns it.

        A hash can be re-submitted (new ticket) while an older ticket for
        the same hash is finishing on the cancellation path; popping
        unconditionally would orphan the newer live ticket's dedup entry.
        """
        if self._live_by_hash.get(ticket.request_hash) == ticket.ticket_id:
            self._live_by_hash.pop(ticket.request_hash, None)

    def _gc_terminal(self) -> None:
        """Enforce terminal-ticket retention (caller holds the lock).

        Terminal tickets sorted newest-finished-first: everything past the
        ``terminal_events_keep`` newest has its event log truncated to the
        terminal tail, and everything past ``max_terminal_tickets`` is
        dropped from the table.  Only *older* tickets are touched — a
        just-finished ticket's live SSE readers keep their full log, and a
        reader of a truncated ticket sees a clean early close (its cursor
        now points past the shortened log, which ``events_since`` reports
        as done) rather than an error.
        """
        terminal = [
            ticket
            for ticket in self._tickets.values()
            if ticket.state in TERMINAL_STATES
        ]
        if len(terminal) <= min(self.terminal_events_keep, self.max_terminal_tickets):
            return
        terminal.sort(key=lambda ticket: ticket.finished_at or 0.0, reverse=True)
        for ticket in terminal[self.terminal_events_keep :]:
            if len(ticket.events) > 1:
                self.gc_truncated_events += len(ticket.events) - 1
                del ticket.events[:-1]
        for ticket in terminal[self.max_terminal_tickets :]:
            self._tickets.pop(ticket.ticket_id, None)
            self.gc_dropped_tickets += 1

    def _record_event(self, ticket: Ticket, event: ProgressEvent) -> None:
        with self._condition:
            ticket.events.append(event)
            self._condition.notify_all()

    def _route_event(self, label: str, event: ProgressEvent) -> None:
        """Route a process-worker event to its ticket (drainer thread)."""
        with self._condition:
            ticket = self._tickets.get(label)
            if ticket is not None:
                ticket.events.append(event)
                self._condition.notify_all()

    # -- lease heartbeat ---------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        """Renew every held lease each interval (daemon thread, best-effort).

        A replica that stops heartbeating — crashed, or fault-injected at
        :data:`~repro.reliability.SITE_HEARTBEAT` — loses its leases after
        ``lease_ttl`` and a sibling takes over; a healthy replica renews at
        a third of the TTL, so it never loses one mid-execution.
        """
        while not self._heartbeat_stop.wait(self.heartbeat_interval):
            try:
                fault_point(SITE_HEARTBEAT)
                with self._lock:
                    held = list(self._held_leases)
                if not held:
                    continue
                # One batched UPDATE per store shard instead of a write
                # transaction per lease: a replica holding many leases
                # renews them all in at most num_shards statements.
                renewed = self.store.renew_many(
                    self._store_namespace, held, self.replica_id, self.lease_ttl
                )
                if renewed:
                    with self._lock:
                        self.lease_renewals += renewed
            except Exception:  # noqa: BLE001 — a failed beat must not kill the thread
                continue

    # -- graceful drain ----------------------------------------------------------------
    def drain(self) -> None:
        """Stop accepting new work while in-flight requests finish.

        The SIGTERM half-measure between "serving" and :meth:`shutdown`:
        :meth:`submit` starts raising
        :class:`~repro.engine.errors.SchedulerDrainingError` (HTTP 503
        upstream, so load balancers fail over), running tickets complete
        normally (committing their results and releasing their leases),
        and ``/healthz`` reports ``draining``.
        """
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    def health(self) -> dict[str, Any]:
        """The liveness + readiness payload behind the server's ``/healthz``.

        With a store, includes one row per store shard (entries, live
        leases, write retries) so per-file contention is visible from the
        health probe, not just from ``/stats``.
        """
        with self._lock:
            payload = {
                "status": "draining" if (self._draining or self._shutdown) else "ok",
                "replica_id": self.replica_id,
                "leases_held": len(self._held_leases),
                "queue_depth": len(self._queue),
            }
        if self.store is not None:
            payload["store_shards"] = self.store.shard_stats()
        return payload

    # -- lifecycle ---------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, cancel queued tickets, stop the workers.

        Running requests finish (``wait=True`` blocks for them); queued
        tickets move to ``cancelled``.  Held leases are released, the
        heartbeat stops, and the engine's write-behind cache tier is
        flushed — the graceful-termination endgame.
        """
        with self._condition:
            if self._shutdown:
                return
            self._draining = True
            self._shutdown = True
            for ticket_id in list(self._queue):
                ticket = self._tickets[ticket_id]
                if ticket.state == TICKET_QUEUED:
                    self._finalise(
                        ticket, TICKET_CANCELLED, "scheduler shut down",
                        "RequestCancelledError",
                    )
            self._queue.clear()
            self._condition.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=300)
        self._heartbeat_stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=30)
        if self.store is not None:
            # Anything still registered (a worker that died hard) is
            # released here; siblings would recover via expiry regardless.
            try:
                self.store.release_all(self.replica_id)
            except Exception:  # noqa: BLE001 — expiry is the backstop
                pass
            with self._lock:
                self._held_leases.clear()
        if isinstance(getattr(self.engine, "cache", None), TieredExecutionCache):
            # Flush the write-behind buffer so the next replica (or the
            # next start of this one) sees everything this one executed.
            try:
                self.engine.cache.flush()
            except Exception:  # noqa: BLE001 — flush degradation is logged downstream
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self._progress_queue is not None:
            self._progress_queue.put(None)
            if self._drainer is not None:
                self._drainer.join(timeout=30)
        if self._manager is not None:
            self._manager.shutdown()

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
