"""Serving-tier smoke check: the full HTTP path, end to end.

Run by CI (``python -m repro.engine.serve_smoke``) to catch wiring
regressions across the serving stack: it boots the asyncio HTTP server on
an ephemeral port (scheduler + sqlite result store + engine), submits a
2-request batch over HTTP, follows each request's SSE event stream to
completion, and asserts that

* both requests complete with episode-level progress events observed on
  the wire (``event: episode`` frames, not just request granularity),
* both result payloads parse back losslessly
  (``from_dict(json.loads(...))`` round-trips),
* resubmitting the first request verbatim is served from the result store
  — same JSON, no re-execution — and its SSE stream closes immediately,
* stage selection by registry name works over the wire
  (``stages={"session_generator": "atena"}``).
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro.cdrl.agent import CdrlConfig

from .core import LinxEngine
from .request import ExploreRequest
from .result import ExploreResult
from .scheduler import RequestScheduler
from .server import ServerThread
from .store import ResultStore

SMOKE_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),count,.*]
A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),count,.*]
"""


def _call(
    port: int, method: str, path: str, body: dict[str, Any] | None = None
) -> tuple[int, dict[str, Any]]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(
            method, path, body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _stream_events(port: int, ticket: str, timeout: float = 300.0) -> list[dict[str, Any]]:
    """Consume the ticket's SSE stream until the server closes it."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    events: list[dict[str, Any]] = []
    try:
        connection.request("GET", f"/requests/{ticket}/events")
        response = connection.getresponse()
        assert response.status == 200, f"SSE stream returned {response.status}"
        kind = None
        while True:
            raw = response.readline()
            if not raw:
                break  # server closed the stream
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event:"):
                kind = line.split(":", 1)[1].strip()
            elif line.startswith("data:"):
                payload = json.loads(line.split(":", 1)[1].strip())
                assert payload["kind"] == kind, "SSE event/data kind mismatch"
                events.append(payload)
    finally:
        connection.close()
    return events


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="linx-serve-smoke-") as tmp:
        store = ResultStore(Path(tmp) / "results.sqlite")
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=12))
        scheduler = RequestScheduler(engine, store=store, max_workers=2)
        requests = [
            ExploreRequest(
                goal="Find a country with different viewing habits than the rest of the world",
                dataset="netflix",
                num_rows=300,
                ldx_text=SMOKE_LDX,
                seed=0,
                request_id="smoke-cdrl",
            ),
            ExploreRequest(
                goal="Characterise the catalogue",
                dataset="netflix",
                num_rows=300,
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
                episodes=10,
                seed=1,
                stages={"session_generator": "atena"},
                request_id="smoke-atena",
            ),
        ]
        try:
            with ServerThread(scheduler) as hosted:
                port = hosted.port
                status, health = _call(port, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                status, stages = _call(port, "GET", "/stages")
                assert "atena" in stages["stages"]["session_generator"]

                # -- submit the batch over HTTP ---------------------------------
                tickets = []
                for request in requests:
                    status, submitted = _call(port, "POST", "/requests", request.to_dict())
                    assert status == 202, f"submit returned {status}: {submitted}"
                    assert submitted["state"] in ("queued", "running")
                    tickets.append(submitted["ticket"])

                # -- follow both SSE streams to completion ----------------------
                results = []
                for request, ticket in zip(requests, tickets):
                    events = _stream_events(port, ticket)
                    kinds = [event["kind"] for event in events]
                    assert kinds[0] == "request_started", kinds
                    assert kinds[-1] == "request_finished", kinds
                    assert "episode" in kinds, "no episode-level progress on the wire"
                    assert all(
                        event["request_id"] == request.request_id for event in events
                    )
                    status, payload = _call(port, "GET", f"/requests/{ticket}/result")
                    assert status == 200, f"result returned {status}: {payload}"
                    assert payload["served_from_store"] is False
                    restored = ExploreResult.from_dict(
                        json.loads(json.dumps(payload["result"]))
                    )
                    assert restored.to_dict() == payload["result"], "lossy round-trip"
                    assert restored.operations, "empty session"
                    results.append(payload["result"])
                assert results[1]["stage_names"]["session_generator"] == "atena"

                # -- identical resubmission is served from the store ------------
                status, resubmitted = _call(port, "POST", "/requests", requests[0].to_dict())
                assert status == 202
                assert resubmitted["served_from_store"] is True, resubmitted
                assert resubmitted["state"] == "done"
                replay_ticket = resubmitted["ticket"]
                replay_events = _stream_events(port, replay_ticket)
                assert [event["kind"] for event in replay_events] == [
                    "request_started",
                    "request_finished",
                ]
                status, replay = _call(port, "GET", f"/requests/{replay_ticket}/result")
                assert status == 200 and replay["served_from_store"] is True
                assert replay["result"] == results[0], "store replay changed the payload"

                status, stats = _call(port, "GET", "/stats")
                assert stats["store"]["writes"] == 2
                assert stats["store"]["hits"] >= 1
                engine_cache = stats["engine_cache"]
                assert "plan_entries" in engine_cache, engine_cache
                assert "plan_hits" in engine_cache, engine_cache
                for result in results:
                    cache_stats = result["cache_stats"]
                    assert "plan_hits" in cache_stats, cache_stats
                    assert "plan_hit_rate" in cache_stats, cache_stats
                    assert "fusion_count" in cache_stats, cache_stats
                print("serve smoke ok:")
                for request, result in zip(requests, results):
                    print(
                        f"  {request.request_id}: generator="
                        f"{result['stage_names']['session_generator']}, "
                        f"operations={len(result['operations'])}, "
                        f"compliant={result['fully_compliant']}, "
                        f"plan_hit_rate={result['cache_stats']['plan_hit_rate']}"
                    )
                print(f"  store: {stats['store']}")
                print(f"  scheduler: {stats['scheduler']['states']}")
                print(
                    "  engine cache: "
                    f"plan_entries={engine_cache['plan_entries']}, "
                    f"plan_hits={engine_cache['plan_hits']}, "
                    f"fusions={engine_cache['fusion_count']}"
                )
        finally:
            scheduler.shutdown()
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
