"""Engine smoke check: a tiny batch through the full service API.

Run by CI (``python -m repro.engine.smoke``) to catch wiring regressions in
the service layer: it executes a 2-request :meth:`LinxEngine.explore_many`
batch on a small dataset — one request with an explicit LDX specification,
one through NL derivation — and asserts that

* both requests complete with a generated session,
* serialized results parse back losslessly
  (``from_dict(json.loads(json.dumps(to_dict())))``), and
* the shared execution cache was actually exercised.
"""

from __future__ import annotations

import json
import sys

from repro.cdrl.agent import CdrlConfig

from .core import LinxEngine
from .request import ExploreRequest
from .result import ExploreResult

SMOKE_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),count,.*]
A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),count,.*]
"""


def main() -> int:
    engine = LinxEngine(cdrl_config=CdrlConfig(episodes=12))
    requests = [
        ExploreRequest(
            goal="Find a country with different viewing habits than the rest of the world",
            dataset="netflix",
            num_rows=300,
            ldx_text=SMOKE_LDX,
            seed=0,
            request_id="smoke-explicit-ldx",
        ),
        ExploreRequest(
            goal="Find a country with different viewing habits than the rest of the world",
            dataset="netflix",
            num_rows=300,
            episodes=12,
            seed=1,
            request_id="smoke-derived-ldx",
        ),
    ]
    results = engine.explore_many(requests, max_workers=2)
    assert len(results) == len(requests)
    for result in results:
        assert result.operations, f"{result.request['request_id']}: empty session"
        assert result.notebook_markdown, "notebook rendering failed"
        payload = json.dumps(result.to_dict())
        restored = ExploreResult.from_dict(json.loads(payload))
        assert restored == result, "serialized result did not round-trip"
        assert restored.to_dict() == result.to_dict(), "round-trip changed the payload"
    stats = engine.cache_stats()
    assert stats["hits"] + stats["misses"] > 0, "shared cache never exercised"
    print("engine smoke ok:")
    for result in results:
        print(
            f"  {result.request['request_id']}: "
            f"queries={len([op for op in result.operations if op[0] != 'B'])}, "
            f"compliant={result.fully_compliant}, "
            f"fallback={result.derivation_fallback}, "
            f"cache={result.cache_stats}"
        )
    print(f"  engine cache: {stats}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
