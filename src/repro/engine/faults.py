"""Deterministic fault-injection harness for the serving tier.

The serving tier's fault-tolerance claims — exactly-once execution under
replica crashes, lease takeover, retry-under-contention, cooperative
recovery from hung stages, torn-write resilience — are *proved* the same
way the performance tiers prove their speedups: with a deterministic
harness and always-on gates, not by inspection.  This module is that
harness's engine-facing surface.

A :class:`FaultPlan` scripts faults against named **sites** threaded
through the store, scheduler, disk cache and engine seams::

    from repro.engine.faults import FaultPlan, install_plan, clear_plan

    install_plan(FaultPlan.crash_before_commit())
    try:
        ticket = scheduler.submit(request)        # executes, then "crashes"
        scheduler.wait(ticket.ticket_id)          # -> failed, nothing stored
    finally:
        clear_plan()
    scheduler.submit(request)                     # recovers: re-executes, stores once

The five scripted plans mirror the real failure modes of a multi-replica
deployment:

=============================  ========================================================
plan                           what it simulates
=============================  ========================================================
``crash_after_claim()``        a replica dies the instant its lease commits (the
                               lease is held by a corpse; only expiry-based
                               takeover recovers it) — pass ``exit_code=`` to
                               hard-kill a subprocess replica for real
``crash_before_commit()``      a replica dies after executing but before the
                               result-store commit (the work is lost and must be
                               re-executed exactly once)
``sqlite_busy()``              a ``database is locked`` storm under multi-replica
                               write contention (every sqlite writer must degrade
                               to bounded retry, not request failure)
``hung_stage()``               a stage stops making progress (the per-request
                               deadline must cut it loose at the next checkpoint)
``torn_cache_write()``         a half-written disk-cache payload (reads must treat
                               it as a miss and repair, never crash or mis-serve)
=============================  ========================================================

Everything is re-exported from :mod:`repro.reliability` (stdlib-only, so
:mod:`repro.explore.diskcache` can share the same seams without an import
cycle); plans serialize to JSON and install through the
:data:`~repro.reliability.FAULT_PLAN_ENV` environment variable so
subprocess replicas — ``python -m repro.engine.serve_cluster`` — inherit
their scripted crashes at import time.
"""

from __future__ import annotations

from repro.reliability import (  # noqa: F401 — the harness surface
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    KIND_BUSY,
    KIND_CRASH,
    KIND_HANG,
    KIND_TORN,
    SITE_CACHE_PAYLOAD,
    SITE_CACHE_WRITE,
    SITE_CHECKPOINT,
    SITE_CLAIM_ACQUIRED,
    SITE_HEARTBEAT,
    SITE_STORE_COMMIT,
    SITE_STORE_WRITE,
    FaultPlan,
    FaultSpec,
    FileCancelEvent,
    InjectedFaultError,
    active_plan,
    clear_plan,
    fault_point,
    install_plan,
    is_transient_sqlite_error,
    open_sqlite_verified,
    quarantine_sqlite,
    retry_sqlite,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "KIND_BUSY",
    "KIND_CRASH",
    "KIND_HANG",
    "KIND_TORN",
    "SITE_CACHE_PAYLOAD",
    "SITE_CACHE_WRITE",
    "SITE_CHECKPOINT",
    "SITE_CLAIM_ACQUIRED",
    "SITE_HEARTBEAT",
    "SITE_STORE_COMMIT",
    "SITE_STORE_WRITE",
    "FaultPlan",
    "FaultSpec",
    "FileCancelEvent",
    "InjectedFaultError",
    "active_plan",
    "clear_plan",
    "fault_point",
    "install_plan",
    "is_transient_sqlite_error",
    "open_sqlite_verified",
    "quarantine_sqlite",
    "retry_sqlite",
]
