"""Asyncio HTTP front-end for the LINX serving tier (stdlib only).

Exposes a :class:`~repro.engine.scheduler.RequestScheduler` over a small
HTTP/1.1 surface so any client that speaks JSON can submit declarative
:class:`~repro.engine.request.ExploreRequest` payloads and follow their
progress live:

==========  =================================  ========================================
method      path                               behaviour
==========  =================================  ========================================
``POST``    ``/requests``                      submit a request body; 202 + ticket
``GET``     ``/requests/<ticket>``             lifecycle status snapshot
``GET``     ``/requests/<ticket>/result``      200 result JSON when ``done``;
                                               202 while live, 409 failed/cancelled
``GET``     ``/requests/<ticket>/events``      Server-Sent Events: replay + follow
``POST``    ``/requests/<ticket>/cancel``      cooperative cancellation
``GET``     ``/stages``                        the stage registry (names per kind)
``GET``     ``/stats``                         scheduler / store / cache telemetry
``GET``     ``/healthz``                       liveness + readiness probe
==========  =================================  ========================================

``/healthz`` reports ``{"status": "ok"|"draining", "leases_held": N,
"queue_depth": N}``: load balancers route away from a draining replica
while its in-flight requests finish.  ``POST /requests`` on a draining
replica returns 503, and running ``python -m repro.engine.server``
handles SIGTERM as a graceful drain (stop accepting, finish or release
in-flight leases, flush the write-behind cache) before exiting.

The SSE stream emits each :class:`~repro.engine.events.ProgressEvent` as
``event: <kind>`` + ``data: <json>``, with the scheduler's synthesized
``request_finished`` / ``request_failed`` / ``request_cancelled`` closing
the stream, so ``curl -N .../events`` renders a live training ticker.

The engine's pipeline is synchronous, CPU-bound work; the asyncio loop
never runs it.  The scheduler's worker threads (or processes) do, and the
HTTP handlers only touch the scheduler's lock-guarded bookkeeping —
blocking waits (SSE follow) hop onto the default executor via
``asyncio.to_thread`` so slow consumers cannot stall the accept loop.

Run standalone::

    python -m repro.engine.server --port 8765 --episodes 40 \
        --store /tmp/linx/results.sqlite --disk-cache /tmp/linx/cache.sqlite
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import threading
from typing import Any, Optional

from .core import LinxEngine
from .errors import (
    EngineError,
    RequestValidationError,
    SchedulerDrainingError,
    SchedulerFullError,
)
from .events import event_to_dict
from .request import ExploreRequest
from .scheduler import (
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_FAILED,
    RequestScheduler,
)
from .store import ResultStore

#: Upper bound on accepted request bodies (a declarative request is tiny).
MAX_BODY_BYTES = 1 << 20

#: How long one SSE poll blocks before emitting a heartbeat comment.
SSE_POLL_SECONDS = 2.0

_JSON = {"Content-Type": "application/json"}
_SSE = {
    "Content-Type": "text/event-stream",
    "Cache-Control": "no-cache",
    "Connection": "close",
}

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class LinxHttpServer:
    """The asyncio HTTP server in front of one scheduler."""

    def __init__(
        self,
        scheduler: RequestScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ---------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader, writer)
                if method is None:
                    return
                await self._dispatch(method, path, body, writer)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-exchange
            except Exception as exc:  # noqa: BLE001 — one bad request must not kill the server
                try:
                    await self._respond(
                        writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                except Exception:
                    pass
            finally:
                try:
                    writer.close()
                    await writer.wait_closed()
                except Exception:
                    pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection tasks; absorbing
            # the cancellation here keeps the handler task from logging a
            # "Task exception was never retrieved" traceback on close.
            pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[Optional[str], str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            return None, "", b""
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return None, "", b""
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1
                if content_length < 0:
                    await self._respond(writer, 400, {"error": "bad Content-Length"})
                    return None, "", b""
        if content_length > MAX_BODY_BYTES:
            await self._respond(writer, 413, {"error": "request body too large"})
            return None, "", b""
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # -- routing -----------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        segments = [segment for segment in path.split("/") if segment]
        # Resolve the path to its method table first, so a known path with
        # the wrong verb gets a 405 instead of a misleading 404.
        handlers: dict[str, Any] = {}
        if path == "/healthz":
            handlers["GET"] = lambda: self._respond(
                writer, 200, self.scheduler.health()
            )
        elif path == "/stats":
            handlers["GET"] = lambda: self._respond(writer, 200, self._stats())
        elif path == "/stages":
            handlers["GET"] = lambda: self._respond(
                writer, 200, {"stages": self.scheduler.engine.registry.describe()}
            )
        elif path == "/requests":
            handlers["POST"] = lambda: self._submit(body, writer)
        elif len(segments) == 2 and segments[0] == "requests":
            handlers["GET"] = lambda: self._status(segments[1], writer)
        elif len(segments) == 3 and segments[0] == "requests":
            if segments[2] == "result":
                handlers["GET"] = lambda: self._result(segments[1], writer)
            elif segments[2] == "events":
                handlers["GET"] = lambda: self._events(segments[1], writer)
            elif segments[2] == "cancel":
                handlers["POST"] = lambda: self._cancel(segments[1], writer)
        try:
            if not handlers:
                await self._respond(writer, 404, {"error": f"no route {path}"})
            elif method not in handlers:
                await self._respond(
                    writer,
                    405,
                    {"error": f"{method} not allowed on {path}; allowed: "
                              f"{sorted(handlers)}"},
                )
            else:
                await handlers[method]()
        except KeyError:
            await self._respond(writer, 404, {"error": "unknown ticket"})

    # -- endpoints ---------------------------------------------------------------------
    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"invalid JSON body: {exc}"})
            return
        try:
            request = ExploreRequest.from_dict(payload)
            # submit() takes the scheduler lock and may read the result
            # store (sqlite + JSON parse); keep it off the event loop so a
            # store commit in a worker thread never stalls other clients.
            ticket = await asyncio.to_thread(self.scheduler.submit, request)
        except RequestValidationError as exc:
            await self._respond(writer, 400, exc.to_dict())
            return
        except SchedulerDrainingError as exc:
            # Graceful shutdown in progress: this replica accepts no new
            # work; 503 tells load balancers to fail over to a sibling.
            await self._respond(writer, 503, {"error": str(exc)})
            return
        except SchedulerFullError as exc:
            # Back-pressure with a drain estimate: polite clients honour
            # Retry-After instead of hammering a saturated queue.
            await self._respond(
                writer,
                429,
                {"error": str(exc)},
                extra_headers={"Retry-After": str(self.scheduler.retry_after_hint())},
            )
            return
        except EngineError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        # Respond with the acceptance-time snapshot, not the live state: a
        # fast worker may have finished the request already, and a fresh
        # submission must report "queued", never race to "done".
        await self._respond(
            writer,
            202,
            ticket.submit_snapshot or self.scheduler.status(ticket.ticket_id),
        )

    async def _status(self, ticket_id: str, writer: asyncio.StreamWriter) -> None:
        await self._respond(writer, 200, self.scheduler.status(ticket_id))

    async def _result(self, ticket_id: str, writer: asyncio.StreamWriter) -> None:
        snapshot = self.scheduler.status(ticket_id)
        if snapshot["state"] == TICKET_DONE:
            # Splice the stored wire-format text straight into the response
            # envelope: a result served from the store (or just committed)
            # is never parsed and re-dumped on its way out.
            result_text = self.scheduler.result_text(ticket_id) or "null"
            head = json.dumps(
                {
                    "ticket": ticket_id,
                    "served_from_store": snapshot["served_from_store"],
                }
            )
            envelope = f'{head[:-1]}, "result": {result_text}}}'
            await self._respond_raw(writer, 200, envelope.encode("utf-8"))
        elif snapshot["state"] in (TICKET_FAILED, TICKET_CANCELLED):
            await self._respond(writer, 409, snapshot)
        else:
            await self._respond(writer, 202, snapshot)

    async def _cancel(self, ticket_id: str, writer: asyncio.StreamWriter) -> None:
        effective = self.scheduler.cancel(ticket_id)
        payload = self.scheduler.status(ticket_id)
        payload["cancel_effective"] = effective
        await self._respond(writer, 202, payload)

    async def _events(self, ticket_id: str, writer: asyncio.StreamWriter) -> None:
        self.scheduler.status(ticket_id)  # 404 (KeyError) before headers go out
        writer.write(_head(200, _SSE))
        await writer.drain()
        cursor = 0
        while True:
            # The blocking condition-wait happens off-loop so one slow SSE
            # consumer never stalls other connections.
            events, cursor, done = await asyncio.to_thread(
                self.scheduler.events_since, ticket_id, cursor, SSE_POLL_SECONDS
            )
            for event in events:
                data = json.dumps(event_to_dict(event))
                writer.write(f"event: {event.kind}\ndata: {data}\n\n".encode("utf-8"))
            if not events:
                writer.write(b": heartbeat\n\n")
            await writer.drain()
            if done:
                return

    # -- helpers -----------------------------------------------------------------------
    def _stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "scheduler": self.scheduler.describe(),
            "engine_cache": self.scheduler.engine.cache_stats(),
        }
        if self.scheduler.store is not None:
            stats["store"] = self.scheduler.store.describe()
        policy_registry = getattr(self.scheduler.engine, "policy_registry", None)
        if policy_registry is not None:
            stats["policy_registry"] = policy_registry.describe()
        return stats

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        await self._respond_raw(
            writer, status, json.dumps(payload).encode("utf-8"), extra_headers
        )

    async def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        """Send pre-serialized JSON *body* (the zero-parse result path)."""
        headers = dict(_JSON)
        if extra_headers:
            headers.update(extra_headers)
        headers["Content-Length"] = str(len(body))
        headers["Connection"] = "close"
        writer.write(_head(status, headers) + body)
        await writer.drain()


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


# -- in-process hosting --------------------------------------------------------------
class ServerThread:
    """Host a :class:`LinxHttpServer` on a background thread.

    For tests, the smoke check and notebook-style clients: the asyncio loop
    runs on its own daemon thread, :meth:`start` returns once the port is
    bound, :meth:`stop` tears the loop down.
    """

    def __init__(self, scheduler: RequestScheduler, *, host: str = "127.0.0.1", port: int = 0):
        self.server = LinxHttpServer(scheduler, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True, name="linx-http")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("HTTP server failed to start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            try:
                await self.server.serve_forever()
            except asyncio.CancelledError:
                pass

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None:
            return

        def shutdown() -> None:
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(shutdown)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- CLI ------------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.server",
        description="Serve the LINX engine over HTTP (submit/status/result/SSE events).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--episodes", type=int, default=150, help="default CDRL episode budget"
    )
    parser.add_argument(
        "--store", default=None, help="sqlite result store path (idempotent serving)"
    )
    parser.add_argument(
        "--disk-cache", default=None, help="sqlite execution-cache tier path"
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="sqlite shard count for the result store and disk cache "
             "(keys stripe over this many WAL files; 1 = legacy single file)",
    )
    parser.add_argument(
        "--policy-registry",
        default=None,
        help="sqlite policy registry path; serves its policies as "
             "cdrl:<name>-v<N> session-generator stages",
    )
    parser.add_argument(
        "--workers",
        choices=("thread", "process"),
        default="thread",
        help="request execution mode",
    )
    parser.add_argument("--max-workers", type=int, default=2)
    parser.add_argument("--queue-size", type=int, default=64)
    parser.add_argument(
        "--timeout", type=float, default=None, help="default per-request timeout (s)"
    )
    parser.add_argument(
        "--batching",
        action="store_true",
        help="coalesce concurrent requests' policy forwards into shared "
             "inference waves (bit-identical results, higher throughput; "
             "thread workers only)",
    )
    parser.add_argument(
        "--batch-linger-ms",
        type=float,
        default=2.0,
        help="straggler window before an under-full wave fires",
    )
    parser.add_argument(
        "--max-batch-size", type=int, default=64, help="row cap per inference wave"
    )
    parser.add_argument(
        "--replica-id",
        default=None,
        help="this server's identity in the shared store's lease table "
             "(defaults to a per-process unique id)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a claimed execution lease survives without heartbeat "
             "renewal (crashed replicas lose theirs after this long)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.cdrl.agent import CdrlConfig

    engine = LinxEngine(
        cdrl_config=CdrlConfig(episodes=args.episodes),
        disk_cache_path=args.disk_cache,
        disk_cache_shards=args.num_shards,
        policy_registry_path=args.policy_registry,
        inference_batching=args.batching,
        batch_linger_ms=args.batch_linger_ms,
        max_batch_size=args.max_batch_size,
    )
    store = (
        ResultStore(args.store, num_shards=args.num_shards) if args.store else None
    )
    scheduler = RequestScheduler(
        engine,
        store=store,
        max_pending=args.queue_size,
        max_workers=args.max_workers,
        workers=args.workers,
        default_timeout=args.timeout,
        replica_id=args.replica_id,
        lease_ttl=args.lease_ttl,
    )
    server = LinxHttpServer(scheduler, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        # SIGTERM drains gracefully: stop accepting (503), let in-flight
        # requests finish (committing results, releasing leases), flush the
        # write-behind cache in scheduler.shutdown(), then exit.  SIGINT
        # (Ctrl-C) keeps its default KeyboardInterrupt path.
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _drain() -> None:
            scheduler.drain()
            stop.set()

        try:
            loop.add_signal_handler(signal.SIGTERM, _drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
        print(f"linx engine serving on http://{server.host}:{server.port}")
        print(f"  workers={args.workers} x{args.max_workers}, queue={args.queue_size}")
        print(f"  replica: {scheduler.replica_id} (lease ttl {args.lease_ttl:g}s)")
        if store is not None:
            print(f"  result store: {store.path} ({store.num_shards} shard(s))")
        if engine.policy_registry is not None:
            print(f"  policy registry: {args.policy_registry} "
                  f"({len(engine.policy_registry)} artifacts)")
        serve = asyncio.ensure_future(server.serve_forever())
        drained = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serve, drained}, return_when=asyncio.FIRST_COMPLETED)
        serve.cancel()
        await server.stop()

    try:
        asyncio.run(run())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        scheduler.shutdown()
        engine.close()
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
