"""Continuous cross-request inference batching for the serving tier.

The scheduler executes each request on its own worker thread, so N
concurrent CDRL requests historically ran N independent episode loops and
issued N separate policy forwards per step.  The pieces here fuse them —
the continuous-batching shape of modern inference servers, adapted to
request-private policy *networks*:

:class:`InferenceBatcher`
    A wave thread that request workers submit observation rows to
    (blocking on per-row results) and that coalesces whatever is pending —
    up to a row cap, with a short linger window as the straggler fallback —
    into **one** stacked forward per step.  Each request trains its own
    :class:`~repro.rl.network.MultiHeadPolicyNetwork`, so rows are grouped
    by architecture signature and evaluated with the gathered-weight kernel
    :func:`~repro.rl.network.stacked_forward`; everything downstream of the
    forward (bias folds, entropy/CDF statistics, per-row sampling from each
    row's own RNG) runs once for the whole wave through
    :meth:`~repro.rl.policy.CategoricalPolicy.decisions_from_forward`.
    Every kernel on this path reduces along the contiguous last axis in a
    fixed order, so a row's decision is **bit-identical** to the same row
    computed alone on its own thread — wave composition can change
    latency, never results.

:class:`SharedExplorationContext`
    Content-keyed pools shared by the batched members: per-dataset action
    spaces and :class:`~repro.explore.reward.GenericExplorationReward`
    scorers (whose interestingness/diversity memos are keyed purely by
    view content fingerprints), per-specification compliance look-ahead
    caches (keyed by session-tree *shape*), and a per-dataset
    :class:`~repro.explore.rollouts.DynamicVectorEnvironment` pooling the
    view-feature memo across membership churn.  Every shared structure
    memoises a pure function of content-addressed keys, so sharing changes
    how often things are recomputed — never what they evaluate to.

Threading contract: a member's network weights are only read by the wave
thread while that member's request thread is blocked inside
:meth:`InferenceBatcher.submit`; all mutation (gradient accumulation,
optimizer steps) happens on the owning thread between submissions, and the
wave kernel touches no layer caches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.explore.action_space import ActionSpace
from repro.explore.reward import GenericExplorationReward
from repro.explore.rollouts import DynamicVectorEnvironment
from repro.rl.network import (
    architecture_signature,
    stack_parameters,
    stacked_forward,
)
from repro.rl.policy import CategoricalPolicy, PolicyDecision


class BatchMember:
    """Opaque membership handle of one request attached to the batcher."""

    __slots__ = ("member_id",)

    def __init__(self, member_id: int):
        self.member_id = member_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchMember({self.member_id})"


@dataclass
class _Submission:
    """One blocked acting call: a member's rows awaiting a wave."""

    member: Optional[BatchMember]
    policy: CategoricalPolicy
    observations: np.ndarray
    biases_list: list[dict[str, np.ndarray]]
    rngs: list[np.random.Generator]
    greedy: bool
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[list[PolicyDecision]] = None
    error: Optional[BaseException] = None


class SharedExplorationContext:
    """Content-keyed exploration state shared across batched requests.

    Everything pooled here memoises pure functions of content-addressed
    keys (view fingerprints, session-tree shapes), so concurrent sharing
    is bit-identity-safe: a hit returns exactly what a private memo would
    have recomputed.  Pools are bounded by wholesale clearing, mirroring
    the per-instance memo policy of :class:`GenericExplorationReward`.
    """

    #: Distinct datasets/specifications pooled before a wholesale clear.
    MAX_POOLS = 64

    def __init__(self):
        self._lock = threading.Lock()
        self._action_spaces: dict[tuple, ActionSpace] = {}
        self._scorers: dict[tuple, GenericExplorationReward] = {}
        self._lookahead_caches: dict[tuple, dict] = {}
        self._guidance_states: dict[tuple, dict] = {}
        self._environment_pools: dict[tuple, DynamicVectorEnvironment] = {}

    @staticmethod
    def _bounded(pool: dict) -> dict:
        if len(pool) >= SharedExplorationContext.MAX_POOLS:
            pool.clear()
        return pool

    def action_space(self, table) -> ActionSpace:
        """The pooled :class:`ActionSpace` for *table*'s content."""
        key = table.fingerprint()
        with self._lock:
            space = self._bounded(self._action_spaces).get(key)
            if space is None:
                space = self._action_spaces[key] = ActionSpace(table)
        return space

    def scorer(self, table) -> GenericExplorationReward:
        """The pooled generic-reward scorer for *table*'s content.

        Its interestingness and diversity memos are keyed by view content
        fingerprints, so one scorer instance serves every concurrent
        request on the same dataset bit-identically.
        """
        key = table.fingerprint()
        with self._lock:
            scorer = self._bounded(self._scorers).get(key)
            if scorer is None:
                scorer = self._scorers[key] = GenericExplorationReward()
        return scorer

    def lookahead_cache(self, ldx_text: str, max_completions: int) -> dict:
        """The pooled compliance look-ahead cache for one specification.

        Feasibility is a pure function of (session-tree shape, remaining
        steps) under a given LDX query and completion budget — both in the
        pool key — so requests exploring the same specification reuse each
        other's look-ahead work.
        """
        key = (str(ldx_text), int(max_completions))
        with self._lock:
            cache = self._bounded(self._lookahead_caches).get(key)
            if cache is None:
                cache = self._lookahead_caches[key] = {}
        return cache

    def guidance_state(self, ldx_text: str, table, mask_invalid: bool) -> dict:
        """Pooled specification-guidance memos for one (query, dataset) pair.

        The per-state decision biases of the specification-aware policy —
        structural guidance plus validity-mask folding — are pure functions
        of the session's tree structure and cursor under a fixed dataset and
        LDX query, so concurrent requests exploring the same pair reuse each
        other's guidance work (every episode starts from the same root
        state).  Returns ``{"guidance": {...}, "decisions": {...}}``, the
        two memo dicts a :class:`SpecificationAwarePolicy` keeps privately
        when unpooled.
        """
        key = (str(ldx_text), table.fingerprint(), bool(mask_invalid))
        with self._lock:
            state = self._bounded(self._guidance_states).get(key)
            if state is None:
                state = self._guidance_states[key] = {"guidance": {}, "decisions": {}}
        return state

    def environment_pool(self, table) -> DynamicVectorEnvironment:
        """The per-dataset dynamic environment pool (shared feature memo)."""
        key = table.fingerprint()
        with self._lock:
            pool = self._bounded(self._environment_pools).get(key)
            if pool is None:
                pool = self._environment_pools[key] = DynamicVectorEnvironment()
        return pool

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "action_spaces": len(self._action_spaces),
                "scorers": len(self._scorers),
                "lookahead_caches": len(self._lookahead_caches),
                "guidance_states": len(self._guidance_states),
                "environment_pools": len(self._environment_pools),
            }


class InferenceBatcher:
    """Coalesces concurrent requests' policy forwards into shared waves.

    Parameters
    ----------
    max_batch_size:
        Row cap per wave.  A wave fires as soon as the pending rows reach
        it (whole submissions are never split).
    linger_ms:
        Straggler fallback: once anything is pending, the wave fires after
        this many milliseconds even if some attached members have not
        submitted yet (they are busy stepping environments or updating
        gradients).  When every attached member has a pending submission
        the wave fires immediately — the common lock-step case pays no
        linger latency.

    Request workers :meth:`attach` when they start a batchable request,
    :meth:`submit` their observation rows each acting step (blocking until
    the wave delivers that row's decisions), and :meth:`detach` when the
    request finishes.  Results are bit-identical to the member running its
    acting path alone; occupancy telemetry is in :meth:`describe`.
    """

    def __init__(self, *, max_batch_size: int = 64, linger_ms: float = 2.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if linger_ms < 0:
            raise ValueError("linger_ms must be >= 0")
        self.max_batch_size = max_batch_size
        self.linger_seconds = linger_ms / 1000.0
        self.shared = SharedExplorationContext()
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._members: dict[int, BatchMember] = {}
        self._member_counter = 0
        self._pending: list[_Submission] = []
        self._pending_since: Optional[float] = None
        self._shutdown = False
        # Weight-stack cache for the gathered-forward kernel, keyed by each
        # member network's ``(id, weights_version)``: consecutive waves over
        # the same members between optimiser steps reuse one stack instead
        # of re-copying every network's parameters per wave (which costs
        # several times the forward einsum itself).  Only the wave thread
        # touches this — no locking.  Entries hold strong references to
        # their networks, so a cached id can never be recycled while its
        # key is alive.
        self._stack_cache: dict[tuple, tuple[list, dict]] = {}
        self._stack_cache_max = 64
        # Occupancy telemetry.
        self.waves = 0
        self.rows_total = 0
        self.submissions_total = 0
        self.max_wave_rows = 0
        self._thread = threading.Thread(
            target=self._wave_loop, daemon=True, name="linx-batcher"
        )
        self._thread.start()

    # -- membership --------------------------------------------------------------------
    def attach(self) -> BatchMember:
        """Register one request as a wave member; returns its handle."""
        with self._condition:
            if self._shutdown:
                raise RuntimeError("batcher is shut down")
            self._member_counter += 1
            member = BatchMember(self._member_counter)
            self._members[member.member_id] = member
            self._condition.notify_all()
            return member

    def detach(self, member: BatchMember) -> None:
        """Remove *member*; pending waves stop waiting for it."""
        with self._condition:
            self._members.pop(member.member_id, None)
            self._condition.notify_all()

    # -- submission --------------------------------------------------------------------
    def submit(
        self,
        member: Optional[BatchMember],
        policy: CategoricalPolicy,
        observations: np.ndarray,
        biases_list: Sequence[dict[str, np.ndarray]],
        rngs: Sequence[np.random.Generator],
        greedy: bool = False,
    ) -> list[PolicyDecision]:
        """Block until a wave has decided for these rows; returns the decisions.

        ``rngs`` must carry one generator per row (the policy's
        ``act_batch`` pins them before delegating here): each row samples
        from its own stream inside the wave, which is what makes results
        independent of wave composition.
        """
        obs = np.asarray(observations, dtype=np.float64)
        if obs.ndim != 2:
            raise ValueError(f"expected a (K, F) observation batch, got {obs.shape}")
        if len(biases_list) != len(obs) or len(rngs) != len(obs):
            raise ValueError("need one bias mapping and one RNG per observation")
        submission = _Submission(
            member=member,
            policy=policy,
            observations=obs,
            biases_list=list(biases_list),
            rngs=list(rngs),
            greedy=bool(greedy),
        )
        with self._condition:
            if self._shutdown:
                raise RuntimeError("batcher is shut down")
            self._pending.append(submission)
            first = self._pending_since is None
            if first:
                self._pending_since = time.monotonic()
            # Only wake the wave thread when this row could actually start a
            # wave: the first pending row (arms the linger timeout) or one
            # that completes the firing condition.  Intermediate rows would
            # only cost a spurious wakeup + context switch per submission.
            if first or self._wave_ready():
                self._condition.notify_all()
        submission.done.wait()
        if submission.error is not None:
            raise submission.error
        assert submission.result is not None
        return submission.result

    # -- the wave thread ---------------------------------------------------------------
    def _wave_ready(self) -> bool:
        """Fire condition (caller holds the lock)."""
        if not self._pending:
            return False
        if self._shutdown:
            return True
        rows = sum(len(submission.observations) for submission in self._pending)
        if rows >= self.max_batch_size:
            return True
        waiting = {
            submission.member.member_id
            for submission in self._pending
            if submission.member is not None
        }
        # Every attached member has a row pending: the lock-step case —
        # fire now, no linger.  (With no members attached this is trivially
        # true, so bare submissions never stall.)
        if len(waiting) >= len(self._members):
            return True
        if self._pending_since is not None:
            return time.monotonic() - self._pending_since >= self.linger_seconds
        return False

    def _wave_loop(self) -> None:
        while True:
            with self._condition:
                while not self._wave_ready():
                    if self._shutdown and not self._pending:
                        return
                    timeout = None
                    if self._pending_since is not None:
                        elapsed = time.monotonic() - self._pending_since
                        timeout = max(0.0, self.linger_seconds - elapsed)
                    self._condition.wait(timeout=timeout)
                batch: list[_Submission] = []
                rows = 0
                while self._pending:
                    next_rows = len(self._pending[0].observations)
                    if batch and rows + next_rows > self.max_batch_size:
                        break
                    submission = self._pending.pop(0)
                    batch.append(submission)
                    rows += next_rows
                self._pending_since = time.monotonic() if self._pending else None
                self.waves += 1
                self.rows_total += rows
                self.submissions_total += len(batch)
                self.max_wave_rows = max(self.max_wave_rows, rows)
            self._run_wave(batch)

    def _run_wave(self, batch: list[_Submission]) -> None:
        """Decide for every row of *batch* in grouped stacked passes."""
        groups: dict[tuple, list[_Submission]] = {}
        for submission in batch:
            key = (
                architecture_signature(submission.policy.network),
                submission.greedy,
            )
            groups.setdefault(key, []).append(submission)
        for (_, greedy), members in groups.items():
            try:
                self._decide_group(members, greedy)
            except BaseException as exc:  # noqa: BLE001 — fail the submitters, not the wave thread
                for submission in members:
                    submission.error = exc
            finally:
                for submission in members:
                    submission.done.set()

    def _group_stacks(self, networks: list) -> dict:
        """The cached weight stacks for *networks* (in this exact order)."""
        key = tuple(
            (id(network), network.weights_version) for network in networks
        )
        cached = self._stack_cache.get(key)
        if cached is not None:
            return cached[1]
        stacks = stack_parameters(networks)
        if len(self._stack_cache) >= self._stack_cache_max:
            self._stack_cache.clear()
        self._stack_cache[key] = (list(networks), stacks)
        return stacks

    def _decide_group(self, members: list[_Submission], greedy: bool) -> None:
        """One stacked forward + one batched decision pass for a group.

        Rows are concatenated in submission order; distinct networks are
        deduplicated by identity and gathered per row, so requests sharing
        one policy (e.g. duplicate-seed probes) stack as cheaply as
        distinct ones.
        """
        distinct: dict[int, Any] = {}
        for submission in members:
            network = submission.policy.network
            distinct.setdefault(id(network), network)
        # Canonical (id-sorted) order so the same member set hits the same
        # stack-cache entry whatever order their submissions arrived in.
        networks = [distinct[key] for key in sorted(distinct)]
        network_slots = {id(network): slot for slot, network in enumerate(networks)}
        net_index: list[int] = []
        for submission in members:
            slot = network_slots[id(submission.policy.network)]
            net_index.extend([slot] * len(submission.observations))
        observations = np.concatenate(
            [submission.observations for submission in members]
        )
        probabilities, values = stacked_forward(
            networks,
            np.asarray(net_index),
            observations,
            stacks=self._group_stacks(networks),
        )
        biases_list: list[dict[str, np.ndarray]] = []
        rngs: list[np.random.Generator] = []
        for submission in members:
            biases_list.extend(submission.biases_list)
            rngs.extend(submission.rngs)
        decisions = members[0].policy.decisions_from_forward(
            observations, probabilities, values, biases_list, rngs, greedy=greedy
        )
        cursor = 0
        for submission in members:
            count = len(submission.observations)
            submission.result = decisions[cursor : cursor + count]
            cursor += count

    # -- telemetry / lifecycle ---------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Occupancy telemetry (the ``/stats`` batcher section)."""
        with self._lock:
            waves = self.waves
            return {
                "max_batch_size": self.max_batch_size,
                "linger_ms": self.linger_seconds * 1000.0,
                "members": len(self._members),
                "pending": len(self._pending),
                "waves": waves,
                "rows": self.rows_total,
                "submissions": self.submissions_total,
                "max_wave_rows": self.max_wave_rows,
                "mean_rows_per_wave": (
                    round(self.rows_total / waves, 4) if waves else 0.0
                ),
                "mean_submissions_per_wave": (
                    round(self.submissions_total / waves, 4) if waves else 0.0
                ),
                "shared": self.shared.describe(),
            }

    def close(self) -> None:
        """Stop the wave thread (pending submissions still complete)."""
        with self._condition:
            if self._shutdown:
                return
            self._shutdown = True
            self._condition.notify_all()
        self._thread.join(timeout=30)

    def __enter__(self) -> "InferenceBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
