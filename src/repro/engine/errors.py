"""Structured error types of the :mod:`repro.engine` service API.

Every engine failure is an :class:`EngineError`.  Request problems are
reported *before* any work starts as a :class:`RequestValidationError`
carrying one :class:`FieldError` per offending field, so callers serving the
engine over a wire can turn them into structured 4xx payloads instead of
parsing exception strings.  Failures inside a pipeline stage surface as
:class:`StageFailedError` with the stage name attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class EngineError(Exception):
    """Base class of every error raised by the LINX engine API."""


@dataclass(frozen=True)
class FieldError:
    """One validation problem: the offending request field and the reason."""

    field: str
    message: str

    def __str__(self) -> str:
        return f"{self.field}: {self.message}"

    def to_dict(self) -> dict[str, str]:
        return {"field": self.field, "message": self.message}


class RequestValidationError(EngineError):
    """An :class:`~repro.engine.request.ExploreRequest` failed validation.

    Attributes
    ----------
    errors:
        The individual field problems, in field order.
    """

    def __init__(self, errors: Sequence[FieldError]):
        self.errors: tuple[FieldError, ...] = tuple(errors)
        detail = "; ".join(str(error) for error in self.errors) or "invalid request"
        super().__init__(f"invalid explore request: {detail}")

    def __reduce__(self):
        # Exception pickling reconstructs from self.args (the formatted
        # message), which does not match this __init__ — process-pool
        # workers re-raise these across the pipe, so spell out the real
        # constructor arguments.
        return (type(self), (self.errors,))

    def fields(self) -> tuple[str, ...]:
        """Names of the offending fields (useful in tests and error payloads)."""
        return tuple(error.field for error in self.errors)

    def to_dict(self) -> dict[str, object]:
        return {"errors": [error.to_dict() for error in self.errors]}


class StageFailedError(EngineError):
    """A required pipeline stage raised; the request cannot produce a result.

    Non-essential stages (notebook rendering, insight extraction) do not
    raise this — their failure is recorded on the result's stage status and
    the request still completes.
    """

    def __init__(self, stage: str, cause: BaseException):
        self.stage = stage
        self.cause = cause
        super().__init__(f"stage {stage!r} failed: {cause}")

    def __reduce__(self):
        # Without this, unpickling calls StageFailedError(<message>) with
        # one argument and TypeErrors — which a ProcessPoolExecutor treats
        # as a broken pool, killing every in-flight and future task of the
        # long-lived scheduler pool.
        return (type(self), (self.stage, self.cause))


class RequestCancelledError(EngineError):
    """A request was cancelled cooperatively while executing.

    Raised from the engine's cancellation checkpoints (stage boundaries and
    per-episode ticks) when the caller's cancel event is set.  Deliberately
    *not* wrapped into :class:`StageFailedError` by the stage runner, so a
    scheduler can distinguish "cancelled" from "failed" — a cancelled
    request never produces a result and never lands in the result store.
    """

    def __init__(self, request_id: str = "", detail: str = ""):
        self.request_id = request_id
        self.detail = detail
        message = f"request {request_id or '<unlabelled>'} cancelled"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)

    def __reduce__(self):
        # See StageFailedError.__reduce__: keep messages intact (and args
        # valid) when a worker process raises this across the pipe.
        return (RequestCancelledError, (self.request_id, self.detail))


class RequestTimeoutError(RequestCancelledError):
    """A request exceeded its deadline and was cancelled cooperatively.

    A subclass of :class:`RequestCancelledError` because the observable
    outcome is the same — execution stops at the next checkpoint and no
    result is produced — with the deadline recorded for error payloads.
    """

    def __init__(self, request_id: str = "", timeout: float | None = None):
        self.timeout = timeout
        detail = f"exceeded {timeout:g}s timeout" if timeout is not None else "timed out"
        super().__init__(request_id, detail)

    def __reduce__(self):
        return (RequestTimeoutError, (self.request_id, self.timeout))


class SchedulerDrainingError(EngineError):
    """The scheduler is draining (graceful shutdown) and accepts no new work.

    Raised by :meth:`~repro.engine.scheduler.RequestScheduler.submit` after
    a SIGTERM-initiated drain: in-flight requests finish (or release their
    leases), but new submissions must go to another replica.  Serving
    layers translate this into HTTP 503 so load balancers fail over.
    """

    def __init__(self, replica_id: str = ""):
        self.replica_id = replica_id
        suffix = f" (replica {replica_id})" if replica_id else ""
        super().__init__(f"scheduler is draining and not accepting requests{suffix}")

    def __reduce__(self):
        return (SchedulerDrainingError, (self.replica_id,))


class SchedulerFullError(EngineError):
    """The scheduler's bounded queue rejected a new request (back-pressure).

    Serving layers translate this into HTTP 429 so clients retry instead of
    piling unbounded work onto the engine.
    """

    def __init__(self, pending: int, capacity: int):
        self.pending = pending
        self.capacity = capacity
        super().__init__(
            f"scheduler queue is full ({pending} pending, capacity {capacity})"
        )

    def __reduce__(self):
        return (SchedulerFullError, (self.pending, self.capacity))
