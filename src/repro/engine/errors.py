"""Structured error types of the :mod:`repro.engine` service API.

Every engine failure is an :class:`EngineError`.  Request problems are
reported *before* any work starts as a :class:`RequestValidationError`
carrying one :class:`FieldError` per offending field, so callers serving the
engine over a wire can turn them into structured 4xx payloads instead of
parsing exception strings.  Failures inside a pipeline stage surface as
:class:`StageFailedError` with the stage name attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class EngineError(Exception):
    """Base class of every error raised by the LINX engine API."""


@dataclass(frozen=True)
class FieldError:
    """One validation problem: the offending request field and the reason."""

    field: str
    message: str

    def __str__(self) -> str:
        return f"{self.field}: {self.message}"

    def to_dict(self) -> dict[str, str]:
        return {"field": self.field, "message": self.message}


class RequestValidationError(EngineError):
    """An :class:`~repro.engine.request.ExploreRequest` failed validation.

    Attributes
    ----------
    errors:
        The individual field problems, in field order.
    """

    def __init__(self, errors: Sequence[FieldError]):
        self.errors: tuple[FieldError, ...] = tuple(errors)
        detail = "; ".join(str(error) for error in self.errors) or "invalid request"
        super().__init__(f"invalid explore request: {detail}")

    def fields(self) -> tuple[str, ...]:
        """Names of the offending fields (useful in tests and error payloads)."""
        return tuple(error.field for error in self.errors)

    def to_dict(self) -> dict[str, object]:
        return {"errors": [error.to_dict() for error in self.errors]}


class StageFailedError(EngineError):
    """A required pipeline stage raised; the request cannot produce a result.

    Non-essential stages (notebook rendering, insight extraction) do not
    raise this — their failure is recorded on the result's stage status and
    the request still completes.
    """

    def __init__(self, stage: str, cause: BaseException):
        self.stage = stage
        self.cause = cause
        super().__init__(f"stage {stage!r} failed: {cause}")
