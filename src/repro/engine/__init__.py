"""Service-oriented LINX engine API.

The public entry point for programmatic and served use:

* :class:`LinxEngine` — long-lived engine with pluggable stages, a shared
  execution cache and a lazily-built few-shot bank,
* :class:`ExploreRequest` / :class:`ExploreResult` — declarative,
  JSON-serializable request/response pair (schema-versioned),
* :mod:`repro.engine.stages` — the stage-plugin protocols and the default /
  baseline implementations,
* :mod:`repro.engine.registry` — the name-based stage registry behind
  declarative stage selection (``stages={"session_generator": "atena"}``),
* :class:`ProgressEvent` — per-request progress notifications,
* the serving tier: :class:`RequestScheduler` (bounded queue, lifecycle
  states, dedup by canonical request hash), :class:`ResultStore`
  (persistent idempotent results) and :mod:`repro.engine.server` (asyncio
  HTTP front-end with SSE progress).

Quickstart::

    from repro.engine import ExploreRequest, LinxEngine

    engine = LinxEngine()
    result = engine.explore(ExploreRequest(
        goal="Find a country with different viewing habits than the rest of the world",
        dataset="netflix", num_rows=800))
    print(result.notebook_markdown)

Served (see ``examples/serve.py`` and ``python -m repro.engine.server``)::

    from repro.engine import LinxEngine, RequestScheduler, ResultStore

    scheduler = RequestScheduler(LinxEngine(), store=ResultStore("results.sqlite"))
    ticket = scheduler.submit(ExploreRequest(goal="...", dataset="netflix"))
    scheduler.wait(ticket.ticket_id)
"""

from .batcher import BatchMember, InferenceBatcher, SharedExplorationContext
from .core import (
    DEFAULT_ENGINE_MAX_CACHED_ROWS,
    PERMISSIVE_LDX,
    STAGE_KIND_ATTRS,
    LinxEngine,
)
from .errors import (
    EngineError,
    FieldError,
    RequestCancelledError,
    RequestTimeoutError,
    RequestValidationError,
    SchedulerDrainingError,
    SchedulerFullError,
    StageFailedError,
)
from .faults import (
    FaultPlan,
    FaultSpec,
    FileCancelEvent,
    InjectedFaultError,
    clear_plan,
    fault_point,
    install_plan,
    retry_sqlite,
)
from .events import (
    EVENT_EPISODE,
    EVENT_REQUEST_CANCELLED,
    EVENT_REQUEST_FAILED,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_SKIPPED,
    EVENT_STAGE_STARTED,
    TERMINAL_EVENTS,
    ProgressEvent,
    ProgressObserver,
    event_from_dict,
    event_to_dict,
)
from .registry import (
    DEFAULT_STAGE_NAMES,
    KIND_INSIGHT_EXTRACTOR,
    KIND_NOTEBOOK_RENDERER,
    KIND_SESSION_GENERATOR,
    KIND_SPEC_DERIVER,
    STAGE_KINDS,
    STAGE_REGISTRY,
    StageContext,
    StageRegistry,
    register_stage_factory,
)
from .request import (
    REQUEST_SCHEMA_VERSION,
    SUPPORTED_REQUEST_VERSIONS,
    ExploreRequest,
)
from .result import (
    RESULT_SCHEMA_VERSION,
    STAGE_DERIVE,
    STAGE_GENERATE,
    STAGE_INSIGHTS,
    STAGE_ORDER,
    STAGE_RENDER,
    STATUS_CANCELLED,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_SKIPPED,
    SUPPORTED_RESULT_VERSIONS,
    EngineArtifacts,
    ExploreResult,
    StageStatus,
)
from .scheduler import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_FAILED,
    TICKET_QUEUED,
    TICKET_RUNNING,
    RequestScheduler,
    Ticket,
)
from .stages import (
    AtenaSessionGenerator,
    CdrlSessionGenerator,
    ChainedSpecDeriver,
    DefaultInsightExtractor,
    InsightExtractor,
    MarkdownNotebookRenderer,
    NotebookRenderer,
    SessionGenerator,
    SessionOutcome,
    SpecDerivation,
    SpecDeriver,
)
from .store import STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "ACTIVE_STATES",
    "AtenaSessionGenerator",
    "BatchMember",
    "CdrlSessionGenerator",
    "ChainedSpecDeriver",
    "DEFAULT_ENGINE_MAX_CACHED_ROWS",
    "DEFAULT_STAGE_NAMES",
    "DefaultInsightExtractor",
    "EVENT_EPISODE",
    "EVENT_REQUEST_CANCELLED",
    "EVENT_REQUEST_FAILED",
    "EVENT_REQUEST_FINISHED",
    "EVENT_REQUEST_STARTED",
    "EVENT_STAGE_FINISHED",
    "EVENT_STAGE_SKIPPED",
    "EVENT_STAGE_STARTED",
    "EngineArtifacts",
    "EngineError",
    "ExploreRequest",
    "ExploreResult",
    "FaultPlan",
    "FaultSpec",
    "FieldError",
    "FileCancelEvent",
    "InjectedFaultError",
    "InferenceBatcher",
    "InsightExtractor",
    "KIND_INSIGHT_EXTRACTOR",
    "KIND_NOTEBOOK_RENDERER",
    "KIND_SESSION_GENERATOR",
    "KIND_SPEC_DERIVER",
    "LinxEngine",
    "MarkdownNotebookRenderer",
    "NotebookRenderer",
    "PERMISSIVE_LDX",
    "ProgressEvent",
    "ProgressObserver",
    "REQUEST_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "RequestCancelledError",
    "RequestScheduler",
    "RequestTimeoutError",
    "RequestValidationError",
    "ResultStore",
    "STAGE_DERIVE",
    "STAGE_GENERATE",
    "STAGE_INSIGHTS",
    "STAGE_KINDS",
    "STAGE_KIND_ATTRS",
    "STAGE_ORDER",
    "STAGE_REGISTRY",
    "STAGE_RENDER",
    "STATUS_CANCELLED",
    "STATUS_COMPLETE",
    "STATUS_FAILED",
    "STATUS_PENDING",
    "STATUS_SKIPPED",
    "STORE_SCHEMA_VERSION",
    "SUPPORTED_REQUEST_VERSIONS",
    "SUPPORTED_RESULT_VERSIONS",
    "SchedulerDrainingError",
    "SchedulerFullError",
    "SessionGenerator",
    "SessionOutcome",
    "SharedExplorationContext",
    "SpecDerivation",
    "SpecDeriver",
    "StageContext",
    "StageFailedError",
    "StageRegistry",
    "StageStatus",
    "TERMINAL_EVENTS",
    "TERMINAL_STATES",
    "TICKET_CANCELLED",
    "TICKET_DONE",
    "TICKET_FAILED",
    "TICKET_QUEUED",
    "TICKET_RUNNING",
    "Ticket",
    "clear_plan",
    "event_from_dict",
    "event_to_dict",
    "fault_point",
    "install_plan",
    "register_stage_factory",
    "retry_sqlite",
]
