"""Service-oriented LINX engine API.

The public entry point for programmatic and served use:

* :class:`LinxEngine` — long-lived engine with pluggable stages, a shared
  execution cache and a lazily-built few-shot bank,
* :class:`ExploreRequest` / :class:`ExploreResult` — declarative,
  JSON-serializable request/response pair (schema-versioned),
* :mod:`repro.engine.stages` — the stage-plugin protocols and the default /
  baseline implementations,
* :class:`ProgressEvent` — per-request progress notifications.

Quickstart::

    from repro.engine import ExploreRequest, LinxEngine

    engine = LinxEngine()
    result = engine.explore(ExploreRequest(
        goal="Find a country with different viewing habits than the rest of the world",
        dataset="netflix", num_rows=800))
    print(result.notebook_markdown)
"""

from .core import DEFAULT_ENGINE_MAX_CACHED_ROWS, PERMISSIVE_LDX, LinxEngine
from .errors import (
    EngineError,
    FieldError,
    RequestValidationError,
    StageFailedError,
)
from .events import (
    EVENT_EPISODE,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_SKIPPED,
    EVENT_STAGE_STARTED,
    ProgressEvent,
    ProgressObserver,
)
from .request import REQUEST_SCHEMA_VERSION, ExploreRequest
from .result import (
    RESULT_SCHEMA_VERSION,
    STAGE_DERIVE,
    STAGE_GENERATE,
    STAGE_INSIGHTS,
    STAGE_ORDER,
    STAGE_RENDER,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_PENDING,
    STATUS_SKIPPED,
    EngineArtifacts,
    ExploreResult,
    StageStatus,
)
from .stages import (
    AtenaSessionGenerator,
    CdrlSessionGenerator,
    ChainedSpecDeriver,
    DefaultInsightExtractor,
    InsightExtractor,
    MarkdownNotebookRenderer,
    NotebookRenderer,
    SessionGenerator,
    SessionOutcome,
    SpecDerivation,
    SpecDeriver,
)

__all__ = [
    "AtenaSessionGenerator",
    "CdrlSessionGenerator",
    "ChainedSpecDeriver",
    "DEFAULT_ENGINE_MAX_CACHED_ROWS",
    "DefaultInsightExtractor",
    "EVENT_EPISODE",
    "EVENT_REQUEST_FINISHED",
    "EVENT_REQUEST_STARTED",
    "EVENT_STAGE_FINISHED",
    "EVENT_STAGE_SKIPPED",
    "EVENT_STAGE_STARTED",
    "EngineArtifacts",
    "EngineError",
    "ExploreRequest",
    "ExploreResult",
    "FieldError",
    "InsightExtractor",
    "LinxEngine",
    "MarkdownNotebookRenderer",
    "NotebookRenderer",
    "PERMISSIVE_LDX",
    "ProgressEvent",
    "ProgressObserver",
    "REQUEST_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "RequestValidationError",
    "STAGE_DERIVE",
    "STAGE_GENERATE",
    "STAGE_INSIGHTS",
    "STAGE_ORDER",
    "STAGE_RENDER",
    "STATUS_COMPLETE",
    "STATUS_FAILED",
    "STATUS_PENDING",
    "STATUS_SKIPPED",
    "SessionGenerator",
    "SessionOutcome",
    "SpecDerivation",
    "SpecDeriver",
    "StageFailedError",
    "StageStatus",
]
