"""Multi-replica fault-tolerance smoke: exactly-once serving under a crash.

Boots **three** HTTP server replicas — separate processes, separate
schedulers — over ONE shared store/cache directory, drives ≥ 20 requests
with heavily duplicated canonical hashes through a round-robin client,
and kills one replica mid-request with a scripted
:class:`~repro.engine.faults.FaultPlan` (a hard ``os._exit`` the instant
its first execution lease commits — the worst case: the lease is held by
a corpse).  It then asserts the fault-tolerance contract of the serving
tier end to end:

* **exactly-once execution** — every canonical request hash was executed
  exactly once across the whole cluster (execution-journal ``execute`` /
  ``commit`` lines and the store's row count agree), no matter how many
  duplicate submissions arrived or which replica died;
* **lease takeover** — the crashed replica's lease expired and a
  surviving replica re-executed its request without manual intervention
  (the survivors' ``/stats`` report the takeover);
* **bit-identical payloads** — every served result is identical to a
  single-replica unfaulted baseline run, byte for byte, modulo wall-clock
  fields (per-stage ``seconds``, ``cache_stats``) and the client-chosen
  ``request_id``.

Run exactly as CI does::

    PYTHONPATH=src python -m repro.engine.serve_cluster
    PYTHONPATH=src python -m repro.engine.serve_cluster --num-shards 4

``--num-shards`` runs the whole cluster (store and disk cache) over the
sharded persistence layout: the same exactly-once and bit-identity
contract must hold when keys stripe over several WAL files.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import tempfile
import time
from collections import Counter
from pathlib import Path
from typing import Any, Optional

from repro.cdrl.agent import CdrlConfig

from .core import LinxEngine
from .faults import FaultPlan, install_plan
from .request import ExploreRequest
from .scheduler import RequestScheduler
from .serve_smoke import _call
from .server import ServerThread
from .store import ResultStore

#: Cluster shape and workload (≥ 20 requests, heavy hash duplication).
REPLICAS = 3
UNIQUE_REQUESTS = 7
DUPLICATES = 3  # 7 unique x 3 submissions = 21 requests on the wire
EPISODES = 6
NUM_ROWS = 200
LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"

#: Short lease so the killed replica's takeover happens in seconds.
LEASE_TTL = 2.0

#: The injected crash: replica 0 hard-exits with this code the moment its
#: first lease claim commits (killed mid-request, lease held by a corpse).
CRASH_EXIT_CODE = 23


def _request_payload(unique: int, submission: int) -> dict[str, Any]:
    """Submission *submission* of unique request *unique*.

    The ``request_id`` differs per submission while everything the
    canonical hash covers is identical — duplicates by construction.
    """
    return {
        "request_id": f"req-u{unique}-s{submission}",
        "goal": f"explore viewing habits (variant {unique})",
        "dataset": "netflix",
        "num_rows": NUM_ROWS,
        "ldx_text": LDX,
        "episodes": EPISODES,
        "seed": unique,
    }


def _replica_main(
    index: int,
    root: str,
    port_queue: "multiprocessing.Queue",
    fault_json: Optional[str],
    num_shards: int = 1,
) -> None:
    """One server replica over the shared store/cache directory."""
    if fault_json:
        install_plan(FaultPlan.from_json(fault_json))
    base = Path(root)
    engine = LinxEngine(
        cdrl_config=CdrlConfig(episodes=EPISODES),
        disk_cache_path=base / "cache.sqlite",
        disk_cache_shards=num_shards,
    )
    store = ResultStore(base / "results.sqlite", num_shards=num_shards)
    scheduler = RequestScheduler(
        engine,
        store=store,
        max_workers=2,
        replica_id=f"replica-{index}",
        lease_ttl=LEASE_TTL,
        heartbeat_interval=LEASE_TTL / 4.0,
        cancel_dir=base / "cancel",
        execution_journal=base / "executions.log",
    )
    hosted = ServerThread(scheduler).start()
    port_queue.put((index, hosted.port))
    # Serve until the parent terminates us (SIGTERM) — or until the fault
    # plan hard-kills the process mid-request.
    while True:
        time.sleep(3600)


def _submit_and_fetch(
    ports: list[int], payload: dict[str, Any], start: int,
    deadline_seconds: float = 180.0,
) -> dict[str, Any]:
    """Round-robin client with failover: submit, poll, resubmit on a dead replica."""
    deadline = time.monotonic() + deadline_seconds
    offset = start
    while time.monotonic() < deadline:
        port = ports[offset % len(ports)]
        offset += 1
        try:
            status, body = _call(port, "POST", "/requests", payload)
        except OSError:
            continue  # replica is gone: fail over to the next one
        if status in (429, 503):
            time.sleep(0.2)
            continue
        assert status == 202, f"submit returned {status}: {body}"
        ticket = body["ticket"]
        while time.monotonic() < deadline:
            try:
                status, body = _call(port, "GET", f"/requests/{ticket}/result")
            except OSError:
                break  # replica died mid-request: resubmit elsewhere
            if status == 200:
                return body["result"]
            assert status == 202, f"result returned {status}: {body}"
            time.sleep(0.25)
    raise AssertionError(f"request {payload['request_id']} not served in time")


def _normalise(payload: dict[str, Any]) -> dict[str, Any]:
    """Strip wall-clock and identity fields; everything else must be identical."""
    clean = json.loads(json.dumps(payload))
    clean.pop("cache_stats", None)
    for stage in clean.get("stages", []):
        stage.pop("seconds", None)
    clean.get("request", {}).pop("request_id", None)
    return clean


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.serve_cluster",
        description="Multi-replica exactly-once/crash-takeover smoke check.",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="sqlite shard count for the shared store and disk cache "
             "(the fault-tolerance contract must hold at any count)",
    )
    args = parser.parse_args(argv)
    num_shards = args.num_shards

    started = time.time()
    context = multiprocessing.get_context("spawn")
    crash_plan = FaultPlan.crash_after_claim(exit_code=CRASH_EXIT_CODE).to_json()

    with tempfile.TemporaryDirectory(prefix="linx-cluster-") as root:
        port_queue = context.Queue()
        procs = [
            context.Process(
                target=_replica_main,
                args=(
                    index,
                    root,
                    port_queue,
                    crash_plan if index == 0 else None,
                    num_shards,
                ),
                daemon=True,
            )
            for index in range(REPLICAS)
        ]
        for proc in procs:
            proc.start()
        ports_by_index = dict(port_queue.get(timeout=300) for _ in range(REPLICAS))
        ports = [ports_by_index[index] for index in range(REPLICAS)]
        print(f"[cluster] {REPLICAS} replicas up on ports {ports}, "
              f"store/cache shards={num_shards} "
              f"(replica 0 scripted to crash on its first lease claim)")

        try:
            # ---- drive the duplicated workload round-robin ---------------------
            results: dict[str, list[dict[str, Any]]] = {}
            submission_index = 0
            for duplicate in range(DUPLICATES):
                for unique in range(UNIQUE_REQUESTS):
                    payload = _request_payload(unique, duplicate)
                    result = _submit_and_fetch(ports, payload, submission_index)
                    results.setdefault(f"u{unique}", []).append(result)
                    submission_index += 1
            total = sum(len(group) for group in results.values())
            assert total == UNIQUE_REQUESTS * DUPLICATES >= 20
            print(f"[cluster] {total} requests served "
                  f"({UNIQUE_REQUESTS} unique hashes x {DUPLICATES} submissions)")

            # ---- the injected crash actually happened --------------------------
            procs[0].join(timeout=60)
            assert procs[0].exitcode == CRASH_EXIT_CODE, (
                f"replica 0 should have crashed with exit code {CRASH_EXIT_CODE}, "
                f"got {procs[0].exitcode}"
            )
            for proc in procs[1:]:
                assert proc.is_alive(), "a survivor replica died unexpectedly"
            print(f"[cluster] replica 0 crashed as scripted "
                  f"(exit code {procs[0].exitcode}); survivors healthy")

            # ---- exactly-once execution ----------------------------------------
            journal = [
                json.loads(line)
                for line in (Path(root) / "executions.log").read_text().splitlines()
            ]
            executes = Counter(
                entry["request_hash"] for entry in journal if entry["action"] == "execute"
            )
            commits = Counter(
                entry["request_hash"] for entry in journal if entry["action"] == "commit"
            )
            assert len(commits) == UNIQUE_REQUESTS, (
                f"expected {UNIQUE_REQUESTS} committed hashes, got {len(commits)}"
            )
            duplicated = {h: n for h, n in executes.items() if n != 1}
            assert not duplicated, f"duplicate executions: {duplicated}"
            duplicated = {h: n for h, n in commits.items() if n != 1}
            assert not duplicated, f"duplicate commits: {duplicated}"
            # The audit open MUST use the replicas' shard count: a
            # mismatching count is (by design) a wholesale drop.
            with ResultStore(
                Path(root) / "results.sqlite", num_shards=num_shards
            ) as audit:
                assert len(audit) == UNIQUE_REQUESTS, (
                    f"store holds {len(audit)} rows, expected {UNIQUE_REQUESTS}"
                )
                occupancy = {
                    shard["shard"]: shard["entries"]
                    for shard in audit.shard_stats()
                }
            print(f"[cluster] exactly-once verified: {len(commits)} hashes, "
                  f"one execute + one commit each; store rows = {UNIQUE_REQUESTS} "
                  f"(per-shard occupancy {occupancy})")

            # ---- lease takeover of the corpse's claim --------------------------
            takeovers = 0
            for port in ports[1:]:
                _, stats = _call(port, "GET", "/stats")
                takeovers += stats["store"]["leases"]["takeovers"]
                health_status, health = _call(port, "GET", "/healthz")
                assert health_status == 200 and health["status"] == "ok"
            assert takeovers >= 1, (
                "the crashed replica's expired lease was never taken over"
            )
            print(f"[cluster] lease takeovers by survivors: {takeovers}")
        finally:
            for proc in procs[1:]:
                proc.terminate()
            for proc in procs[1:]:
                proc.join(timeout=30)

        # ---- bit-identity against a single-replica unfaulted run --------------
        with tempfile.TemporaryDirectory(prefix="linx-baseline-") as baseline_root:
            engine = LinxEngine(
                cdrl_config=CdrlConfig(episodes=EPISODES),
                disk_cache_path=Path(baseline_root) / "cache.sqlite",
            )
            try:
                for unique in range(UNIQUE_REQUESTS):
                    request = ExploreRequest.from_dict(
                        _request_payload(unique, submission=99)
                    )
                    baseline = _normalise(engine.explore(request).to_dict())
                    for served in results[f"u{unique}"]:
                        assert _normalise(served) == baseline, (
                            f"request u{unique}: cluster payload differs from the "
                            f"unfaulted single-replica baseline"
                        )
            finally:
                engine.close()
        print(f"[cluster] all {total} payloads bit-identical to the unfaulted "
              f"baseline (modulo timings and request_id)")

    print(f"[cluster] SMOKE OK in {time.time() - started:.1f}s: exactly-once, "
          f"crash takeover, and bit-identity all verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
