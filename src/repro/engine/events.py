"""Progress events emitted while the engine processes a request.

Observers receive one :class:`ProgressEvent` per lifecycle transition:
``request_started`` / ``request_finished`` bracket the whole request, each
pipeline stage emits ``stage_started`` / ``stage_finished`` (or
``stage_skipped``), and the session-generation stage additionally streams
``episode`` ticks so long CDRL trainings can drive progress bars.

Events are plain frozen dataclasses; the observer is a simple callable so
anything from ``list.append`` to a websocket push works.  With
:meth:`~repro.engine.core.LinxEngine.explore_many` the observer may be
invoked concurrently from worker threads — events of *different* requests
interleave, but events of one request are always in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

EVENT_REQUEST_STARTED = "request_started"
EVENT_REQUEST_FINISHED = "request_finished"
EVENT_STAGE_STARTED = "stage_started"
EVENT_STAGE_FINISHED = "stage_finished"
EVENT_STAGE_SKIPPED = "stage_skipped"
EVENT_EPISODE = "episode"


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification for one request."""

    request_id: str
    kind: str
    stage: str = ""
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        stage = f" {self.stage}" if self.stage else ""
        return f"[{self.request_id}] {self.kind}{stage}"


#: Observer callback signature: receives every event, returns nothing.
ProgressObserver = Callable[[ProgressEvent], None]
