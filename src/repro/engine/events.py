"""Progress events emitted while the engine processes a request.

Observers receive one :class:`ProgressEvent` per lifecycle transition:
``request_started`` / ``request_finished`` bracket the whole request, each
pipeline stage emits ``stage_started`` / ``stage_finished`` (or
``stage_skipped``), and the session-generation stage additionally streams
``episode`` ticks so long CDRL trainings can drive progress bars.

Events are plain frozen dataclasses; the observer is a simple callable so
anything from ``list.append`` to a websocket push works.  With
:meth:`~repro.engine.core.LinxEngine.explore_many` the observer may be
invoked concurrently from worker threads — events of *different* requests
interleave, but events of one request are always in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

EVENT_REQUEST_STARTED = "request_started"
EVENT_REQUEST_FINISHED = "request_finished"
EVENT_STAGE_STARTED = "stage_started"
EVENT_STAGE_FINISHED = "stage_finished"
EVENT_STAGE_SKIPPED = "stage_skipped"
EVENT_EPISODE = "episode"
#: Terminal lifecycle events synthesized by the scheduler: the engine never
#: emits these itself (a failing/cancelled request raises out of
#: ``explore()``), but event-stream consumers still need a closing event.
EVENT_REQUEST_FAILED = "request_failed"
EVENT_REQUEST_CANCELLED = "request_cancelled"

#: Event kinds that end a request's event stream.
TERMINAL_EVENTS = frozenset(
    {EVENT_REQUEST_FINISHED, EVENT_REQUEST_FAILED, EVENT_REQUEST_CANCELLED}
)


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification for one request."""

    request_id: str
    kind: str
    stage: str = ""
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        stage = f" {self.stage}" if self.stage else ""
        return f"[{self.request_id}] {self.kind}{stage}"


def event_to_dict(event: ProgressEvent) -> dict[str, Any]:
    """JSON-native rendering of one event (the SSE ``data:`` payload)."""
    return {
        "request_id": event.request_id,
        "kind": event.kind,
        "stage": event.stage,
        "payload": dict(event.payload),
    }


def event_from_dict(payload: Mapping[str, Any]) -> ProgressEvent:
    """Rebuild an event from :func:`event_to_dict` output."""
    return ProgressEvent(
        request_id=payload["request_id"],
        kind=payload["kind"],
        stage=payload.get("stage", ""),
        payload=dict(payload.get("payload", {})),
    )


#: Observer callback signature: receives every event, returns nothing.
ProgressObserver = Callable[[ProgressEvent], None]
