"""Reproduction of LINX: a language-driven generative system for goal-oriented
automated data exploration (EDBT 2025).

The package is organised as one sub-package per system (see DESIGN.md):

* :mod:`repro.dataframe` — columnar data engine (pandas substitute),
* :mod:`repro.tregex` — tree pattern matching substrate,
* :mod:`repro.ldx` — the LDX specification language and verification engine,
* :mod:`repro.explore` — the exploration model and ADE environment,
* :mod:`repro.rl` — the policy-gradient learning library,
* :mod:`repro.cdrl` — the constrained DRL engine (LINX's core contribution),
* :mod:`repro.llm` / :mod:`repro.nl2ldx` — specification derivation from NL,
* :mod:`repro.engine` — the service-oriented public API (declarative
  requests, pluggable stages, batch execution, serializable results),
* :mod:`repro.bench`, :mod:`repro.datasets`, :mod:`repro.metrics`,
  :mod:`repro.baselines`, :mod:`repro.notebook`, :mod:`repro.study` —
  benchmark, data, metrics, baselines and evaluation harnesses.

Quickstart::

    from repro import ExploreRequest, LinxEngine

    engine = LinxEngine()
    result = engine.explore(ExploreRequest(
        goal="Find an atypical country", dataset="netflix"))
    print(result.notebook_markdown)

The legacy one-call facade remains available::

    from repro import Linx
    output = Linx().explore("netflix", "Find an atypical country")
    print(output.markdown())
"""

from .engine import (
    EngineError,
    ExploreRequest,
    ExploreResult,
    LinxEngine,
    ProgressEvent,
    RequestValidationError,
    StageFailedError,
    StageStatus,
)
from .linx import Linx, LinxOutput

__version__ = "2.0.0"

__all__ = [
    "EngineError",
    "ExploreRequest",
    "ExploreResult",
    "Linx",
    "LinxEngine",
    "LinxOutput",
    "ProgressEvent",
    "RequestValidationError",
    "StageFailedError",
    "StageStatus",
    "__version__",
]
