"""Structural relations between tree nodes (the Tregex relation vocabulary).

LDX structural specifications are expressed through relations such as
``CHILDREN`` and ``DESCENDANTS`` (Section 4.1 of the paper).  Each relation
is a predicate over an (anchor, candidate) node pair plus an enumerator that
yields all candidates satisfying the relation for a given anchor — the
matcher uses the enumerator to avoid scanning the whole tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .tree import TreeNode

RelationCheck = Callable[[TreeNode, TreeNode], bool]
RelationEnumerate = Callable[[TreeNode], Iterable[TreeNode]]


@dataclass(frozen=True)
class Relation:
    """A named structural relation between an anchor node and a candidate node."""

    name: str
    check: RelationCheck
    enumerate: RelationEnumerate

    def holds(self, anchor: TreeNode, candidate: TreeNode) -> bool:
        """True when *candidate* stands in this relation to *anchor*."""
        return self.check(anchor, candidate)

    def candidates(self, anchor: TreeNode) -> list[TreeNode]:
        """All nodes standing in this relation to *anchor*."""
        return list(self.enumerate(anchor))


def _is_child(anchor: TreeNode, candidate: TreeNode) -> bool:
    return candidate.parent is anchor


def _is_descendant(anchor: TreeNode, candidate: TreeNode) -> bool:
    node = candidate.parent
    while node is not None:
        if node is anchor:
            return True
        node = node.parent
    return False


def _is_parent(anchor: TreeNode, candidate: TreeNode) -> bool:
    return anchor.parent is candidate


def _is_ancestor(anchor: TreeNode, candidate: TreeNode) -> bool:
    return _is_descendant(candidate, anchor)


def _is_sibling(anchor: TreeNode, candidate: TreeNode) -> bool:
    return (
        candidate is not anchor
        and anchor.parent is not None
        and candidate.parent is anchor.parent
    )


def _following_sibling(anchor: TreeNode, candidate: TreeNode) -> bool:
    if not _is_sibling(anchor, candidate):
        return False
    siblings = anchor.parent.children if anchor.parent else []
    return siblings.index(candidate) > siblings.index(anchor)


CHILD = Relation("child", _is_child, lambda anchor: anchor.children)
DESCENDANT = Relation("descendant", _is_descendant, lambda anchor: anchor.descendants())
PARENT = Relation(
    "parent", _is_parent, lambda anchor: [anchor.parent] if anchor.parent else []
)
ANCESTOR = Relation("ancestor", _is_ancestor, lambda anchor: anchor.ancestors())
SIBLING = Relation(
    "sibling",
    _is_sibling,
    lambda anchor: [
        node
        for node in (anchor.parent.children if anchor.parent else [])
        if node is not anchor
    ],
)
FOLLOWING_SIBLING = Relation(
    "following-sibling",
    _following_sibling,
    lambda anchor: (
        anchor.parent.children[anchor.parent.children.index(anchor) + 1 :]
        if anchor.parent
        else []
    ),
)

#: Registry of relations by name, including the LDX keyword spellings.
RELATIONS: dict[str, Relation] = {
    "child": CHILD,
    "children": CHILD,
    "descendant": DESCENDANT,
    "descendants": DESCENDANT,
    "parent": PARENT,
    "ancestor": ANCESTOR,
    "sibling": SIBLING,
    "following-sibling": FOLLOWING_SIBLING,
}


def get_relation(name: str) -> Relation:
    """Look up a relation by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in RELATIONS:
        raise KeyError(f"unknown tree relation {name!r}; known: {sorted(set(RELATIONS))}")
    return RELATIONS[key]
