"""Ordered, labelled trees.

This is the tree model shared by the Tregex-style matcher
(:mod:`repro.tregex.matcher`) and the exploration sessions
(:mod:`repro.explore.session`).  Nodes carry an opaque *label* (for
exploration trees this is a query operation) and keep their children in
insertion order, which encodes the execution order of the session via
pre-order traversal (Section 3 of the paper).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class TreeNode:
    """A node of an ordered labelled tree."""

    __slots__ = ("label", "children", "parent", "node_id")

    def __init__(self, label: Any = None, node_id: int | None = None):
        self.label = label
        self.children: list["TreeNode"] = []
        self.parent: Optional["TreeNode"] = None
        self.node_id = node_id

    # -- construction -----------------------------------------------------------------
    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Attach *child* as the last child of this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, label: Any = None, node_id: int | None = None) -> "TreeNode":
        """Create, attach and return a new child with the given label."""
        return self.add_child(TreeNode(label, node_id=node_id))

    # -- structure queries --------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        """Number of edges from the root to this node."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def root(self) -> "TreeNode":
        """The root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> list["TreeNode"]:
        """Ancestors from the parent up to the root."""
        result = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def descendants(self) -> list["TreeNode"]:
        """All strict descendants in pre-order."""
        result: list[TreeNode] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(node.children))
        return result

    def preorder(self) -> Iterator["TreeNode"]:
        """Pre-order traversal including this node (the session execution order)."""
        yield self
        for child in self.children:
            yield from child.preorder()

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.preorder())

    def height(self) -> int:
        """Number of edges on the longest downward path from this node."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    def find(self, predicate: Callable[["TreeNode"], bool]) -> list["TreeNode"]:
        """All nodes in the subtree (pre-order) satisfying *predicate*."""
        return [node for node in self.preorder() if predicate(node)]

    def index_nodes(self) -> dict[int, "TreeNode"]:
        """Assign pre-order ids to all nodes and return the id -> node map."""
        mapping: dict[int, TreeNode] = {}
        for index, node in enumerate(self.preorder()):
            node.node_id = index
            mapping[index] = node
        return mapping

    # -- comparison and rendering ----------------------------------------------------------
    def structurally_equal(self, other: "TreeNode", compare_labels: bool = True) -> bool:
        """True when the two subtrees have the same shape (and labels, optionally)."""
        if compare_labels and self.label != other.label:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(
            a.structurally_equal(b, compare_labels)
            for a, b in zip(self.children, other.children)
        )

    def copy(self) -> "TreeNode":
        """Deep-copy the subtree (labels are shared, structure is duplicated)."""
        clone = TreeNode(self.label, node_id=self.node_id)
        for child in self.children:
            clone.add_child(child.copy())
        return clone

    def render(self, label_fn: Callable[[Any], str] = str, indent: str = "  ") -> str:
        """Render the subtree as an indented text outline."""
        lines: list[str] = []

        def visit(node: "TreeNode", level: int) -> None:
            lines.append(f"{indent * level}{label_fn(node.label)}")
            for child in node.children:
                visit(child, level + 1)

        visit(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TreeNode(label={self.label!r}, children={len(self.children)})"


def build_tree(spec: Any) -> TreeNode:
    """Build a tree from a nested ``(label, [children...])`` specification.

    A bare label builds a leaf.  Example::

        build_tree(("root", [("a", []), ("b", [("c", [])])]))
    """
    if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[1], (list, tuple)):
        label, children = spec
        node = TreeNode(label)
        for child_spec in children:
            node.add_child(build_tree(child_spec))
        return node
    return TreeNode(spec)


def parent_child_pairs(root: TreeNode) -> list[tuple[TreeNode, TreeNode]]:
    """All (parent, child) edges of the tree in pre-order."""
    pairs: list[tuple[TreeNode, TreeNode]] = []
    for node in root.preorder():
        for child in node.children:
            pairs.append((node, child))
    return pairs
