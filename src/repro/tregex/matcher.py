"""Tregex-style pattern matching over ordered labelled trees.

The paper's LDX verification engine (Algorithm 1) relies on a node matching
primitive ``GetTregexNodeMatches`` that, given a single node specification, a
tree and a partial node mapping, returns every tree node the specification
could be assigned to.  This module provides that primitive plus a full
backtracking matcher (``find_assignments``) used by the structural-only
checks of the compliance reward (Algorithm 2).

A *pattern* is a set of named :class:`NodePattern` objects connected by
:class:`StructuralConstraint` edges (child / descendant relations plus
arity requirements).  Matching produces assignments from pattern names to
tree nodes such that every label predicate and every structural constraint
holds, with distinct pattern names mapped to distinct tree nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from .relations import Relation, get_relation
from .tree import TreeNode

LabelPredicate = Callable[[Any], bool]


@dataclass
class NodePattern:
    """A named pattern node with an optional label predicate.

    ``label_predicate`` receives the tree node's label and returns True when
    the node is an acceptable match.  ``None`` matches any node.
    """

    name: str
    label_predicate: Optional[LabelPredicate] = None

    def matches_label(self, node: TreeNode) -> bool:
        if self.label_predicate is None:
            return True
        return bool(self.label_predicate(node.label))


@dataclass
class StructuralConstraint:
    """``target`` must stand in ``relation`` to ``anchor`` (anchor REL target).

    For the ``child`` relation this means *target is a child of anchor*;
    for ``descendant`` that *target is a strict descendant of anchor*.
    """

    anchor: str
    relation: Relation
    target: str

    @classmethod
    def of(cls, anchor: str, relation_name: str, target: str) -> "StructuralConstraint":
        return cls(anchor=anchor, relation=get_relation(relation_name), target=target)


@dataclass
class ArityConstraint:
    """The anchor node must have at least ``minimum`` children (or descendants).

    This encodes the anonymous ``+`` entries in LDX ``CHILDREN <B,+>``
    clauses: the node needs extra, un-named children beyond the named ones.
    """

    anchor: str
    minimum: int
    relation: Relation = field(default_factory=lambda: get_relation("child"))

    def satisfied(self, node: TreeNode) -> bool:
        return len(self.relation.candidates(node)) >= self.minimum


@dataclass
class TreePattern:
    """A complete pattern: named nodes, structural edges and arity constraints."""

    nodes: dict[str, NodePattern] = field(default_factory=dict)
    constraints: list[StructuralConstraint] = field(default_factory=list)
    arity: list[ArityConstraint] = field(default_factory=list)

    def add_node(self, name: str, label_predicate: Optional[LabelPredicate] = None) -> NodePattern:
        pattern = NodePattern(name, label_predicate)
        self.nodes[name] = pattern
        return pattern

    def add_constraint(self, anchor: str, relation_name: str, target: str) -> None:
        self.constraints.append(StructuralConstraint.of(anchor, relation_name, target))

    def add_arity(self, anchor: str, minimum: int, relation_name: str = "child") -> None:
        self.arity.append(ArityConstraint(anchor, minimum, get_relation(relation_name)))

    def names(self) -> list[str]:
        return list(self.nodes)


def node_candidates(
    root: TreeNode,
    pattern: TreePattern,
    name: str,
    assignment: Mapping[str, TreeNode],
) -> list[TreeNode]:
    """``GetTregexNodeMatches``: all tree nodes *name* can map to.

    Respects the partial *assignment*: structural constraints whose other
    endpoint is already mapped restrict the candidate set, label predicates
    always apply, and nodes already used for other names are excluded.
    """
    if name in assignment:
        candidate = assignment[name]
        return [candidate] if _node_acceptable(candidate, pattern, name, assignment) else []

    node_pattern = pattern.nodes[name]
    used = {id(node) for key, node in assignment.items() if key != name}

    # Start from the most restrictive anchored constraint when available.
    candidates: Optional[list[TreeNode]] = None
    for constraint in pattern.constraints:
        if constraint.target == name and constraint.anchor in assignment:
            anchored = constraint.relation.candidates(assignment[constraint.anchor])
            candidates = anchored if candidates is None else [
                node for node in candidates if node in anchored
            ]
        elif constraint.anchor == name and constraint.target in assignment:
            target_node = assignment[constraint.target]
            anchored = [
                node
                for node in root.preorder()
                if constraint.relation.holds(node, target_node)
            ]
            candidates = anchored if candidates is None else [
                node for node in candidates if node in anchored
            ]
    if candidates is None:
        candidates = list(root.preorder())

    result = []
    for node in candidates:
        if id(node) in used:
            continue
        if not node_pattern.matches_label(node):
            continue
        if not _arity_ok(node, pattern, name):
            continue
        result.append(node)
    return result


def _arity_ok(node: TreeNode, pattern: TreePattern, name: str) -> bool:
    for constraint in pattern.arity:
        if constraint.anchor == name and not constraint.satisfied(node):
            return False
    return True


def _node_acceptable(
    node: TreeNode,
    pattern: TreePattern,
    name: str,
    assignment: Mapping[str, TreeNode],
) -> bool:
    if not pattern.nodes[name].matches_label(node):
        return False
    if not _arity_ok(node, pattern, name):
        return False
    for constraint in pattern.constraints:
        if constraint.anchor == name and constraint.target in assignment:
            if not constraint.relation.holds(node, assignment[constraint.target]):
                return False
        if constraint.target == name and constraint.anchor in assignment:
            if not constraint.relation.holds(assignment[constraint.anchor], node):
                return False
    return True


def _consistent(
    pattern: TreePattern, assignment: Mapping[str, TreeNode]
) -> bool:
    """Check all constraints whose endpoints are both assigned."""
    for constraint in pattern.constraints:
        if constraint.anchor in assignment and constraint.target in assignment:
            if not constraint.relation.holds(
                assignment[constraint.anchor], assignment[constraint.target]
            ):
                return False
    for constraint in pattern.arity:
        if constraint.anchor in assignment and not constraint.satisfied(
            assignment[constraint.anchor]
        ):
            return False
    # Distinct names must map to distinct nodes.
    ids = [id(node) for node in assignment.values()]
    return len(ids) == len(set(ids))


def find_assignments(
    root: TreeNode,
    pattern: TreePattern,
    initial: Optional[Mapping[str, TreeNode]] = None,
    order: Optional[Sequence[str]] = None,
) -> Iterator[dict[str, TreeNode]]:
    """Yield every complete assignment of pattern names to tree nodes.

    *initial* seeds the assignment (e.g. ``{"ROOT": tree_root}``); *order*
    controls the variable ordering of the backtracking search (defaults to
    most-constrained-first over the remaining names).
    """
    assignment: dict[str, TreeNode] = dict(initial or {})
    if not _consistent(pattern, assignment):
        return
    remaining = [name for name in (order or pattern.names()) if name not in assignment]

    def backtrack(pending: list[str]) -> Iterator[dict[str, TreeNode]]:
        if not pending:
            yield dict(assignment)
            return
        # Most-constrained-first: pick the pending name with fewest candidates.
        scored = [
            (len(node_candidates(root, pattern, name, assignment)), name)
            for name in pending
        ]
        scored.sort()
        _, chosen = scored[0]
        rest = [name for name in pending if name != chosen]
        for node in node_candidates(root, pattern, chosen, assignment):
            assignment[chosen] = node
            if _consistent(pattern, assignment):
                yield from backtrack(rest)
            del assignment[chosen]

    yield from backtrack(remaining)


def has_assignment(
    root: TreeNode,
    pattern: TreePattern,
    initial: Optional[Mapping[str, TreeNode]] = None,
) -> bool:
    """True when at least one complete assignment exists."""
    return next(find_assignments(root, pattern, initial), None) is not None


def all_assignments(
    root: TreeNode,
    pattern: TreePattern,
    initial: Optional[Mapping[str, TreeNode]] = None,
) -> list[dict[str, TreeNode]]:
    """Materialise every assignment (``GetTregexNodeAssg`` in Algorithm 2)."""
    return list(find_assignments(root, pattern, initial))
