"""Tregex-like substrate: ordered labelled trees and structural pattern matching."""

from .matcher import (
    ArityConstraint,
    NodePattern,
    StructuralConstraint,
    TreePattern,
    all_assignments,
    find_assignments,
    has_assignment,
    node_candidates,
)
from .relations import (
    ANCESTOR,
    CHILD,
    DESCENDANT,
    FOLLOWING_SIBLING,
    PARENT,
    RELATIONS,
    SIBLING,
    Relation,
    get_relation,
)
from .tree import TreeNode, build_tree, parent_child_pairs

__all__ = [
    "ANCESTOR",
    "ArityConstraint",
    "CHILD",
    "DESCENDANT",
    "FOLLOWING_SIBLING",
    "NodePattern",
    "PARENT",
    "RELATIONS",
    "Relation",
    "SIBLING",
    "StructuralConstraint",
    "TreeNode",
    "TreePattern",
    "all_assignments",
    "build_tree",
    "find_assignments",
    "get_relation",
    "has_assignment",
    "node_candidates",
    "parent_child_pairs",
]
