"""NL→LDX derivation pipelines (Section 6) and their evaluation (Section 7.2).

Two pipelines are provided:

* :class:`ChainedPipeline` — the paper's **NL2PD2LDX** approach: an NL→PyLDX
  prompt followed by a PyLDX→LDX prompt;
* :class:`DirectPipeline` — the ablation baseline that asks for LDX directly.

Both work against any :class:`~repro.llm.interface.LLMClient`.
:func:`evaluate_derivation` reproduces Table 2: lev² and xTED scores per
scenario, model and prompting approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.generator import Benchmark, BenchmarkInstance
from repro.datasets.registry import dataset_schema_description, load_dataset
from repro.ldx.ast import LdxQuery
from repro.ldx.parser import try_parse_ldx
from repro.llm.interface import (
    TASK_NL_TO_LDX,
    TASK_NL_TO_PANDAS,
    TASK_PANDAS_TO_LDX,
    DerivationTask,
    LLMClient,
)
from repro.metrics.levenshtein import lev2_score
from repro.metrics.tree_edit import xted_score

from .fewshot import SCENARIOS, FewShotBank, Scenario


@dataclass
class DerivationResult:
    """The outcome of deriving specifications for one analytical goal."""

    goal: str
    dataset: str
    ldx_text: str
    query: LdxQuery | None
    intermediate_pyldx: str = ""

    @property
    def parsed(self) -> bool:
        return self.query is not None


class DirectPipeline:
    """Single-prompt NL→LDX derivation (the paper's ablation baseline)."""

    name = "NL2LDX"

    def __init__(self, client: LLMClient, bank: FewShotBank):
        self.client = client
        self.bank = bank

    def derive(self, test: BenchmarkInstance, scenario: Scenario) -> DerivationResult:
        examples = self.bank.select(test, scenario)
        task = DerivationTask(
            kind=TASK_NL_TO_LDX,
            examples=examples,
            goal=test.goal,
            dataset=test.dataset,
            schema=tuple(load_dataset(test.dataset).columns),
            dataset_sample=dataset_schema_description(test.dataset),
        )
        ldx_text = self.client.derive(task)
        return DerivationResult(
            goal=test.goal,
            dataset=test.dataset,
            ldx_text=ldx_text,
            query=try_parse_ldx(ldx_text),
        )


class ChainedPipeline:
    """The NL2PD2LDX chained prompting approach (NL→PyLDX→LDX)."""

    name = "NL2PD2LDX"

    def __init__(self, client: LLMClient, bank: FewShotBank):
        self.client = client
        self.bank = bank

    def derive(self, test: BenchmarkInstance, scenario: Scenario) -> DerivationResult:
        examples = self.bank.select(test, scenario)
        schema = tuple(load_dataset(test.dataset).columns)
        pandas_task = DerivationTask(
            kind=TASK_NL_TO_PANDAS,
            examples=examples,
            goal=test.goal,
            dataset=test.dataset,
            schema=schema,
            dataset_sample=dataset_schema_description(test.dataset),
        )
        pyldx_code = self.client.derive(pandas_task)
        ldx_task = DerivationTask(
            kind=TASK_PANDAS_TO_LDX,
            examples=examples,
            dataset=test.dataset,
            schema=schema,
            pyldx_code=pyldx_code,
        )
        ldx_text = self.client.derive(ldx_task)
        return DerivationResult(
            goal=test.goal,
            dataset=test.dataset,
            ldx_text=ldx_text,
            query=try_parse_ldx(ldx_text),
            intermediate_pyldx=pyldx_code,
        )


@dataclass
class ScenarioScore:
    """Aggregate lev² / xTED scores for one (model, approach, scenario) cell."""

    model: str
    approach: str
    scenario: str
    lev2: float = 0.0
    xted: float = 0.0
    parse_rate: float = 0.0
    instances: int = 0


@dataclass
class DerivationEvaluation:
    """The full Table 2 grid."""

    cells: list[ScenarioScore] = field(default_factory=list)

    def cell(self, model: str, approach: str, scenario: str) -> ScenarioScore:
        for entry in self.cells:
            if (
                entry.model == model
                and entry.approach == approach
                and entry.scenario == scenario
            ):
                return entry
        raise KeyError((model, approach, scenario))

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "model": cell.model,
                "approach": cell.approach,
                "scenario": cell.scenario,
                "lev2": round(cell.lev2, 3),
                "xted": round(cell.xted, 3),
                "parse_rate": round(cell.parse_rate, 3),
                "instances": cell.instances,
            }
            for cell in self.cells
        ]


def evaluate_derivation(
    benchmark: Benchmark,
    clients: dict[str, LLMClient],
    max_instances_per_scenario: int | None = None,
    scenarios: tuple[Scenario, ...] = SCENARIOS,
) -> DerivationEvaluation:
    """Run the Table 2 evaluation for the given simulated (or real) clients.

    ``max_instances_per_scenario`` subsamples the benchmark deterministically
    (every k-th instance) to keep laptop-scale runs fast.
    """
    evaluation = DerivationEvaluation()
    instances = benchmark.instances
    if max_instances_per_scenario and len(instances) > max_instances_per_scenario:
        step = max(1, len(instances) // max_instances_per_scenario)
        instances = instances[::step][:max_instances_per_scenario]
    bank = FewShotBank(benchmark)
    for model_name, client in clients.items():
        for approach_cls in (DirectPipeline, ChainedPipeline):
            pipeline = approach_cls(client, bank)
            for scenario in scenarios:
                lev_scores: list[float] = []
                xted_scores: list[float] = []
                parsed = 0
                for test in instances:
                    result = pipeline.derive(test, scenario)
                    gold = test.ldx_query()
                    lev_scores.append(lev2_score(gold, result.query))
                    xted_scores.append(xted_score(gold, result.query))
                    parsed += 1 if result.parsed else 0
                count = len(instances)
                evaluation.cells.append(
                    ScenarioScore(
                        model=model_name,
                        approach=pipeline.name,
                        scenario=scenario.name,
                        lev2=sum(lev_scores) / count if count else 0.0,
                        xted=sum(xted_scores) / count if count else 0.0,
                        parse_rate=parsed / count if count else 0.0,
                        instances=count,
                    )
                )
    return evaluation
