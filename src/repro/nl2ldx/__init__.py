"""LLM-based derivation of exploration specifications (LINX Step 1)."""

from .fewshot import SCENARIOS, FewShotBank, Scenario, example_from_instance
from .pipeline import (
    ChainedPipeline,
    DerivationEvaluation,
    DerivationResult,
    DirectPipeline,
    ScenarioScore,
    evaluate_derivation,
)
from .pyldx import (
    PyLdxError,
    PyLdxProgram,
    PyLdxStatement,
    PyLdxValue,
    ldx_to_pyldx,
    parse_pyldx,
    pyldx_text_to_ldx,
    pyldx_to_ldx,
)

__all__ = [
    "ChainedPipeline",
    "DerivationEvaluation",
    "DerivationResult",
    "DirectPipeline",
    "FewShotBank",
    "PyLdxError",
    "PyLdxProgram",
    "PyLdxStatement",
    "PyLdxValue",
    "SCENARIOS",
    "Scenario",
    "ScenarioScore",
    "evaluate_derivation",
    "example_from_instance",
    "ldx_to_pyldx",
    "parse_pyldx",
    "pyldx_text_to_ldx",
    "pyldx_to_ldx",
]
