"""PyLDX: the intermediate, non-executable Pandas-style code representation.

Section 6 of the paper derives LDX from natural language through an
intermediate code representation: the LLM first emits *template* Pandas code
("PyLDX") containing ``<PLACEHOLDER>`` markers for the parameters the ADE
engine should discover, and a second prompt translates that code into formal
LDX.  This module implements both directions:

* :func:`parse_pyldx` — parse PyLDX text into a small dataflow program,
* :func:`pyldx_to_ldx` — translate a program into LDX text (the job of the
  Pandas-to-LDX prompt),
* :func:`ldx_to_pyldx` — render an LDX query as PyLDX code (used to build
  few-shot examples and by the simulated LLM).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.ldx.ast import REL_CHILDREN, LdxQuery, NodeSpec, StructureClause
from repro.ldx.parser import parse_ldx
from repro.ldx.patterns import FieldPattern, OperationPattern

_PLACEHOLDER_RE = re.compile(r"^<(?P<name>[A-Za-z_][A-Za-z_0-9]*)>$")
_READ_RE = re.compile(r"^(?P<var>\w+)\s*=\s*pd\.read_csv\((?P<args>.*)\)\s*$")
_FILTER_RE = re.compile(
    r"^(?P<var>\w+)\s*=\s*(?P<source>\w+)\[\s*(?P=source)\[(?P<quote>['\"])(?P<attr>[^'\"]+)(?P=quote)\]\s*"
    r"(?P<op>==|!=|>=|<=|>|<)\s*(?P<term>.+?)\s*\]\s*$"
)
_GROUP_RE = re.compile(
    r"^(?P<var>\w+)\s*=\s*(?P<source>\w+)\.groupby\(\s*(?P<col>[^)]+?)\s*\)"
    r"(?:\[(?P<aggcol>[^\]]+)\])?\.agg\(\s*(?P<agg>[^)]+?)\s*\)\s*$"
)

_PANDAS_OPS = {"==": "eq", "!=": "neq", ">": "gt", ">=": "ge", "<": "lt", "<=": "le"}
_OPS_TO_PANDAS = {v: k for k, v in _PANDAS_OPS.items()}


class PyLdxError(Exception):
    """The PyLDX code could not be parsed."""


@dataclass(frozen=True)
class PyLdxValue:
    """A field value in PyLDX: a literal or a ``<PLACEHOLDER>``."""

    text: str
    placeholder: Optional[str] = None

    @classmethod
    def parse(cls, raw: str) -> "PyLdxValue":
        cleaned = raw.strip().strip("'\"")
        match = _PLACEHOLDER_RE.match(cleaned)
        if match:
            return cls(text=cleaned, placeholder=match.group("name"))
        return cls(text=cleaned)

    @property
    def is_placeholder(self) -> bool:
        return self.placeholder is not None


@dataclass
class PyLdxStatement:
    """One assignment in a PyLDX program."""

    variable: str
    kind: str  # "read", "filter", "group"
    source: Optional[str] = None
    attr: Optional[PyLdxValue] = None
    op: Optional[str] = None
    term: Optional[PyLdxValue] = None
    group_col: Optional[PyLdxValue] = None
    agg_func: Optional[PyLdxValue] = None
    agg_col: Optional[PyLdxValue] = None


@dataclass
class PyLdxProgram:
    """A parsed PyLDX program: an ordered list of dataflow statements."""

    statements: list[PyLdxStatement] = field(default_factory=list)

    def root_variable(self) -> Optional[str]:
        for statement in self.statements:
            if statement.kind == "read":
                return statement.variable
        return None

    def operations(self) -> list[PyLdxStatement]:
        return [s for s in self.statements if s.kind in ("filter", "group")]


def parse_pyldx(code: str) -> PyLdxProgram:
    """Parse PyLDX *code*; unrecognised lines (comments, concat, prints) are skipped."""
    program = PyLdxProgram()
    for raw_line in code.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        read = _READ_RE.match(line)
        if read:
            program.statements.append(PyLdxStatement(variable=read.group("var"), kind="read"))
            continue
        filt = _FILTER_RE.match(line)
        if filt:
            program.statements.append(
                PyLdxStatement(
                    variable=filt.group("var"),
                    kind="filter",
                    source=filt.group("source"),
                    attr=PyLdxValue(filt.group("attr")),
                    op=_PANDAS_OPS[filt.group("op")],
                    term=PyLdxValue.parse(filt.group("term")),
                )
            )
            continue
        group = _GROUP_RE.match(line)
        if group:
            agg_col = group.group("aggcol")
            program.statements.append(
                PyLdxStatement(
                    variable=group.group("var"),
                    kind="group",
                    source=group.group("source"),
                    group_col=PyLdxValue.parse(group.group("col")),
                    agg_func=PyLdxValue.parse(group.group("agg")),
                    agg_col=PyLdxValue.parse(agg_col) if agg_col else None,
                )
            )
            continue
        # Unsupported constructs (concat, plots, comments) are intentionally ignored,
        # mirroring the paper's example where the final concat line is dropped.
    if not program.operations():
        raise PyLdxError("no filter or group-by statements found in PyLDX code")
    return program


def _field_from_value(
    value: Optional[PyLdxValue],
    placeholder_counts: dict[str, int],
) -> str:
    """Render one PyLDX value as an LDX pattern field.

    Placeholders used more than once become continuity variables (repeated
    ``<COL>`` must bind to the same column); placeholders used exactly once
    are plain free parameters and render as wildcards.
    """
    if value is None:
        return ".*"
    if value.is_placeholder:
        name = value.placeholder
        if placeholder_counts.get(name, 0) > 1:
            return f"(?<{name}>.*)"
        return ".*"
    return value.text


def pyldx_to_ldx(program: PyLdxProgram) -> str:
    """Translate a PyLDX program into LDX text.

    Variables define the dataflow tree: a statement whose ``source`` is the
    ``read_csv`` variable hangs off the root; otherwise it is a child of the
    statement that defined its source.  Placeholders become continuity
    variables (repeated placeholders therefore bind to the same value).
    """
    root_var = program.root_variable()
    operations = program.operations()
    # Count placeholder usages so only repeated placeholders become continuity vars.
    placeholder_counts: dict[str, int] = {}
    for statement in operations:
        for value in (statement.attr, statement.term, statement.group_col,
                      statement.agg_func, statement.agg_col):
            if value is not None and value.is_placeholder:
                placeholder_counts[value.placeholder] = (
                    placeholder_counts.get(value.placeholder, 0) + 1
                )
    names: dict[str, str] = {}
    lines_by_name: dict[str, str] = {}
    children: dict[str, list[str]] = {"ROOT": []}

    for index, statement in enumerate(operations, start=1):
        name = f"A{index}"
        names[statement.variable] = name
        if statement.kind == "filter":
            fields = [
                _field_from_value(statement.attr, placeholder_counts),
                statement.op or ".*",
                _field_from_value(statement.term, placeholder_counts),
            ]
            pattern = "[F," + ",".join(fields) + "]"
        else:
            fields = [
                _field_from_value(statement.group_col, placeholder_counts),
                _field_from_value(statement.agg_func, placeholder_counts),
                _field_from_value(statement.agg_col, placeholder_counts),
            ]
            pattern = "[G," + ",".join(fields) + "]"
        lines_by_name[name] = f"{name} LIKE {pattern}"
        parent_var = statement.source
        if parent_var is None or parent_var == root_var or parent_var not in names:
            children.setdefault("ROOT", []).append(name)
        else:
            children.setdefault(names[parent_var], []).append(name)

    lines: list[str] = [f"ROOT CHILDREN <{','.join(children['ROOT'])}>"]
    for name in lines_by_name:
        line = lines_by_name[name]
        kids = children.get(name, [])
        if kids:
            line += " and CHILDREN {" + ",".join(kids) + "}"
        lines.append(line)
    return "\n".join(lines)


def pyldx_text_to_ldx(code: str) -> str:
    """Convenience: parse PyLDX text and translate it to LDX."""
    return pyldx_to_ldx(parse_pyldx(code))


# ---------------------------------------------------------------------------
# LDX -> PyLDX rendering (used to construct few-shot examples)
# ---------------------------------------------------------------------------

def _pyldx_value_from_field(field_pattern: FieldPattern, default_placeholder: str) -> str:
    if field_pattern.kind == "literal":
        return f"'{field_pattern.value}'"
    if field_pattern.kind == "continuity":
        return f"<{field_pattern.continuity or default_placeholder}>"
    return f"<{default_placeholder}>"


def ldx_to_pyldx(query: LdxQuery | str, dataset_name: str = "data") -> str:
    """Render an LDX query as PyLDX template code.

    Every named operational node becomes an assignment; parents are resolved
    from the structure clauses; wildcards become placeholders.
    """
    if isinstance(query, str):
        query = parse_ldx(query)
    parent_of: dict[str, str] = {}
    for spec in query.specs:
        for clause in spec.structure:
            for child in clause.named:
                parent_of[child] = spec.name

    lines = [f'df = pd.read_csv("{dataset_name}.csv")']
    variable_of: dict[str, str] = {query.root_name(): "df"}
    counter = 0
    for name in query.preorder_named_nodes():
        spec = query.spec_for(name)
        pattern = spec.operation if spec is not None else None
        counter += 1
        variable = f"step_{counter}"
        variable_of[name] = variable
        parent = parent_of.get(name, query.root_name())
        source = variable_of.get(parent, "df")
        if pattern is None:
            lines.append(
                f"{variable} = {source}.groupby(<COL_{counter}>).agg(<AGG_{counter}>)"
            )
            continue
        fields = list(pattern.fields) + [FieldPattern("any")] * 3
        if pattern.kind == "F":
            attr = _pyldx_value_from_field(fields[0], f"COL_{counter}").strip("'")
            op_field = fields[1]
            op = op_field.value if op_field.kind == "literal" else "eq"
            term = _pyldx_value_from_field(fields[2], f"VALUE_{counter}")
            symbol = _OPS_TO_PANDAS.get(op, "==")
            lines.append(f"{variable} = {source}[{source}['{attr}'] {symbol} {term}]")
        else:
            col = _pyldx_value_from_field(fields[0], f"COL_{counter}")
            agg = _pyldx_value_from_field(fields[1], f"AGG_FUNC_{counter}")
            lines.append(f"{variable} = {source}.groupby({col}).agg({agg})")
    return "\n".join(lines)


def ldx_from_operations_structure(
    operation_patterns: list[OperationPattern], parents: list[int]
) -> LdxQuery:
    """Assemble an :class:`LdxQuery` from patterns plus a parent-index vector.

    ``parents[i]`` is the index of operation *i*'s parent (-1 for the root).
    Helper shared by tests and by the simulated LLM when it rewrites retrieved
    templates.
    """
    specs = [NodeSpec(name="ROOT")]
    children: dict[int, list[str]] = {}
    for index, pattern in enumerate(operation_patterns):
        name = f"A{index + 1}"
        specs.append(NodeSpec(name=name, operation=pattern))
        children.setdefault(parents[index], []).append(name)
    for index, spec in enumerate([None] + operation_patterns):
        node_index = index - 1
        kids = children.get(node_index, [])
        if kids:
            specs[index].structure.append(StructureClause(relation=REL_CHILDREN, named=tuple(kids)))
    query = LdxQuery(specs=specs)
    query.validate()
    return query
