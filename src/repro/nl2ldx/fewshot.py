"""Few-shot example bank construction (Section 6, "Prompts Number of Examples").

Few-shot examples are built from benchmark instances: each example carries
the analytical goal, the dataset schema, the gold LDX specification and the
PyLDX rendering of that specification.  The evaluation scenarios of
Section 7.2 (seen/unseen dataset, seen/unseen meta-goal) are realised by
filtering which instances may appear in the prompt for a given test
instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.generator import Benchmark, BenchmarkInstance
from repro.datasets.registry import load_dataset
from repro.llm.interface import FewShotExample

from .pyldx import ldx_to_pyldx


def example_from_instance(instance: BenchmarkInstance) -> FewShotExample:
    """Convert a benchmark instance into a few-shot example."""
    schema = tuple(load_dataset(instance.dataset).columns)
    return FewShotExample(
        goal=instance.goal,
        dataset=instance.dataset,
        schema=schema,
        pyldx_code=ldx_to_pyldx(instance.ldx_text, dataset_name=instance.dataset),
        ldx_text=instance.ldx_text,
        explanation=f"Template for the meta-goal: {instance.meta_goal_name}.",
        meta_goal_id=instance.meta_goal_id,
    )


@dataclass(frozen=True)
class Scenario:
    """A Table 2 evaluation scenario: which examples may appear in the prompt."""

    name: str
    seen_dataset: bool
    seen_meta_goal: bool


SCENARIOS: tuple[Scenario, ...] = (
    Scenario("seen dataset, seen meta-goal", True, True),
    Scenario("seen dataset, unseen meta-goal", True, False),
    Scenario("unseen dataset, seen meta-goal", False, True),
    Scenario("unseen dataset, unseen meta-goal", False, False),
)


class FewShotBank:
    """Selects few-shot examples per test instance and scenario."""

    def __init__(self, benchmark: Benchmark, examples_per_prompt: int = 8):
        self.benchmark = benchmark
        self.examples_per_prompt = examples_per_prompt

    def select(
        self, test: BenchmarkInstance, scenario: Scenario
    ) -> tuple[FewShotExample, ...]:
        """Few-shot examples for *test* under *scenario*.

        The test instance itself is never included.  One example per
        (meta-goal, dataset) combination is taken, preferring the allowed
        combinations, in increasing meta-goal order (the least-to-most
        prompting order of Section 6).
        """
        chosen: list[BenchmarkInstance] = []
        seen_keys: set[tuple[int, str]] = set()
        for instance in self.benchmark.instances:
            if instance.instance_id == test.instance_id:
                continue
            if scenario.seen_dataset != (instance.dataset == test.dataset):
                if not self._allowed_fallback(scenario, instance, test):
                    continue
            # Ad-hoc goals (meta_goal_id 0) have no meta-goal to hold out:
            # every meta-goal's examples are eligible.
            if test.meta_goal_id != 0 and scenario.seen_meta_goal != (
                instance.meta_goal_id == test.meta_goal_id
            ):
                continue
            key = (instance.meta_goal_id, instance.dataset)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            chosen.append(instance)
            if len(chosen) >= self.examples_per_prompt:
                break
        chosen.sort(key=lambda inst: (inst.meta_goal_id, inst.dataset))
        return tuple(example_from_instance(instance) for instance in chosen)

    @staticmethod
    def _allowed_fallback(
        scenario: Scenario, instance: BenchmarkInstance, test: BenchmarkInstance
    ) -> bool:
        """Whether a dataset-mismatched instance may still be used.

        In the *seen dataset* scenarios only same-dataset examples are used;
        in the *unseen dataset* scenarios only other-dataset examples are.
        """
        if scenario.seen_dataset:
            return instance.dataset == test.dataset
        return instance.dataset != test.dataset
