"""LDX verification engine (Algorithm 1 of the paper).

Given an exploration session tree whose node labels are
:class:`~repro.explore.operations.Operation` objects and an
:class:`~repro.ldx.ast.LdxQuery`, the engine decides whether at least one
*assignment* exists: a mapping of the query's named nodes to session nodes
and of its continuity variables to concrete values such that every
structural clause and every operation pattern is satisfied.

Besides the boolean check the module exposes:

* :func:`find_assignment` — returns one witnessing assignment,
* :func:`verify_structure` / :func:`structural_assignments` — checks only
  ``struct(QX)``, used by the graded compliance reward (Algorithm 2),
* :func:`operational_match_ratio` — the fraction of specified operational
  parameters satisfied under the best structural assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.tregex.relations import get_relation
from repro.tregex.tree import TreeNode

from .ast import REL_CHILDREN, LdxQuery, NodeSpec
from .errors import LdxVerificationError


@dataclass
class Assignment:
    """A (possibly partial) LDX assignment ``⟨φ_V, φ_C⟩`` (Definition 4.2)."""

    nodes: dict[str, TreeNode] = field(default_factory=dict)
    continuity: dict[str, str] = field(default_factory=dict)

    def copy(self) -> "Assignment":
        return Assignment(nodes=dict(self.nodes), continuity=dict(self.continuity))


def _signature(node: TreeNode) -> tuple[str, ...]:
    label = node.label
    if label is None:
        return ("*",)
    if hasattr(label, "signature"):
        return tuple(str(part) for part in label.signature())
    if isinstance(label, (tuple, list)):
        return tuple(str(part) for part in label)
    return (str(label),)


def _is_root_label(node: TreeNode) -> bool:
    return _signature(node)[0].upper() == "ROOT"


def _is_blank(node: TreeNode) -> bool:
    """Blank nodes are placeholders used by the partial (look-ahead) verifier."""
    return _signature(node)[0] == "*"


def _min_children(spec: NodeSpec) -> int:
    return sum(
        clause.min_related() for clause in spec.structure if clause.relation == REL_CHILDREN
    )


def _candidates(
    tree_root: TreeNode,
    query: LdxQuery,
    spec: NodeSpec,
    assignment: Assignment,
    structural_only: bool,
    ignore_arity: bool = False,
) -> list[TreeNode]:
    """``GetTregexNodeMatches``: candidate session nodes for *spec* given *assignment*."""
    name = spec.name
    if name in assignment.nodes:
        pool: list[TreeNode] = [assignment.nodes[name]]
    else:
        pool = None
        # Restrict to nodes related to already-assigned anchors.
        for other in query.specs:
            if other.name not in assignment.nodes:
                continue
            anchor_node = assignment.nodes[other.name]
            for clause in other.structure:
                if name in clause.named:
                    relation = get_relation(clause.relation)
                    related = relation.candidates(anchor_node)
                    pool = related if pool is None else [n for n in pool if n in related]
        if pool is None:
            pool = list(tree_root.preorder())

    used = {id(node) for key, node in assignment.nodes.items() if key != name}
    result: list[TreeNode] = []
    for node in pool:
        if id(node) in used:
            continue
        if spec.is_root:
            if node is not tree_root:
                continue
        elif _is_root_label(node):
            continue
        # Arity: enough children/descendants for the declared structure.
        if not ignore_arity and not _arity_ok(node, spec):
            continue
        # Reverse structural check: node must be properly related to assigned children.
        if not _assigned_children_ok(node, spec, assignment):
            continue
        if not structural_only and spec.operation is not None and not _is_blank(node):
            pattern = spec.operation.substitute(assignment.continuity)
            if not pattern.matches(_signature(node), assignment.continuity):
                continue
        result.append(node)
    return result


def _arity_ok(node: TreeNode, spec: NodeSpec) -> bool:
    for clause in spec.structure:
        relation = get_relation(clause.relation)
        if len(relation.candidates(node)) < clause.min_related():
            return False
    return True


def _assigned_children_ok(node: TreeNode, spec: NodeSpec, assignment: Assignment) -> bool:
    for clause in spec.structure:
        relation = get_relation(clause.relation)
        for child_name in clause.named:
            if child_name in assignment.nodes:
                if not relation.holds(node, assignment.nodes[child_name]):
                    return False
    return True


def _ordered_specs(query: LdxQuery) -> list[NodeSpec]:
    """Root spec first, then declaration order (parents precede children in LDX text)."""
    root = [spec for spec in query.specs if spec.is_root]
    rest = [spec for spec in query.specs if not spec.is_root]
    return root + rest


def _search(
    tree_root: TreeNode,
    query: LdxQuery,
    pending: list[NodeSpec],
    assignment: Assignment,
    structural_only: bool,
    collect: Optional[list[Assignment]] = None,
) -> Optional[Assignment]:
    """Recursive core of Algorithm 1.

    When *collect* is given, every complete assignment is appended and the
    search continues; otherwise the first complete assignment is returned.
    """
    if not pending:
        if collect is not None:
            collect.append(assignment.copy())
            return None
        return assignment.copy()
    spec, rest = pending[0], pending[1:]
    for node in _candidates(tree_root, query, spec, assignment, structural_only):
        branch = assignment.copy()
        branch.nodes[spec.name] = node
        if not structural_only and spec.operation is not None and not _is_blank(node):
            pattern = spec.operation.substitute(assignment.continuity)
            branch.continuity.update(pattern.capture(_signature(node), assignment.continuity))
        found = _search(tree_root, query, rest, branch, structural_only, collect)
        if found is not None and collect is None:
            return found
    return None


def find_assignment(tree_root: TreeNode, query: LdxQuery) -> Optional[Assignment]:
    """Return a full assignment of *query* over the session tree, or ``None``."""
    if tree_root is None:
        raise LdxVerificationError("tree_root must not be None")
    initial = Assignment(nodes={query.root_name(): tree_root})
    return _search(tree_root, query, _ordered_specs(query), initial, structural_only=False)


def verify(tree_root: TreeNode, query: LdxQuery) -> bool:
    """``VerifyLDX``: True when the session complies with the full query."""
    return find_assignment(tree_root, query) is not None


def verify_structure(tree_root: TreeNode, query: LdxQuery) -> bool:
    """True when the session complies with the structural subset ``struct(QX)``."""
    return bool(structural_assignments(tree_root, query, first_only=True))


def structural_assignments(
    tree_root: TreeNode, query: LdxQuery, first_only: bool = False
) -> list[Assignment]:
    """All assignments satisfying ``struct(QX)`` (``GetTregexNodeAssg`` in Alg. 2)."""
    struct_query = query.structural_subset()
    initial = Assignment(nodes={struct_query.root_name(): tree_root})
    if first_only:
        found = _search(
            tree_root, struct_query, _ordered_specs(struct_query), initial, structural_only=True
        )
        return [found] if found is not None else []
    collected: list[Assignment] = []
    _search(
        tree_root,
        struct_query,
        _ordered_specs(struct_query),
        initial,
        structural_only=True,
        collect=collected,
    )
    return collected


def operational_match_ratio(tree_root: TreeNode, query: LdxQuery) -> float:
    """Best-assignment fraction of satisfied operational parameters.

    Implements ``GetOprReward`` (Algorithm 2, lines 9-12): for every
    structural assignment, each operational specification contributes the
    ratio of its satisfied specified parameters; the maximum over assignments
    is returned, normalised to [0, 1] by the number of operational specs.
    """
    opr_specs = query.operational_specs()
    if not opr_specs:
        return 1.0
    assignments = structural_assignments(tree_root, query)
    if not assignments:
        return 0.0
    best = 0.0
    for assignment in assignments:
        total = 0.0
        for spec in opr_specs:
            node = assignment.nodes.get(spec.name)
            if node is None or spec.operation is None:
                continue
            specified = spec.operation.specified_field_count()
            if specified == 0:
                total += 1.0
                continue
            matched = spec.operation.matched_field_count(_signature(node), {})
            total += matched / specified
        best = max(best, total / len(opr_specs))
    return best


def best_partial_structural_assignment(
    tree_root: TreeNode, query: LdxQuery
) -> tuple[Assignment, int, int]:
    """The structural assignment covering the most named nodes.

    Relaxes ``struct(QX)`` verification by allowing named nodes to stay
    unassigned.  Returns ``(assignment, assigned_count, named_count)``; the
    graded compliance reward and the specification-aware structure guide both
    build on it.
    """
    struct_query = query.structural_subset()
    specs = _ordered_specs(struct_query)
    named = [spec for spec in specs if not spec.is_root]
    initial = Assignment(nodes={struct_query.root_name(): tree_root})
    if not named:
        return initial, 0, 0

    best_assignment = initial
    best_count = 0

    def explore(pending: list[NodeSpec], assignment: Assignment, assigned: int) -> None:
        nonlocal best_assignment, best_count
        if assigned > best_count:
            best_count = assigned
            best_assignment = assignment.copy()
        if not pending or assigned + len(pending) <= best_count:
            return
        spec, rest = pending[0], pending[1:]
        for node in _candidates(
            tree_root, struct_query, spec, assignment, True, ignore_arity=True
        ):
            branch = assignment.copy()
            branch.nodes[spec.name] = node
            explore(rest, branch, assigned + 1)
        # Also consider skipping this spec entirely.
        explore(rest, assignment, assigned)

    explore(named, initial, 0)
    return best_assignment, best_count, len(named)


def partial_structural_ratio(tree_root: TreeNode, query: LdxQuery) -> float:
    """Fraction of named nodes assignable while respecting structural clauses.

    Used by the graded compliance reward to provide a smooth signal toward
    structural compliance: a session whose tree already realises most of the
    required structure scores close to 1 even if no complete structural
    assignment exists yet.
    """
    _, assigned, named = best_partial_structural_assignment(tree_root, query)
    if named == 0:
        return 1.0
    return assigned / named


def count_assignments(tree_root: TreeNode, query: LdxQuery) -> int:
    """Number of full (structural + operational) assignments; useful for testing."""
    collected: list[Assignment] = []
    initial = Assignment(nodes={query.root_name(): tree_root})
    _search(
        tree_root, query, _ordered_specs(query), initial, structural_only=False, collect=collected
    )
    return len(collected)
