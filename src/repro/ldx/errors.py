"""Exceptions raised by the LDX language implementation."""

from __future__ import annotations


class LdxError(Exception):
    """Base class for all LDX errors."""


class LdxSyntaxError(LdxError):
    """The LDX query text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, text: str | None = None):
        self.line = line
        self.text = text
        location = f" (line {line})" if line is not None else ""
        detail = f": {text!r}" if text else ""
        super().__init__(f"{message}{location}{detail}")


class LdxSemanticError(LdxError):
    """The query parsed but is semantically invalid (e.g. unknown node reference)."""


class LdxVerificationError(LdxError):
    """The verification engine was used incorrectly (e.g. non-tree session)."""
