"""LDX: the intermediate exploration-specification language of LINX.

Public API::

    from repro.ldx import parse_ldx, verify

    query = parse_ldx('''
        ROOT CHILDREN <A,B>
        A LIKE [G,(?<X>.*),.*]
        B LIKE [F,(?<X>.*),.*]
    ''')
    verify(session.tree, query)
"""

from .ast import (
    REL_CHILDREN,
    REL_DESCENDANTS,
    ROOT_NAMES,
    LdxQuery,
    NodeSpec,
    StructureClause,
    merge_queries,
)
from .errors import LdxError, LdxSemanticError, LdxSyntaxError, LdxVerificationError
from .parser import parse_ldx, try_parse_ldx
from .partial import (
    can_still_comply,
    catalan_number,
    count_completions,
    enumerate_completions,
)
from .patterns import FieldPattern, OperationPattern
from .verifier import (
    Assignment,
    count_assignments,
    find_assignment,
    operational_match_ratio,
    partial_structural_ratio,
    structural_assignments,
    verify,
    verify_structure,
)

__all__ = [
    "Assignment",
    "FieldPattern",
    "LdxError",
    "LdxQuery",
    "LdxSemanticError",
    "LdxSyntaxError",
    "LdxVerificationError",
    "NodeSpec",
    "OperationPattern",
    "REL_CHILDREN",
    "REL_DESCENDANTS",
    "ROOT_NAMES",
    "StructureClause",
    "can_still_comply",
    "catalan_number",
    "count_assignments",
    "count_completions",
    "enumerate_completions",
    "find_assignment",
    "merge_queries",
    "operational_match_ratio",
    "parse_ldx",
    "partial_structural_ratio",
    "structural_assignments",
    "try_parse_ldx",
    "verify",
    "verify_structure",
]
