"""Operation patterns with regular expressions and continuity variables.

An LDX single-node specification constrains a query operation through a
positional pattern such as ``[F, 'country', eq, (?<X>.*)]`` (Section 4.1).
Each field is one of:

* a **literal** (``country``, ``eq``, ``3``),
* a **wildcard** (``*`` or ``.*``) matching anything,
* a **regex** such as a disjunction ``SUM|AVG``,
* a **continuity variable** ``(?<X>.*)`` (or a ``<COL>``-style placeholder)
  that captures the matched value and forces subsequent uses of the same
  variable to take the same value.

Continuity is the LDX extension over plain Tregex: standard named groups only
capture, whereas LDX variables *constrain* later operations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from .errors import LdxSyntaxError

#: Field kinds.
FIELD_LITERAL = "literal"
FIELD_ANY = "any"
FIELD_REGEX = "regex"
FIELD_CONTINUITY = "continuity"

_CONTINUITY_RE = re.compile(r"^\(\?<(?P<name>[A-Za-z_][A-Za-z_0-9]*)>(?P<pattern>.*)\)$")
_PLACEHOLDER_RE = re.compile(r"^<(?P<name>[A-Za-z_][A-Za-z_0-9]*)>$")


@dataclass(frozen=True)
class FieldPattern:
    """A single positional field of an operation pattern."""

    kind: str
    value: str = ""
    continuity: Optional[str] = None

    @classmethod
    def parse(cls, text: str) -> "FieldPattern":
        """Parse one field from its LDX textual form."""
        raw = text.strip()
        if raw.startswith(("'", '"')) and raw.endswith(("'", '"')) and len(raw) >= 2:
            return cls(FIELD_LITERAL, raw[1:-1])
        if raw in ("*", ".*", ""):
            return cls(FIELD_ANY)
        continuity = _CONTINUITY_RE.match(raw)
        if continuity:
            inner = continuity.group("pattern") or ".*"
            return cls(FIELD_CONTINUITY, inner, continuity.group("name"))
        placeholder = _PLACEHOLDER_RE.match(raw)
        if placeholder:
            # ``<COL>``-style placeholders behave as continuity variables named
            # after the placeholder: repeated placeholders must bind consistently.
            return cls(FIELD_CONTINUITY, ".*", placeholder.group("name"))
        if _looks_like_regex(raw):
            try:
                re.compile(raw)
            except re.error as exc:
                raise LdxSyntaxError(f"invalid regex field {raw!r}: {exc}") from exc
            return cls(FIELD_REGEX, raw)
        return cls(FIELD_LITERAL, raw)

    # -- matching --------------------------------------------------------------------
    def matches(self, value: str, bindings: Mapping[str, str]) -> bool:
        """True when the concrete *value* satisfies this field under *bindings*."""
        text = str(value)
        if self.kind == FIELD_ANY:
            return True
        if self.kind == FIELD_LITERAL:
            return _literal_equal(self.value, text)
        if self.kind == FIELD_REGEX:
            return re.fullmatch(self.value, text, flags=re.IGNORECASE) is not None
        if self.kind == FIELD_CONTINUITY:
            if self.continuity in bindings:
                return _literal_equal(bindings[self.continuity], text)
            if self.value in ("", ".*"):
                return True
            return re.fullmatch(self.value, text, flags=re.IGNORECASE) is not None
        raise LdxSyntaxError(f"unknown field kind {self.kind!r}")

    def capture(self, value: str, bindings: Mapping[str, str]) -> dict[str, str]:
        """Continuity bindings produced by matching *value* (empty for other kinds)."""
        if self.kind == FIELD_CONTINUITY and self.continuity not in bindings:
            return {self.continuity: str(value)}
        return {}

    @property
    def is_free(self) -> bool:
        """True when the field does not pin a concrete value (wildcard or unbound var)."""
        return self.kind in (FIELD_ANY, FIELD_CONTINUITY)

    @property
    def is_specified(self) -> bool:
        """True when the field constrains the value (literal or regex)."""
        return self.kind in (FIELD_LITERAL, FIELD_REGEX)

    def render(self) -> str:
        """Serialise the field back to LDX text."""
        if self.kind == FIELD_ANY:
            return ".*"
        if self.kind == FIELD_LITERAL:
            return self.value
        if self.kind == FIELD_REGEX:
            return self.value
        if self.kind == FIELD_CONTINUITY:
            inner = self.value if self.value else ".*"
            return f"(?<{self.continuity}>{inner})"
        raise LdxSyntaxError(f"unknown field kind {self.kind!r}")


def _looks_like_regex(text: str) -> bool:
    return any(ch in text for ch in "|?*+[](){}^$\\.")


def _literal_equal(expected: str, actual: str) -> bool:
    expected_s = str(expected).strip()
    actual_s = str(actual).strip()
    if expected_s.lower() == actual_s.lower():
        return True
    # Numeric literals: 3 == 3.0.
    try:
        return float(expected_s) == float(actual_s)
    except (TypeError, ValueError):
        return False


@dataclass(frozen=True)
class OperationPattern:
    """A positional pattern over an operation signature ``[kind, f1, f2, ...]``."""

    kind: str
    fields: tuple[FieldPattern, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, text: str) -> "OperationPattern":
        """Parse a pattern from its bracketed form, e.g. ``[F, country, eq, .*]``."""
        raw = text.strip()
        if not (raw.startswith("[") and raw.endswith("]")):
            raise LdxSyntaxError(f"operation pattern must be bracketed: {text!r}")
        parts = _split_pattern_fields(raw[1:-1])
        if not parts:
            raise LdxSyntaxError(f"empty operation pattern: {text!r}")
        kind = parts[0].strip().strip("'\"").upper()
        if kind not in ("F", "G", "ROOT", "B"):
            raise LdxSyntaxError(f"unknown operation kind {parts[0]!r} in {text!r}")
        fields = tuple(FieldPattern.parse(part) for part in parts[1:])
        return cls(kind=kind, fields=fields)

    # -- matching ---------------------------------------------------------------------
    def matches(
        self,
        signature: Sequence[str],
        bindings: Mapping[str, str] | None = None,
    ) -> bool:
        """True when the operation *signature* satisfies the pattern under *bindings*."""
        bindings = bindings or {}
        if not signature:
            return False
        if str(signature[0]).upper() != self.kind:
            return False
        values = list(signature[1:])
        for index, field_pattern in enumerate(self.fields):
            value = values[index] if index < len(values) else ""
            if not field_pattern.matches(value, bindings):
                return False
        return True

    def capture(
        self,
        signature: Sequence[str],
        bindings: Mapping[str, str] | None = None,
    ) -> dict[str, str]:
        """Continuity bindings produced by matching *signature* (assumes it matches)."""
        bindings = bindings or {}
        captured: dict[str, str] = {}
        values = list(signature[1:])
        for index, field_pattern in enumerate(self.fields):
            value = values[index] if index < len(values) else ""
            captured.update(field_pattern.capture(value, bindings))
        return captured

    def continuity_variables(self) -> list[str]:
        """Names of continuity variables referenced in the pattern."""
        return [f.continuity for f in self.fields if f.kind == FIELD_CONTINUITY and f.continuity]

    def specified_field_count(self) -> int:
        """Number of concretely specified fields (used by the operational reward)."""
        return sum(1 for f in self.fields if f.is_specified)

    def matched_field_count(
        self,
        signature: Sequence[str],
        bindings: Mapping[str, str] | None = None,
    ) -> int:
        """Number of specified fields satisfied by *signature* (kind included when it matches)."""
        bindings = bindings or {}
        if not signature or str(signature[0]).upper() != self.kind:
            return 0
        matched = 0
        values = list(signature[1:])
        for index, field_pattern in enumerate(self.fields):
            if not field_pattern.is_specified:
                continue
            value = values[index] if index < len(values) else ""
            if field_pattern.matches(value, bindings):
                matched += 1
        return matched

    def substitute(self, bindings: Mapping[str, str]) -> "OperationPattern":
        """Return a copy where bound continuity variables become literals (Alg. 1, lines 3-4)."""
        new_fields = []
        for field_pattern in self.fields:
            if (
                field_pattern.kind == FIELD_CONTINUITY
                and field_pattern.continuity in bindings
            ):
                new_fields.append(
                    FieldPattern(FIELD_LITERAL, str(bindings[field_pattern.continuity]))
                )
            else:
                new_fields.append(field_pattern)
        return OperationPattern(self.kind, tuple(new_fields))

    def render(self) -> str:
        """Serialise back to the bracketed LDX form."""
        parts = [self.kind] + [f.render() for f in self.fields]
        return "[" + ",".join(parts) + "]"

    @property
    def is_fully_specified(self) -> bool:
        """True when every field is a literal (no freedom left for the ADE engine)."""
        return all(f.kind == FIELD_LITERAL for f in self.fields)


def _split_pattern_fields(body: str) -> list[str]:
    """Split pattern fields on commas that are not nested in (), <>, quotes."""
    parts: list[str] = []
    current: list[str] = []
    depth_paren = 0
    depth_angle = 0
    quote: Optional[str] = None
    for ch in body:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            current.append(ch)
            continue
        if ch == "(":
            depth_paren += 1
        elif ch == ")":
            depth_paren -= 1
        elif ch == "<":
            depth_angle += 1
        elif ch == ">":
            depth_angle = max(0, depth_angle - 1)
        if ch == "," and depth_paren == 0 and depth_angle == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip() != ""]
