"""Abstract syntax tree of LDX queries.

An LDX query is a conjunction of *single node specifications* over a set of
named nodes (Section 4.1).  Each specification can constrain:

* the **structure** — which named (and how many anonymous) children or
  descendants the node must have,
* the **operation** — an :class:`~repro.ldx.patterns.OperationPattern` over
  the node's query operation, possibly containing continuity variables.

The AST also knows how to split itself into the structural subset
``struct(QX)`` and the operational subset ``opr(QX)`` used by the compliance
reward scheme (Section 5.2), and how to render a *minimal tree* used by the
exploration-tree edit distance metric (Appendix B.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.tregex.tree import TreeNode

from .errors import LdxSemanticError
from .patterns import OperationPattern

#: Reserved names for the query root.
ROOT_NAMES = ("ROOT", "BEGIN")

#: Structural relation keywords.
REL_CHILDREN = "children"
REL_DESCENDANTS = "descendants"


@dataclass(frozen=True)
class StructureClause:
    """``<anchor> CHILDREN/DESCENDANTS <named..., +...>``.

    ``extra`` counts anonymous ``+`` entries: the anchor must have at least
    ``len(named) + extra`` related nodes.
    """

    relation: str
    named: tuple[str, ...] = ()
    extra: int = 0

    def min_related(self) -> int:
        return len(self.named) + self.extra


@dataclass
class NodeSpec:
    """The full specification attached to one named node."""

    name: str
    operation: Optional[OperationPattern] = None
    structure: list[StructureClause] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.name.upper() in ROOT_NAMES

    def continuity_variables(self) -> list[str]:
        if self.operation is None:
            return []
        return self.operation.continuity_variables()

    def has_structure(self) -> bool:
        return bool(self.structure)

    def has_operation(self) -> bool:
        return self.operation is not None

    def render(self) -> str:
        """Serialise the spec back to a line of LDX text."""
        clauses: list[str] = []
        if self.operation is not None:
            clauses.append(f"LIKE {self.operation.render()}")
        for clause in self.structure:
            names = list(clause.named) + ["+"] * clause.extra
            keyword = "CHILDREN" if clause.relation == REL_CHILDREN else "DESCENDANTS"
            clauses.append(f"{keyword} {{{','.join(names)}}}")
        return f"{self.name} " + " and ".join(clauses) if clauses else self.name


@dataclass
class LdxQuery:
    """A parsed LDX query: an ordered list of node specifications."""

    specs: list[NodeSpec] = field(default_factory=list)
    source: str = ""

    # -- introspection ---------------------------------------------------------------
    def node_names(self) -> list[str]:
        """Names of all named nodes, in declaration order (``Nodes(QX)``)."""
        seen: dict[str, None] = {}
        for spec in self.specs:
            seen.setdefault(spec.name, None)
            for clause in spec.structure:
                for child in clause.named:
                    seen.setdefault(child, None)
        return list(seen)

    def continuity_variables(self) -> list[str]:
        """All continuity variable names (``Cont(QX)``), in first-use order."""
        seen: dict[str, None] = {}
        for spec in self.specs:
            for name in spec.continuity_variables():
                seen.setdefault(name, None)
        return list(seen)

    def root_name(self) -> str:
        """The name used for the root node (``ROOT`` or ``BEGIN``)."""
        for spec in self.specs:
            if spec.is_root:
                return spec.name
        return ROOT_NAMES[0]

    def spec_for(self, name: str) -> Optional[NodeSpec]:
        for spec in self.specs:
            if spec.name == name:
                return spec
        return None

    def named_children_of(self, name: str) -> list[str]:
        """Named children declared under *name* via CHILDREN clauses."""
        spec = self.spec_for(name)
        if spec is None:
            return []
        children: list[str] = []
        for clause in spec.structure:
            if clause.relation == REL_CHILDREN:
                children.extend(clause.named)
        return children

    def validate(self) -> None:
        """Raise :class:`LdxSemanticError` on dangling references or duplicate specs.

        Every node named in a CHILDREN/DESCENDANTS clause must have its own
        specification line; this catches the typical LLM failure of
        referencing a node it never defined.
        """
        names = set()
        for spec in self.specs:
            if spec.name in names:
                raise LdxSemanticError(f"duplicate specification for node {spec.name!r}")
            names.add(spec.name)
        for spec in self.specs:
            for clause in spec.structure:
                for child in clause.named:
                    if child not in names:
                        raise LdxSemanticError(
                            f"node {spec.name!r} references undeclared node {child!r}"
                        )
        if not any(spec.is_root for spec in self.specs):
            raise LdxSemanticError("query must contain a ROOT/BEGIN specification")

    # -- struct / opr split (Section 5.2) --------------------------------------------------
    def structural_subset(self) -> "LdxQuery":
        """``struct(QX)``: the same nodes with only the structural clauses."""
        specs = [
            NodeSpec(name=spec.name, operation=None, structure=list(spec.structure))
            for spec in self.specs
        ]
        return LdxQuery(specs=specs, source=self.source)

    def operational_specs(self) -> list[NodeSpec]:
        """``opr(QX)``: specifications that carry an operation pattern."""
        return [spec for spec in self.specs if spec.operation is not None and not spec.is_root]

    def operation_patterns(self) -> dict[str, OperationPattern]:
        """Mapping of node name -> operation pattern (root excluded)."""
        return {
            spec.name: spec.operation
            for spec in self.specs
            if spec.operation is not None and not spec.is_root
        }

    # -- derived sizes ---------------------------------------------------------------------
    def required_operations(self) -> int:
        """Minimum number of query operations a compliant session must contain.

        Counts every named non-root node plus anonymous ``+`` entries.
        """
        named = [n for n in self.node_names() if n.upper() not in ROOT_NAMES]
        extra = sum(clause.extra for spec in self.specs for clause in spec.structure)
        return len(named) + extra

    def preorder_named_nodes(self) -> list[str]:
        """Named non-root nodes in the pre-order of the specification tree.

        This is the order in which a session built step by step realises the
        specification (finish one branch, back up, start the next); the
        specification-aware guidance follows it.
        """
        children: dict[str, list[str]] = {}
        for spec in self.specs:
            for clause in spec.structure:
                children.setdefault(spec.name, []).extend(clause.named)
        ordered: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            for child in children.get(name, []):
                if child in seen:
                    continue
                seen.add(child)
                ordered.append(child)
                visit(child)

        visit(self.root_name())
        # Nodes never referenced as children (declared stand-alone) come last.
        for name in self.node_names():
            if name.upper() not in ROOT_NAMES and name not in seen:
                ordered.append(name)
        return ordered

    def minimal_session_steps(self) -> int:
        """Minimum number of agent steps (operations + back moves) for compliance.

        Walks the minimal specification tree in pre-order and counts one step
        per operation plus the back moves needed to return to the parent of
        the next operation.
        """
        tree = self.minimal_tree()
        nodes = [node for node in tree.preorder() if node is not tree]
        steps = len(nodes)
        for current, following in zip(nodes, nodes[1:]):
            drop = current.depth() - following.depth() + 1
            if drop > 0:
                steps += drop
        return steps

    # -- rendering -----------------------------------------------------------------------
    def render(self) -> str:
        """Serialise the query back to canonical LDX text."""
        return "\n".join(spec.render() for spec in self.specs)

    def minimal_tree(self, mask_continuity: bool = True) -> TreeNode:
        """Build the minimal specification-compliant tree (Appendix B.2).

        Named nodes become tree nodes labelled with their operation pattern's
        signature; DESCENDANTS clauses are flattened to direct children, with
        the child-relation kind recorded in the label.  Continuity variables
        can be masked to category-indexed identifiers so that naming
        differences do not affect the tree edit distance.
        """
        name_to_node: dict[str, TreeNode] = {}
        root_name = self.root_name()
        root = TreeNode(("ROOT",))
        name_to_node[root_name] = root
        mask_map: dict[str, str] = {}

        def label_for(spec: Optional[NodeSpec], relation: str) -> tuple:
            if spec is None or spec.operation is None:
                return ("*", relation)
            pattern = spec.operation
            fields: list[str] = [pattern.kind]
            for index, field_pattern in enumerate(pattern.fields):
                if field_pattern.kind == "continuity" and mask_continuity:
                    key = field_pattern.continuity or f"var{index}"
                    if key not in mask_map:
                        category = _field_category(pattern.kind, index)
                        mask_map[key] = f"{category}{len([k for k in mask_map.values() if k.startswith(category)]) + 1}"
                    fields.append(mask_map[key])
                else:
                    fields.append(field_pattern.render())
            return tuple(fields) + (relation,)

        # Attach named nodes in declaration order so parents exist before children.
        pending: list[tuple[str, str, str]] = []  # (parent, child, relation)
        for spec in self.specs:
            for clause in spec.structure:
                for child in clause.named:
                    pending.append((spec.name, child, clause.relation))

        progress = True
        while pending and progress:
            progress = False
            remaining: list[tuple[str, str, str]] = []
            for parent, child, relation in pending:
                if parent in name_to_node:
                    node = TreeNode(label_for(self.spec_for(child), relation))
                    name_to_node[parent].add_child(node)
                    name_to_node[child] = node
                    progress = True
                else:
                    remaining.append((parent, child, relation))
            pending = remaining
        # Any specs never referenced as a child hang off the root.
        for spec in self.specs:
            if spec.name not in name_to_node:
                node = TreeNode(label_for(spec, REL_CHILDREN))
                root.add_child(node)
                name_to_node[spec.name] = node
        return root


def _field_category(kind: str, index: int) -> str:
    if kind == "F":
        return ("att", "op", "term")[index] if index < 3 else "fld"
    if kind == "G":
        return ("att", "aggfunc", "aggatt")[index] if index < 3 else "fld"
    return "fld"


def merge_queries(queries: Iterable[LdxQuery]) -> LdxQuery:
    """Concatenate several queries into one (used by benchmark template composition)."""
    merged = LdxQuery()
    for query in queries:
        merged.specs.extend(query.specs)
    return merged
