"""Partial-session (look-ahead) verification and tree completions.

The immediate per-operation compliance reward (Section 5.2 and Appendix A.3)
must decide, after every agent step, whether the ongoing session can still be
extended into a structurally compliant one.  The check enumerates *tree
completions*: every way of appending the remaining ``N - i`` "blank" nodes to
the ongoing tree while respecting the pre-order execution order (each new node
attaches to the previous node or one of its ancestors).  The number of
completions is bounded by the Catalan number ``C_N`` (Appendix A.3).
"""

from __future__ import annotations

from math import comb
from typing import Iterator

from repro.tregex.tree import TreeNode

from .ast import LdxQuery
from .verifier import verify_structure

#: Label used for the appended placeholder nodes; the structural verifier
#: treats any label as acceptable, and the operational verifier skips them.
BLANK_LABEL = ("*",)


def catalan_number(n: int) -> int:
    """The n-th Catalan number ``C_n = (2n choose n) / (n + 1)``."""
    if n < 0:
        raise ValueError("catalan_number() requires n >= 0")
    return comb(2 * n, n) // (n + 1)


def _rightmost_path(root: TreeNode) -> list[TreeNode]:
    """Nodes on the path from the last node added (pre-order) back to the root.

    In a session built in pre-order, a new operation may only attach to the
    most recently added node or one of its ancestors.
    """
    node = root
    while node.children:
        node = node.children[-1]
    path = [node]
    while node.parent is not None:
        node = node.parent
        path.append(node)
    return path


def enumerate_completions(root: TreeNode, additional: int) -> Iterator[TreeNode]:
    """Yield every completion of *root* with *additional* blank nodes.

    Each yielded tree is an independent copy; the input tree is not modified.
    The enumeration respects pre-order construction: every appended node is a
    child of the previously appended node or one of its ancestors.
    """
    if additional <= 0:
        yield root.copy()
        return

    def expand(tree: TreeNode, remaining: int) -> Iterator[TreeNode]:
        if remaining == 0:
            yield tree
            return
        for anchor in _rightmost_path(tree):
            extended = tree.copy()
            # Locate the corresponding anchor in the copy via positional path.
            path_positions: list[int] = []
            node = anchor
            while node.parent is not None:
                path_positions.append(node.parent.children.index(node))
                node = node.parent
            target = extended
            for position in reversed(path_positions):
                target = target.children[position]
            target.new_child(BLANK_LABEL)
            yield from expand(extended, remaining - 1)

    yield from expand(root.copy(), additional)


def count_completions(root: TreeNode, additional: int) -> int:
    """Number of completions (should never exceed ``catalan_number``'s bound)."""
    return sum(1 for _ in enumerate_completions(root, additional))


def can_still_comply(
    root: TreeNode,
    query: LdxQuery,
    remaining_steps: int,
    max_completions: int | None = None,
) -> bool:
    """True when some completion of the ongoing session satisfies ``struct(QX)``.

    *remaining_steps* is ``N - i``; *max_completions* optionally caps the
    number of completions examined (a practical safeguard for very early
    steps, mirroring the paper's choice to only apply the immediate reward
    from step 3 onward).
    """
    examined = 0
    for completed in enumerate_completions(root, remaining_steps):
        examined += 1
        if verify_structure(completed, query):
            return True
        if max_completions is not None and examined >= max_completions:
            # Undecided within budget: be permissive and do not penalise.
            return True
    return False
