"""Parser for LDX query text.

The concrete syntax follows the examples in the paper (Figures 1c and 3 and
Example 4.1)::

    ROOT CHILDREN <A,B>
    A LIKE [G,(?<X>.*),.*]
    B LIKE [F,(?<X>.*),.*]

    BEGIN CHILDREN {A1,A2}
    A1 LIKE [F,Stars,eq,3] and CHILDREN {B1}
        B1 LIKE [G,<COL>,<AGG_FUNC>,<AGG_COL>]
    A2 LIKE [F,Stars,eq,4] and CHILDREN {B2}
        B2 LIKE [G,<COL>,<AGG_FUNC>,<AGG_COL>]

Each non-empty line specifies one named node.  Clauses on a line are joined
with ``and``; child/descendant lists may use either ``<...>`` or ``{...}``
delimiters; indentation is ignored.
"""

from __future__ import annotations

import re

from .ast import (
    REL_CHILDREN,
    REL_DESCENDANTS,
    LdxQuery,
    NodeSpec,
    StructureClause,
)
from .errors import LdxSyntaxError
from .patterns import OperationPattern

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")
_CLAUSE_SPLIT_RE = re.compile(r"\s+and\s+", flags=re.IGNORECASE)
_STRUCTURE_RE = re.compile(
    r"^(?P<keyword>CHILDREN|DESCENDANTS)\s*(?P<open>[<{])(?P<body>.*)(?P<close>[>}])\s*$",
    flags=re.IGNORECASE | re.DOTALL,
)
_LIKE_RE = re.compile(r"^LIKE\s*(?P<pattern>\[.*\])\s*$", flags=re.IGNORECASE | re.DOTALL)


def parse_ldx(text: str) -> LdxQuery:
    """Parse LDX *text* into an :class:`~repro.ldx.ast.LdxQuery`.

    Raises :class:`LdxSyntaxError` for malformed lines and
    :class:`~repro.ldx.errors.LdxSemanticError` for dangling node references.
    """
    query = LdxQuery(source=text)
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        query.specs.append(_parse_line(line, line_number))
    if not query.specs:
        raise LdxSyntaxError("empty LDX query")
    query.validate()
    return query


def try_parse_ldx(text: str) -> LdxQuery | None:
    """Parse LDX text, returning ``None`` instead of raising on any error.

    Used by the evaluation harness: LLM-generated queries may be malformed
    and must simply score poorly rather than abort the experiment.
    """
    try:
        return parse_ldx(text)
    except Exception:  # noqa: BLE001 - any malformed output counts as a failure
        return None


def _parse_line(line: str, line_number: int) -> NodeSpec:
    parts = line.split(None, 1)
    name = parts[0]
    if not _NAME_RE.match(name):
        raise LdxSyntaxError("invalid node name", line=line_number, text=name)
    spec = NodeSpec(name=name)
    remainder = parts[1].strip() if len(parts) > 1 else ""
    if not remainder:
        return spec
    for clause_text in _split_clauses(remainder):
        _parse_clause(spec, clause_text, line_number)
    return spec


def _split_clauses(text: str) -> list[str]:
    """Split a line's clause list on ``and`` keywords outside brackets."""
    clauses: list[str] = []
    depth = 0
    current: list[str] = []
    tokens = re.split(r"(\s+and\s+)", text, flags=re.IGNORECASE)
    for token in tokens:
        if re.fullmatch(r"\s+and\s+", token, flags=re.IGNORECASE) and depth == 0:
            if current:
                clauses.append("".join(current).strip())
                current = []
            continue
        depth += token.count("[") + token.count("(") - token.count("]") - token.count(")")
        current.append(token)
    if current:
        clauses.append("".join(current).strip())
    return [clause for clause in clauses if clause]


def _parse_clause(spec: NodeSpec, clause: str, line_number: int) -> None:
    structure = _STRUCTURE_RE.match(clause)
    if structure:
        keyword = structure.group("keyword").lower()
        relation = REL_CHILDREN if keyword == "children" else REL_DESCENDANTS
        named, extra = _parse_node_list(structure.group("body"), line_number)
        spec.structure.append(StructureClause(relation=relation, named=tuple(named), extra=extra))
        return
    like = _LIKE_RE.match(clause)
    if like:
        if spec.operation is not None:
            raise LdxSyntaxError(
                f"node {spec.name!r} has multiple LIKE clauses", line=line_number, text=clause
            )
        spec.operation = OperationPattern.parse(like.group("pattern"))
        return
    raise LdxSyntaxError("unrecognised clause", line=line_number, text=clause)


def _parse_node_list(body: str, line_number: int) -> tuple[list[str], int]:
    named: list[str] = []
    extra = 0
    for item in body.split(","):
        token = item.strip()
        if not token:
            continue
        if token == "+":
            extra += 1
        elif _NAME_RE.match(token):
            named.append(token)
        else:
            raise LdxSyntaxError("invalid node reference", line=line_number, text=token)
    if not named and extra == 0:
        raise LdxSyntaxError("empty node list", line=line_number, text=body)
    return named, extra
