"""Simulated user-study rater panel (Section 7.3, Figures 5-7).

Thirty human raters are unavailable offline, so the subjective study is
simulated: each rater scores a notebook on a 1-7 scale for relevance,
informativeness and comprehensibility using measurable proxies plus bounded,
seeded rater noise.

* **Relevance** is driven by the session's compliance with the goal's gold
  LDX specification (full compliance ≈ what a user would call "answers my
  question"), with partial credit for structural/operational progress.
* **Informativeness** is driven by the generic interestingness/diversity of
  the result views and the number of extractable insights.
* **Comprehensibility** rewards short, narrative sessions with small result
  views and penalises very deep or very wide notebooks.

The panel reproduces the orderings of Figures 5-7, not the exact averages.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.explore.reward import GenericExplorationReward
from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery
from repro.metrics.compliance import compliance_report
from repro.notebook.insights import extract_insights


@dataclass(frozen=True)
class RatingCriteria:
    """The 1-7 ratings a participant produces for one notebook."""

    relevance: float
    informativeness: float
    comprehensibility: float


@dataclass
class PanelResult:
    """Averaged ratings over the simulated participant panel."""

    system: str
    dataset: str
    goal: str
    relevance: float
    informativeness: float
    comprehensibility: float
    relevant_insights: float
    ratings: list[RatingCriteria] = field(default_factory=list)


def _scale_to_seven(score: float) -> float:
    """Map a [0, 1] proxy score onto the 1-7 rating scale."""
    return 1.0 + 6.0 * max(0.0, min(1.0, score))


def _seed_for(*parts: str) -> int:
    return int(hashlib.sha256("||".join(parts).encode("utf-8")).hexdigest()[:8], 16)


class SimulatedRaterPanel:
    """A panel of simulated participants rating exploration notebooks."""

    def __init__(self, num_raters: int = 30, noise_scale: float = 0.35):
        self.num_raters = num_raters
        self.noise_scale = noise_scale
        self._scorer = GenericExplorationReward()

    # -- proxies -------------------------------------------------------------------------
    def relevance_proxy(self, session: ExplorationSession, query: LdxQuery | None) -> float:
        if query is None:
            return 0.35  # no goal to be relevant to; neutral-low
        return compliance_report(session, query).relevance_score()

    def informativeness_proxy(self, session: ExplorationSession) -> float:
        utility = self._scorer.session_score(session)
        insights = extract_insights(session)
        insight_component = min(1.0, len(insights) / 5.0)
        utility_component = max(0.0, min(1.0, utility / 1.5))
        return 0.55 * utility_component + 0.45 * insight_component

    def comprehensibility_proxy(self, session: ExplorationSession) -> float:
        nodes = session.query_nodes()
        if not nodes:
            return 0.2
        length_score = 1.0 if len(nodes) <= 8 else max(0.2, 1.0 - (len(nodes) - 8) * 0.1)
        view_sizes = [len(node.view) for node in nodes]
        small_views = sum(1 for size in view_sizes if size <= 25)
        readability = small_views / len(nodes)
        depth = max(node.depth() for node in nodes)
        depth_score = 1.0 if depth <= 3 else max(0.3, 1.0 - 0.2 * (depth - 3))
        return 0.4 * length_score + 0.35 * readability + 0.25 * depth_score

    def goal_relevant_insights(
        self, session: ExplorationSession, query: LdxQuery | None
    ) -> float:
        """Expected number of goal-relevant insights a participant extracts."""
        insights = extract_insights(session)
        if query is None:
            return min(1.0, 0.15 * len(insights))
        report = compliance_report(session, query)
        relevance = report.relevance_score()
        # Contrast insights require the comparison structure the goal asked for;
        # they only count as relevant when the session actually realises it.
        weighted = 0.0
        for insight in insights:
            weight = 1.0 if insight.kind == "contrast" else 0.6
            weighted += weight
        return min(6.0, weighted * relevance)

    # -- panel ----------------------------------------------------------------------------
    def rate(
        self,
        system: str,
        session: ExplorationSession,
        goal: str,
        query: LdxQuery | None,
        dataset_name: str,
        comprehensibility_bonus: float = 0.0,
    ) -> PanelResult:
        """Simulate the panel rating one notebook."""
        relevance = self.relevance_proxy(session, query)
        informativeness = self.informativeness_proxy(session)
        comprehensibility = min(
            1.0, self.comprehensibility_proxy(session) + comprehensibility_bonus
        )
        rng = np.random.default_rng(_seed_for(system, dataset_name, goal))
        ratings = []
        for _ in range(self.num_raters):
            noise = rng.normal(0.0, self.noise_scale, size=3)
            ratings.append(
                RatingCriteria(
                    relevance=float(np.clip(_scale_to_seven(relevance) + noise[0], 1, 7)),
                    informativeness=float(
                        np.clip(_scale_to_seven(informativeness) + noise[1], 1, 7)
                    ),
                    comprehensibility=float(
                        np.clip(_scale_to_seven(comprehensibility) + noise[2], 1, 7)
                    ),
                )
            )
        return PanelResult(
            system=system,
            dataset=dataset_name,
            goal=goal,
            relevance=float(np.mean([r.relevance for r in ratings])),
            informativeness=float(np.mean([r.informativeness for r in ratings])),
            comprehensibility=float(np.mean([r.comprehensibility for r in ratings])),
            relevant_insights=self.goal_relevant_insights(session, query),
            ratings=ratings,
        )
