"""The user-study protocol (Section 7.3): systems × goals × datasets.

Runs every compared system (LINX, ATENA, ChatGPT-direct, Google Sheets
Explorer, human expert) on the study workload — four goals per dataset —
and aggregates the simulated panel's ratings into the series plotted in
Figures 5-7 and the per-system insight counts of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.atena import AtenaAgent, AtenaConfig
from repro.baselines.chatgpt_direct import ChatGptDirectBaseline
from repro.baselines.human_expert import HumanExpertBaseline
from repro.baselines.sheets_explorer import SheetsExplorerBaseline, specification_from_ldx
from repro.bench.generator import Benchmark, BenchmarkInstance
from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent
from repro.dataframe.table import DataTable
from repro.datasets.registry import load_dataset
from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery

from .raters import PanelResult, SimulatedRaterPanel

#: System names, in the order used by the figures.
SYSTEMS: tuple[str, ...] = ("Human Expert", "LINX", "ATENA", "ChatGPT", "Google Sheets")


@dataclass(frozen=True)
class StudyTask:
    """One study task: a goal with its gold LDX over one dataset."""

    dataset: str
    goal: str
    ldx_text: str
    meta_goal_id: int = 0

    @classmethod
    def from_instance(cls, instance: BenchmarkInstance) -> "StudyTask":
        return cls(
            dataset=instance.dataset,
            goal=instance.goal,
            ldx_text=instance.ldx_text,
            meta_goal_id=instance.meta_goal_id,
        )


def default_study_tasks(benchmark: Benchmark, per_dataset: int = 4) -> list[StudyTask]:
    """Four goals per dataset, spread over distinct meta-goals (the paper's 12 tasks)."""
    tasks: list[StudyTask] = []
    for dataset in ("netflix", "flights", "playstore"):
        seen_meta: set[int] = set()
        for instance in benchmark.by_dataset(dataset):
            if instance.meta_goal_id in seen_meta:
                continue
            seen_meta.add(instance.meta_goal_id)
            tasks.append(StudyTask.from_instance(instance))
            if len(seen_meta) >= per_dataset:
                break
    return tasks


@dataclass
class StudyOutcome:
    """All panel results, indexable by system and dataset."""

    results: list[PanelResult] = field(default_factory=list)

    def by_system(self, system: str) -> list[PanelResult]:
        return [r for r in self.results if r.system == system]

    def mean(self, system: str, attribute: str, dataset: str | None = None) -> float:
        values = [
            getattr(result, attribute)
            for result in self.by_system(system)
            if dataset is None or result.dataset == dataset
        ]
        return sum(values) / len(values) if values else 0.0

    def relevance_by_dataset(self) -> dict[str, dict[str, float]]:
        """Figure 5: system -> dataset -> mean relevance."""
        datasets = sorted({result.dataset for result in self.results})
        return {
            system: {dataset: self.mean(system, "relevance", dataset) for dataset in datasets}
            for system in SYSTEMS
        }

    def informativeness_and_comprehensibility(self) -> dict[str, dict[str, float]]:
        """Figure 7: system -> {informativeness, comprehensibility}."""
        return {
            system: {
                "informativeness": self.mean(system, "informativeness"),
                "comprehensibility": self.mean(system, "comprehensibility"),
            }
            for system in SYSTEMS
        }

    def insights_per_system(self) -> dict[str, float]:
        """Figure 6: mean number of goal-relevant insights per system."""
        return {system: self.mean(system, "relevant_insights") for system in SYSTEMS}


SessionGenerator = Callable[[DataTable, StudyTask], Optional[ExplorationSession]]


class UserStudy:
    """Runs the full study: generate sessions per system and collect panel ratings."""

    def __init__(
        self,
        panel: SimulatedRaterPanel | None = None,
        linx_episodes: int = 120,
        atena_episodes: int = 80,
        dataset_rows: int | None = 400,
        systems: tuple[str, ...] = SYSTEMS,
    ):
        self.panel = panel or SimulatedRaterPanel()
        self.linx_episodes = linx_episodes
        self.atena_episodes = atena_episodes
        self.dataset_rows = dataset_rows
        self.systems = systems
        self._atena_cache: dict[str, ExplorationSession] = {}

    # -- session generation per system --------------------------------------------------
    def _dataset(self, name: str) -> DataTable:
        return load_dataset(name, num_rows=self.dataset_rows)

    def _generate(self, system: str, task: StudyTask) -> Optional[ExplorationSession]:
        dataset = self._dataset(task.dataset)
        query = LdxQuery
        if system == "LINX":
            agent = LinxCdrlAgent(
                dataset, task.ldx_text, config=CdrlConfig(episodes=self.linx_episodes)
            )
            return agent.run().session
        if system == "ATENA":
            # ATENA is goal-agnostic: one session per dataset regardless of the goal.
            if task.dataset not in self._atena_cache:
                agent = AtenaAgent(dataset, config=AtenaConfig(episodes=self.atena_episodes))
                self._atena_cache[task.dataset] = agent.run().session
            return self._atena_cache[task.dataset]
        if system == "ChatGPT":
            return ChatGptDirectBaseline().generate(dataset, task.goal)
        if system == "Google Sheets":
            from repro.ldx.parser import parse_ldx

            specification = specification_from_ldx(parse_ldx(task.ldx_text), dataset)
            return SheetsExplorerBaseline().generate(dataset, specification)
        if system == "Human Expert":
            return HumanExpertBaseline().generate(dataset, task.ldx_text)
        raise ValueError(f"unknown system {system!r}")

    # -- protocol -------------------------------------------------------------------------
    def run(self, tasks: list[StudyTask]) -> StudyOutcome:
        """Run every system on every task and collect the panel ratings."""
        from repro.ldx.parser import parse_ldx

        outcome = StudyOutcome()
        for task in tasks:
            query = parse_ldx(task.ldx_text)
            for system in self.systems:
                session = self._generate(system, task)
                if session is None:
                    continue
                # ChatGPT notebooks come with verbose explanations: the paper notes
                # their comprehensibility benefits from simple code and documentation.
                comprehensibility_bonus = 0.15 if system == "ChatGPT" else 0.0
                outcome.results.append(
                    self.panel.rate(
                        system=system,
                        session=session,
                        goal=task.goal,
                        query=query,
                        dataset_name=task.dataset,
                        comprehensibility_bonus=comprehensibility_bonus,
                    )
                )
        return outcome
