"""Simulated user study: rater panel and protocol."""

from .protocol import (
    SYSTEMS,
    StudyOutcome,
    StudyTask,
    UserStudy,
    default_study_tasks,
)
from .raters import PanelResult, RatingCriteria, SimulatedRaterPanel

__all__ = [
    "PanelResult",
    "RatingCriteria",
    "SYSTEMS",
    "SimulatedRaterPanel",
    "StudyOutcome",
    "StudyTask",
    "UserStudy",
    "default_study_tasks",
]
