"""String distances used to evaluate LDX derivation quality (Section 7.2).

The paper's first metric is the **two-way Levenshtein distance** ``lev2``:
the Levenshtein score is computed separately for structural and operational
specifications (so reordering operational specs is not penalised), both are
normalised, and the final score is the harmonic mean of the inverses of the
two distances.  We report the complement (``1 - distance``) so higher is
better, matching Table 2.
"""

from __future__ import annotations

from repro.ldx.ast import LdxQuery
from repro.ldx.parser import try_parse_ldx


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance between two strings (insert / delete / substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalised_levenshtein(a: str, b: str) -> float:
    """Edit distance normalised by the longer string's length (0 = identical)."""
    if not a and not b:
        return 0.0
    return levenshtein(a, b) / max(len(a), len(b))


def _structural_text(query: LdxQuery) -> str:
    """Canonical rendering of the structural clauses only."""
    parts = []
    for spec in query.structural_subset().specs:
        for clause in spec.structure:
            names = ",".join(sorted(clause.named) + ["+"] * clause.extra)
            parts.append(f"{spec.name} {clause.relation} {names}")
    return " | ".join(sorted(parts))


def _operational_texts(query: LdxQuery) -> list[str]:
    """Canonical renderings of each operational specification."""
    return [spec.operation.render() for spec in query.operational_specs()]


def structural_distance(query_a: LdxQuery, query_b: LdxQuery) -> float:
    """Normalised Levenshtein over the structural specifications."""
    return normalised_levenshtein(_structural_text(query_a), _structural_text(query_b))


def operational_distance(query_a: LdxQuery, query_b: LdxQuery) -> float:
    """Mean best-match Levenshtein over operational specifications.

    For every operational spec in ``query_a``, take the distance to the most
    similar spec in ``query_b`` and average (the paper's
    ``1/|Q_opr| * sum_o min_o' lev(o, o')``).
    """
    ops_a = _operational_texts(query_a)
    ops_b = _operational_texts(query_b)
    if not ops_a and not ops_b:
        return 0.0
    if not ops_a or not ops_b:
        return 1.0
    total = 0.0
    for op_a in ops_a:
        total += min(normalised_levenshtein(op_a, op_b) for op_b in ops_b)
    return total / len(ops_a)


def two_way_levenshtein(query_a: LdxQuery, query_b: LdxQuery) -> float:
    """``lev2`` distance: harmonic combination of structural and operational distances."""
    structural = structural_distance(query_a, query_b)
    operational = operational_distance(query_a, query_b)
    # Harmonic mean of the inverses of the scores, expressed directly on the
    # similarity scale and converted back to a distance.
    structural_similarity = 1.0 - structural
    operational_similarity = 1.0 - operational
    if structural_similarity + operational_similarity == 0:
        return 1.0
    similarity = (
        2 * structural_similarity * operational_similarity
        / (structural_similarity + operational_similarity)
        if (structural_similarity > 0 and operational_similarity > 0)
        else 0.0
    )
    return 1.0 - similarity


def lev2_score(gold: LdxQuery | str, predicted: LdxQuery | str | None) -> float:
    """``1 - lev2``: the similarity score reported in Table 2 (higher is better).

    Unparsable predictions score 0.
    """
    gold_query = gold if isinstance(gold, LdxQuery) else try_parse_ldx(gold)
    if gold_query is None:
        raise ValueError("gold LDX query does not parse")
    if predicted is None:
        return 0.0
    predicted_query = (
        predicted if isinstance(predicted, LdxQuery) else try_parse_ldx(predicted)
    )
    if predicted_query is None:
        return 0.0
    return 1.0 - two_way_levenshtein(gold_query, predicted_query)
