"""Exploration tree edit distance (xTED, Section 7.2 and Appendix B.2).

Implements the Zhang–Shasha ordered tree edit distance with a dedicated
label distance for exploration operations [46]: operation kind mismatches
cost 1, parameter mismatches cost proportionally to the number of differing
fields, and the relation kind (children vs descendants, Appendix B.2) adds a
small penalty.  LDX queries are converted to their minimal trees with
continuity variables masked before comparison.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ldx.ast import LdxQuery
from repro.ldx.parser import try_parse_ldx
from repro.tregex.tree import TreeNode

LabelDistance = Callable[[Any, Any], float]


def operation_label_distance(label_a: Any, label_b: Any) -> float:
    """Distance in [0, 1] between two exploration-operation labels.

    Labels are tuples ``(kind, field..., relation?)``; the kind dominates the
    distance, the remaining fields contribute proportionally and a differing
    child-relation kind adds 0.2 (capped at 1).
    """
    fields_a = tuple(str(part) for part in (label_a if isinstance(label_a, (tuple, list)) else (label_a,)))
    fields_b = tuple(str(part) for part in (label_b if isinstance(label_b, (tuple, list)) else (label_b,)))
    if not fields_a or not fields_b:
        return 1.0
    if fields_a[0] != fields_b[0]:
        return 1.0
    relation_penalty = 0.0
    params_a, params_b = list(fields_a[1:]), list(fields_b[1:])
    relations = ("children", "descendants")
    if params_a and params_a[-1] in relations and params_b and params_b[-1] in relations:
        if params_a[-1] != params_b[-1]:
            relation_penalty = 0.2
        params_a, params_b = params_a[:-1], params_b[:-1]
    length = max(len(params_a), len(params_b))
    if length == 0:
        return min(1.0, relation_penalty)
    differing = sum(
        1
        for i in range(length)
        if (params_a[i] if i < len(params_a) else None) != (params_b[i] if i < len(params_b) else None)
    )
    return min(1.0, 0.8 * differing / length + relation_penalty)


def tree_edit_distance(
    root_a: TreeNode,
    root_b: TreeNode,
    label_distance: LabelDistance = operation_label_distance,
) -> float:
    """Zhang–Shasha ordered tree edit distance with unit insert/delete costs."""
    nodes_a = _postorder(root_a)
    nodes_b = _postorder(root_b)
    leftmost_a = _leftmost_indices(nodes_a)
    leftmost_b = _leftmost_indices(nodes_b)
    keyroots_a = _keyroots(nodes_a, leftmost_a)
    keyroots_b = _keyroots(nodes_b, leftmost_b)

    size_a, size_b = len(nodes_a), len(nodes_b)
    distance = [[0.0] * size_b for _ in range(size_a)]

    for key_a in keyroots_a:
        for key_b in keyroots_b:
            _compute_forest_distance(
                key_a, key_b, nodes_a, nodes_b, leftmost_a, leftmost_b, distance, label_distance
            )
    return distance[size_a - 1][size_b - 1]


def _compute_forest_distance(
    key_a: int,
    key_b: int,
    nodes_a: list[TreeNode],
    nodes_b: list[TreeNode],
    leftmost_a: list[int],
    leftmost_b: list[int],
    distance: list[list[float]],
    label_distance: LabelDistance,
) -> None:
    la, lb = leftmost_a[key_a], leftmost_b[key_b]
    rows = key_a - la + 2
    cols = key_b - lb + 2
    forest = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        forest[i][0] = forest[i - 1][0] + 1.0
    for j in range(1, cols):
        forest[0][j] = forest[0][j - 1] + 1.0
    for i in range(1, rows):
        for j in range(1, cols):
            node_i = la + i - 1
            node_j = lb + j - 1
            if leftmost_a[node_i] == la and leftmost_b[node_j] == lb:
                cost = label_distance(nodes_a[node_i].label, nodes_b[node_j].label)
                forest[i][j] = min(
                    forest[i - 1][j] + 1.0,
                    forest[i][j - 1] + 1.0,
                    forest[i - 1][j - 1] + cost,
                )
                distance[node_i][node_j] = forest[i][j]
            else:
                forest[i][j] = min(
                    forest[i - 1][j] + 1.0,
                    forest[i][j - 1] + 1.0,
                    forest[leftmost_a[node_i] - la][leftmost_b[node_j] - lb]
                    + distance[node_i][node_j],
                )


def _postorder(root: TreeNode) -> list[TreeNode]:
    result: list[TreeNode] = []

    def visit(node: TreeNode) -> None:
        for child in node.children:
            visit(child)
        result.append(node)

    visit(root)
    return result


def _leftmost_indices(postorder: list[TreeNode]) -> list[int]:
    index_of = {id(node): i for i, node in enumerate(postorder)}

    def leftmost(node: TreeNode) -> TreeNode:
        while node.children:
            node = node.children[0]
        return node

    return [index_of[id(leftmost(node))] for node in postorder]


def _keyroots(postorder: list[TreeNode], leftmost: list[int]) -> list[int]:
    seen: dict[int, int] = {}
    for index in range(len(postorder)):
        seen[leftmost[index]] = index
    return sorted(seen.values())


def normalised_tree_edit_distance(root_a: TreeNode, root_b: TreeNode) -> float:
    """Tree edit distance normalised by the larger tree size (0 = identical)."""
    distance = tree_edit_distance(root_a, root_b)
    size = max(root_a.size(), root_b.size())
    return distance / size if size else 0.0


def xted_score(gold: LdxQuery | str, predicted: LdxQuery | str | None) -> float:
    """``1 - xTED`` over the minimal trees of two LDX queries (higher is better).

    Continuity variables are masked to category identifiers so naming
    differences are not penalised (Appendix B.2).  Unparsable predictions
    score 0.
    """
    gold_query = gold if isinstance(gold, LdxQuery) else try_parse_ldx(gold)
    if gold_query is None:
        raise ValueError("gold LDX query does not parse")
    if predicted is None:
        return 0.0
    predicted_query = (
        predicted if isinstance(predicted, LdxQuery) else try_parse_ldx(predicted)
    )
    if predicted_query is None:
        return 0.0
    tree_gold = gold_query.minimal_tree(mask_continuity=True)
    tree_predicted = predicted_query.minimal_tree(mask_continuity=True)
    return 1.0 - normalised_tree_edit_distance(tree_gold, tree_predicted)
