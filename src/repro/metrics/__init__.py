"""Evaluation metrics: lev2, xTED and session compliance reports."""

from .compliance import ComplianceReport, compliance_report
from .levenshtein import (
    lev2_score,
    levenshtein,
    normalised_levenshtein,
    operational_distance,
    structural_distance,
    two_way_levenshtein,
)
from .tree_edit import (
    normalised_tree_edit_distance,
    operation_label_distance,
    tree_edit_distance,
    xted_score,
)

__all__ = [
    "ComplianceReport",
    "compliance_report",
    "lev2_score",
    "levenshtein",
    "normalised_levenshtein",
    "normalised_tree_edit_distance",
    "operation_label_distance",
    "operational_distance",
    "structural_distance",
    "tree_edit_distance",
    "two_way_levenshtein",
    "xted_score",
]
