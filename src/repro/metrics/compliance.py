"""Session-level compliance and relevance metrics used by the study harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery
from repro.ldx.verifier import (
    operational_match_ratio,
    partial_structural_ratio,
    verify,
    verify_structure,
)


@dataclass(frozen=True)
class ComplianceReport:
    """Compliance facts about one generated session with respect to a gold query."""

    fully_compliant: bool
    structurally_compliant: bool
    operational_ratio: float
    structural_ratio: float

    def relevance_score(self) -> float:
        """A [0, 1] relevance proxy combining structure and operations.

        Full compliance scores 1; otherwise the score interpolates between
        structural progress (weight 0.4) and operational satisfaction
        (weight 0.6, only available once structure holds).
        """
        if self.fully_compliant:
            return 1.0
        if self.structurally_compliant:
            return 0.4 + 0.6 * self.operational_ratio
        return 0.4 * self.structural_ratio


def compliance_report(session: ExplorationSession, query: LdxQuery) -> ComplianceReport:
    """Evaluate *session* against *query* and return a :class:`ComplianceReport`."""
    tree = session.to_tree()
    full = verify(tree, query)
    structural = verify_structure(tree, query)
    return ComplianceReport(
        fully_compliant=full,
        structurally_compliant=structural,
        operational_ratio=operational_match_ratio(tree, query) if structural else 0.0,
        structural_ratio=partial_structural_ratio(tree, query),
    )
