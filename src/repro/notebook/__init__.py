"""Notebook rendering and insight extraction."""

from .insights import Insight, extract_insights
from .render import Notebook, NotebookCell, render_notebook, render_table_notebook

__all__ = [
    "Insight",
    "Notebook",
    "NotebookCell",
    "extract_insights",
    "render_notebook",
    "render_table_notebook",
]
