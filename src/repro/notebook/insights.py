"""Insight extraction from exploration sessions.

The objective user study (Section 7.3, Figure 6 and Table 3) counts how many
goal-relevant insights users can derive from a notebook.  To simulate that
study offline we extract candidate insights mechanically from each session:
dominant groups, distribution shifts between sibling comparison branches,
and subset-vs-rest contrasts.  Each insight records which session nodes it
came from so relevance can be assessed against the goal's LDX specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.operations import FilterOperation, GroupAggOperation
from repro.explore.session import ExplorationSession, SessionNode


@dataclass(frozen=True)
class Insight:
    """One extracted insight with a relevance-tracking provenance."""

    text: str
    kind: str
    source_nodes: tuple[int, ...] = field(default_factory=tuple)
    strength: float = 0.0


def _dominant_group_insights(node: SessionNode) -> list[Insight]:
    """Insights of the form "most X are Y" from a group-by result."""
    insights: list[Insight] = []
    view = node.view
    if not isinstance(node.operation, GroupAggOperation) or len(view) < 2:
        return insights
    value_col = view.columns[-1]
    key_col = view.columns[0]
    values = [v for v in view.column(value_col).non_null() if isinstance(v, (int, float))]
    if not values:
        return insights
    total = sum(values)
    top = view.row(0)
    if total > 0 and isinstance(top[value_col], (int, float)):
        share = top[value_col] / total
        if share >= 0.4:
            context = _filter_context(node)
            insights.append(
                Insight(
                    text=(
                        f"{context}the most common {key_col} is {top[key_col]} "
                        f"({share:.0%} of the {node.operation.agg_func} of {node.operation.agg_attr})"
                    ),
                    kind="dominant_group",
                    source_nodes=(node.step_index,),
                    strength=share,
                )
            )
    return insights


def _filter_context(node: SessionNode) -> str:
    filters = [
        ancestor.operation.describe().replace("FILTER ", "")
        for ancestor in node.ancestors()
        if isinstance(ancestor.operation, FilterOperation)
    ]
    if not filters:
        return ""
    return "For " + " and ".join(reversed(filters)) + ", "


def _comparison_insights(session: ExplorationSession) -> list[Insight]:
    """Contrast sibling group-by results under different filters (the g1 pattern)."""
    insights: list[Insight] = []
    grouped: list[SessionNode] = [
        node
        for node in session.query_nodes()
        if isinstance(node.operation, GroupAggOperation)
        and node.parent is not None
        and isinstance(node.parent.operation, FilterOperation)
    ]
    for i, node_a in enumerate(grouped):
        for node_b in grouped[i + 1 :]:
            op_a, op_b = node_a.operation, node_b.operation
            if (op_a.group_attr, op_a.agg_func) != (op_b.group_attr, op_b.agg_func):
                continue
            parent_a, parent_b = node_a.parent.operation, node_b.parent.operation
            if parent_a.attr != parent_b.attr:
                continue
            top_a = _top_key(node_a)
            top_b = _top_key(node_b)
            if top_a is None or top_b is None or top_a == top_b:
                continue
            insights.append(
                Insight(
                    text=(
                        f"While for {parent_a.describe().replace('FILTER ', '')} the most common "
                        f"{op_a.group_attr} is {top_a}, for "
                        f"{parent_b.describe().replace('FILTER ', '')} it is {top_b}"
                    ),
                    kind="contrast",
                    source_nodes=(node_a.step_index, node_b.step_index),
                    strength=1.0,
                )
            )
    return insights


def _top_key(node: SessionNode):
    view = node.view
    if len(view) == 0:
        return None
    return view.row(0)[view.columns[0]]


def _subset_size_insights(session: ExplorationSession) -> list[Insight]:
    insights: list[Insight] = []
    for node in session.query_nodes():
        if not isinstance(node.operation, FilterOperation) or node.parent is None:
            continue
        total = len(node.parent.view)
        if total == 0:
            continue
        share = len(node.view) / total
        if 0.0 < share <= 0.25 or share >= 0.75:
            insights.append(
                Insight(
                    text=(
                        f"Rows with {node.operation.describe().replace('FILTER ', '')} account for "
                        f"{share:.0%} of the parent view ({len(node.view)} of {total})"
                    ),
                    kind="subset_size",
                    source_nodes=(node.step_index,),
                    strength=abs(share - 0.5),
                )
            )
    return insights


def extract_insights(session: ExplorationSession, max_insights: int = 12) -> list[Insight]:
    """All candidate insights of a session, strongest first."""
    insights: list[Insight] = []
    insights.extend(_comparison_insights(session))
    for node in session.query_nodes():
        insights.extend(_dominant_group_insights(node))
    insights.extend(_subset_size_insights(session))
    insights.sort(key=lambda insight: insight.strength, reverse=True)
    deduplicated: list[Insight] = []
    seen_text: set[str] = set()
    for insight in insights:
        if insight.text in seen_text:
            continue
        seen_text.add(insight.text)
        deduplicated.append(insight)
    return deduplicated[:max_insights]
