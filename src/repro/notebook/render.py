"""Rendering exploration sessions as notebooks.

LINX presents its output session in a scientific-notebook interface
(Section 1).  This module renders an :class:`ExplorationSession` as markdown
text or as a Jupyter ``.ipynb`` JSON document: one cell per query operation,
showing the equivalent pandas-style code, a preview of the result view and
the basic statistics an analyst would glance at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.dataframe.table import DataTable
from repro.explore.operations import FilterOperation, GroupAggOperation
from repro.explore.session import ExplorationSession, SessionNode


@dataclass
class NotebookCell:
    """One rendered notebook cell: code, preview table and commentary."""

    title: str
    code: str
    preview: list[dict[str, Any]] = field(default_factory=list)
    commentary: str = ""


@dataclass
class Notebook:
    """A rendered exploration notebook."""

    dataset_name: str
    goal: str = ""
    cells: list[NotebookCell] = field(default_factory=list)

    def to_markdown(self) -> str:
        lines = [f"# Exploration notebook — {self.dataset_name}"]
        if self.goal:
            lines.append(f"**Analysis goal:** {self.goal}")
        for index, cell in enumerate(self.cells, start=1):
            lines.append(f"\n## Step {index}: {cell.title}")
            lines.append("```python")
            lines.append(cell.code)
            lines.append("```")
            if cell.preview:
                lines.append(_markdown_table(cell.preview))
            if cell.commentary:
                lines.append(f"*{cell.commentary}*")
        return "\n".join(lines)

    def to_ipynb(self) -> dict[str, Any]:
        """A minimal but valid ``.ipynb`` (nbformat 4) JSON document."""
        notebook_cells: list[dict[str, Any]] = []
        header = f"# Exploration notebook — {self.dataset_name}\n"
        if self.goal:
            header += f"\n**Analysis goal:** {self.goal}"
        notebook_cells.append(
            {"cell_type": "markdown", "metadata": {}, "source": header}
        )
        for index, cell in enumerate(self.cells, start=1):
            notebook_cells.append(
                {
                    "cell_type": "markdown",
                    "metadata": {},
                    "source": f"## Step {index}: {cell.title}\n{cell.commentary}",
                }
            )
            output_text = _markdown_table(cell.preview) if cell.preview else ""
            notebook_cells.append(
                {
                    "cell_type": "code",
                    "metadata": {},
                    "execution_count": index,
                    "source": cell.code,
                    "outputs": (
                        [
                            {
                                "output_type": "stream",
                                "name": "stdout",
                                "text": output_text,
                            }
                        ]
                        if output_text
                        else []
                    ),
                }
            )
        return {
            "nbformat": 4,
            "nbformat_minor": 5,
            "metadata": {"language_info": {"name": "python"}},
            "cells": notebook_cells,
        }

    def to_ipynb_json(self) -> str:
        return json.dumps(self.to_ipynb(), indent=1)


def _markdown_table(rows: list[dict[str, Any]], max_rows: int = 10) -> str:
    if not rows:
        return ""
    columns = list(rows[0])
    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    for row in rows[:max_rows]:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    if len(rows) > max_rows:
        lines.append(f"| ... ({len(rows) - max_rows} more rows) | " + " |" * (len(columns) - 1))
    return "\n".join(lines)


def _pandas_code_for(node: SessionNode, parent_variable: str, variable: str) -> str:
    operation = node.operation
    if isinstance(operation, FilterOperation):
        symbol = {"eq": "==", "neq": "!=", "gt": ">", "ge": ">=", "lt": "<", "le": "<="}.get(
            operation.op
        )
        if symbol:
            term = operation.term
            term_repr = repr(term)
            return f"{variable} = {parent_variable}[{parent_variable}[{operation.attr!r}] {symbol} {term_repr}]"
        return (
            f"{variable} = {parent_variable}[{parent_variable}[{operation.attr!r}]"
            f".str.contains({operation.term!r}, case=False)]"
        )
    if isinstance(operation, GroupAggOperation):
        return (
            f"{variable} = {parent_variable}.groupby({operation.group_attr!r})"
            f"[{operation.agg_attr!r}].{operation.agg_func}()"
        )
    return f"{variable} = {parent_variable}"


def _commentary(node: SessionNode) -> str:
    view = node.view
    operation = node.operation
    if isinstance(operation, FilterOperation) and node.parent is not None:
        total = max(1, len(node.parent.view))
        share = 100.0 * len(view) / total
        return (
            f"The filter keeps {len(view)} of {total} rows ({share:.1f}% of the parent view)."
        )
    if isinstance(operation, GroupAggOperation) and len(view) > 0:
        first = view.row(0)
        key_col = view.columns[0]
        value_col = view.columns[-1]
        return (
            f"{len(view)} groups; the largest is {key_col}={first[key_col]} "
            f"with {value_col}={first[value_col]}."
        )
    return ""


def render_notebook(
    session: ExplorationSession,
    goal: str = "",
    preview_rows: int = 8,
) -> Notebook:
    """Render *session* as a :class:`Notebook` (one cell per query operation)."""
    notebook = Notebook(dataset_name=session.dataset.name, goal=goal)
    variables: dict[int, str] = {id(session.root): "df"}
    for index, node in enumerate(session.query_nodes(), start=1):
        variable = f"view_{index}"
        variables[id(node)] = variable
        parent_variable = variables.get(id(node.parent), "df")
        preview = node.view.head(preview_rows).rows()
        notebook.cells.append(
            NotebookCell(
                title=node.operation.describe(),
                code=_pandas_code_for(node, parent_variable, variable),
                preview=preview,
                commentary=_commentary(node),
            )
        )
    return notebook


def render_table_notebook(table: DataTable, title: str) -> Notebook:
    """Render a flat table as a single-cell notebook (used by simple baselines)."""
    notebook = Notebook(dataset_name=table.name, goal=title)
    notebook.cells.append(
        NotebookCell(title=title, code="df.describe()", preview=table.head(10).rows())
    )
    return notebook
