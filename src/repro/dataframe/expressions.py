"""Filter predicates over columns.

LINX filter operations are parametric triples ``[F, attr, op, term]`` where
``op`` is one of a small closed set of comparison operators (Section 3 of
the paper).  This module implements those operators as composable predicate
objects that evaluate against a :class:`~repro.dataframe.column.Column`.

:meth:`Predicate.mask` is the vectorised columnar path: typed columns are
compared buffer-at-a-time with numpy kernels and return a boolean ndarray.
Object-backed (coercion-bypassing) columns fall back to the per-cell
:meth:`Predicate.evaluate` reference, so semantics are identical either way
-- nulls never match, numeric comparison happens when both sides parse as
numbers, and textual operators are case-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .column import Column
from .errors import FilterError

#: Canonical operator names supported by the engine, in the order used by the
#: LINX action space.
FILTER_OPERATORS: tuple[str, ...] = (
    "eq",
    "neq",
    "gt",
    "ge",
    "lt",
    "le",
    "contains",
    "startswith",
    "endswith",
)

#: Aliases accepted when parsing LDX or PyLDX text.
OPERATOR_ALIASES: dict[str, str] = {
    "==": "eq",
    "=": "eq",
    "eq": "eq",
    "!=": "neq",
    "ne": "neq",
    "neq": "neq",
    "<>": "neq",
    ">": "gt",
    "gt": "gt",
    ">=": "ge",
    "ge": "ge",
    "geq": "ge",
    "<": "lt",
    "lt": "lt",
    "<=": "le",
    "le": "le",
    "leq": "le",
    "contains": "contains",
    "in": "contains",
    "startswith": "startswith",
    "starts_with": "startswith",
    "endswith": "endswith",
    "ends_with": "endswith",
}


def canonical_operator(op: str) -> str:
    """Map an operator spelling (``=``, ``!=``, ``eq`` ...) to its canonical name."""
    key = str(op).strip().lower()
    if key not in OPERATOR_ALIASES:
        raise FilterError(f"unknown filter operator {op!r}")
    return OPERATOR_ALIASES[key]


def _compare_numeric(op: str, value: Any, term: Any) -> bool:
    try:
        left = float(value)
        right = float(term)
    except (TypeError, ValueError):
        return False
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    raise FilterError(f"unsupported numeric operator {op!r}")


#: Vectorised comparison kernels used by :meth:`Predicate.mask`.
_NUMERIC_UFUNCS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "gt": np.greater,
    "ge": np.greater_equal,
    "lt": np.less,
    "le": np.less_equal,
}


def _values_equal(value: Any, term: Any) -> bool:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        try:
            return float(value) == float(term)
        except (TypeError, ValueError):
            return str(value) == str(term)
    return str(value) == str(term)


@dataclass(frozen=True)
class Predicate:
    """A single-column filter predicate ``column <op> term``."""

    column: str
    op: str
    term: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", canonical_operator(self.op))

    def evaluate(self, value: Any) -> bool:
        """Evaluate the predicate against a single cell value.

        Nulls never satisfy a predicate, matching SQL three-valued logic
        collapsed to False.  This is the reference semantics the vectorised
        :meth:`mask` reproduces exactly.
        """
        if value is None:
            return False
        op = self.op
        term = self.term
        if op == "eq":
            return _values_equal(value, term)
        if op == "neq":
            return not _values_equal(value, term)
        if op in ("gt", "ge", "lt", "le"):
            return _compare_numeric(op, value, term)
        text = str(value).lower()
        needle = str(term).lower()
        if op == "contains":
            return needle in text
        if op == "startswith":
            return text.startswith(needle)
        if op == "endswith":
            return text.endswith(needle)
        raise FilterError(f"unsupported operator {op!r}")

    # -- columnar evaluation -------------------------------------------------------
    def mask_reference(self, values: Sequence[Any]) -> list[bool]:
        """Pure-Python per-cell evaluation (the reference for property tests)."""
        return [self.evaluate(value) for value in values]

    def mask(self, column: Column) -> np.ndarray:
        """Evaluate the predicate over every row of *column* (vectorised).

        Returns a boolean ndarray.  Typed int/float/str buffers use numpy
        comparison kernels; object-backed mixed columns dispatch per cell via
        :meth:`evaluate` so dtype-bypassed columns behave identically.
        """
        data, null_mask = column.buffers()
        if data.dtype == object:
            return np.asarray(self.mask_reference(column.values), dtype=bool)
        op = self.op
        term = self.term
        valid = ~null_mask
        n = len(data)
        if op in ("gt", "ge", "lt", "le"):
            try:
                rhs = float(term)
            except (TypeError, ValueError):
                return np.zeros(n, dtype=bool)
            compare = _NUMERIC_UFUNCS[op]
            if column.is_numeric:
                out = compare(data, rhs)
                out &= valid
                return out
            # String columns: cells that parse as numbers participate, the
            # rest are False -- try a wholesale cast, fall back per cell.
            out = np.zeros(n, dtype=bool)
            sub = data[valid]
            try:
                nums = sub.astype(np.float64)
            except (TypeError, ValueError):
                out[valid] = [
                    _compare_numeric(op, v, rhs) for v in sub.tolist()
                ]
            else:
                out[valid] = compare(nums, rhs)
            return out
        if op in ("eq", "neq"):
            term_str = str(term)
            if column.is_numeric:
                try:
                    term_num = float(term)
                except (TypeError, ValueError):
                    term_num = None
                if term_num is not None:
                    out = (data == term_num) if op == "eq" else (data != term_num)
                else:
                    strings = data.astype(str)
                    out = (strings == term_str) if op == "eq" else (strings != term_str)
            else:
                out = (data == term_str) if op == "eq" else (data != term_str)
            out &= valid
            return out
        needle = str(term).lower()
        lowered = column._lower_strings()
        if op == "contains":
            out = np.char.find(lowered, needle) >= 0
        elif op == "startswith":
            out = np.char.startswith(lowered, needle)
        elif op == "endswith":
            out = np.char.endswith(lowered, needle)
        else:
            raise FilterError(f"unsupported operator {op!r}")
        out &= valid
        return out

    def describe(self) -> str:
        """Human readable rendering used in notebooks, e.g. ``country = India``."""
        symbol = {
            "eq": "=",
            "neq": "!=",
            "gt": ">",
            "ge": ">=",
            "lt": "<",
            "le": "<=",
            "contains": "contains",
            "startswith": "starts with",
            "endswith": "ends with",
        }[self.op]
        return f"{self.column} {symbol} {self.term}"


def combine_and(masks: list) -> np.ndarray:
    """AND-combine several row masks (lists or boolean ndarrays) of equal length."""
    return _combine(masks, np.logical_and, "combine_and")


def combine_or(masks: list) -> np.ndarray:
    """OR-combine several row masks (lists or boolean ndarrays) of equal length."""
    return _combine(masks, np.logical_or, "combine_or")


def _combine(masks: list, op: np.ufunc, caller: str) -> np.ndarray:
    if not len(masks):
        raise FilterError(f"{caller}() requires at least one mask")
    arrays = [np.asarray(mask, dtype=bool) for mask in masks]
    length = len(arrays[0])
    for array in arrays:
        if len(array) != length:
            raise FilterError("masks must have equal length")
    return op.reduce(arrays) if len(arrays) > 1 else arrays[0]


def predicate_from_parts(column: str, op: str, term: Any) -> Predicate:
    """Convenience constructor used by the LDX and PyLDX layers."""
    return Predicate(column=column, op=op, term=term)


#: Registry mapping canonical operator names to cell-level callables, useful
#: for property-based testing of operator semantics.
OPERATOR_FUNCTIONS: dict[str, Callable[[Any, Any], bool]] = {
    name: (lambda v, t, _n=name: Predicate("_", _n, t).evaluate(v))
    for name in FILTER_OPERATORS
}
