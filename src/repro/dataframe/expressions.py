"""Filter predicates over columns.

LINX filter operations are parametric triples ``[F, attr, op, term]`` where
``op`` is one of a small closed set of comparison operators (Section 3 of
the paper).  This module implements those operators as composable predicate
objects that evaluate against a :class:`~repro.dataframe.column.Column`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .column import Column
from .errors import FilterError

#: Canonical operator names supported by the engine, in the order used by the
#: LINX action space.
FILTER_OPERATORS: tuple[str, ...] = (
    "eq",
    "neq",
    "gt",
    "ge",
    "lt",
    "le",
    "contains",
    "startswith",
    "endswith",
)

#: Aliases accepted when parsing LDX or PyLDX text.
OPERATOR_ALIASES: dict[str, str] = {
    "==": "eq",
    "=": "eq",
    "eq": "eq",
    "!=": "neq",
    "ne": "neq",
    "neq": "neq",
    "<>": "neq",
    ">": "gt",
    "gt": "gt",
    ">=": "ge",
    "ge": "ge",
    "geq": "ge",
    "<": "lt",
    "lt": "lt",
    "<=": "le",
    "le": "le",
    "leq": "le",
    "contains": "contains",
    "in": "contains",
    "startswith": "startswith",
    "starts_with": "startswith",
    "endswith": "endswith",
    "ends_with": "endswith",
}


def canonical_operator(op: str) -> str:
    """Map an operator spelling (``=``, ``!=``, ``eq`` ...) to its canonical name."""
    key = str(op).strip().lower()
    if key not in OPERATOR_ALIASES:
        raise FilterError(f"unknown filter operator {op!r}")
    return OPERATOR_ALIASES[key]


def _compare_numeric(op: str, value: Any, term: Any) -> bool:
    try:
        left = float(value)
        right = float(term)
    except (TypeError, ValueError):
        return False
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    raise FilterError(f"unsupported numeric operator {op!r}")


#: Comparator callables used by the columnar fast path in :meth:`Predicate.mask`.
_NUMERIC_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
}


def _values_equal(value: Any, term: Any) -> bool:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        try:
            return float(value) == float(term)
        except (TypeError, ValueError):
            return str(value) == str(term)
    return str(value) == str(term)


@dataclass(frozen=True)
class Predicate:
    """A single-column filter predicate ``column <op> term``."""

    column: str
    op: str
    term: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", canonical_operator(self.op))

    def evaluate(self, value: Any) -> bool:
        """Evaluate the predicate against a single cell value.

        Nulls never satisfy a predicate, matching SQL three-valued logic
        collapsed to False.
        """
        if value is None:
            return False
        op = self.op
        term = self.term
        if op == "eq":
            return _values_equal(value, term)
        if op == "neq":
            return not _values_equal(value, term)
        if op in ("gt", "ge", "lt", "le"):
            return _compare_numeric(op, value, term)
        text = str(value).lower()
        needle = str(term).lower()
        if op == "contains":
            return needle in text
        if op == "startswith":
            return text.startswith(needle)
        if op == "endswith":
            return text.endswith(needle)
        raise FilterError(f"unsupported operator {op!r}")

    def mask(self, column: Column) -> list[bool]:
        """Evaluate the predicate over every row of *column*.

        This is the single-pass columnar fast path: the operator dispatch and
        the term coercion happen once per column instead of once per cell, and
        the loop body specialises on the column dtype.  Semantics are
        identical to calling :meth:`evaluate` per cell (nulls never match).
        """
        op = self.op
        term = self.term
        values = column.values
        if op in ("gt", "ge", "lt", "le"):
            try:
                rhs = float(term)
            except (TypeError, ValueError):
                return [False] * len(values)
            compare = _NUMERIC_COMPARATORS[op]
            out: list[bool] = []
            append = out.append
            for v in values:
                if v is None:
                    append(False)
                    continue
                try:
                    lhs = float(v)
                except (TypeError, ValueError):
                    append(False)
                    continue
                append(compare(lhs, rhs))
            return out
        if op in ("eq", "neq"):
            want = op == "eq"
            term_str = str(term)
            try:
                term_num = float(term)
            except (TypeError, ValueError):
                term_num = None
            out = []
            append = out.append
            # Dispatch on the cell's type (not the column dtype) so
            # dtype-bypassed mixed columns behave exactly like evaluate().
            for v in values:
                if v is None:
                    append(False)
                elif (
                    term_num is not None
                    and isinstance(v, (int, float))
                    and not isinstance(v, bool)
                ):
                    append((float(v) == term_num) == want)
                else:
                    append((str(v) == term_str) == want)
            return out
        needle = str(term).lower()
        if op == "contains":
            return [v is not None and needle in str(v).lower() for v in values]
        if op == "startswith":
            return [v is not None and str(v).lower().startswith(needle) for v in values]
        if op == "endswith":
            return [v is not None and str(v).lower().endswith(needle) for v in values]
        raise FilterError(f"unsupported operator {op!r}")

    def describe(self) -> str:
        """Human readable rendering used in notebooks, e.g. ``country = India``."""
        symbol = {
            "eq": "=",
            "neq": "!=",
            "gt": ">",
            "ge": ">=",
            "lt": "<",
            "le": "<=",
            "contains": "contains",
            "startswith": "starts with",
            "endswith": "ends with",
        }[self.op]
        return f"{self.column} {symbol} {self.term}"


def combine_and(masks: list[list[bool]]) -> list[bool]:
    """AND-combine several row masks of equal length."""
    if not masks:
        raise FilterError("combine_and() requires at least one mask")
    length = len(masks[0])
    for mask in masks:
        if len(mask) != length:
            raise FilterError("masks must have equal length")
    return [all(mask[i] for mask in masks) for i in range(length)]


def combine_or(masks: list[list[bool]]) -> list[bool]:
    """OR-combine several row masks of equal length."""
    if not masks:
        raise FilterError("combine_or() requires at least one mask")
    length = len(masks[0])
    for mask in masks:
        if len(mask) != length:
            raise FilterError("masks must have equal length")
    return [any(mask[i] for mask in masks) for i in range(length)]


def predicate_from_parts(column: str, op: str, term: Any) -> Predicate:
    """Convenience constructor used by the LDX and PyLDX layers."""
    return Predicate(column=column, op=op, term=term)


#: Registry mapping canonical operator names to cell-level callables, useful
#: for property-based testing of operator semantics.
OPERATOR_FUNCTIONS: dict[str, Callable[[Any, Any], bool]] = {
    name: (lambda v, t, _n=name: Predicate("_", _n, t).evaluate(v))
    for name in FILTER_OPERATORS
}
