"""Delimited-file IO for :class:`~repro.dataframe.table.DataTable`.

The LINX prompts and benchmark datasets are stored as CSV/TSV files; this
module reads and writes them with automatic type inference, matching the way
the paper loads the Kaggle datasets with ``pd.read_csv``.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence

from .column import Column, infer_dtype, is_null
from .errors import IOFormatError
from .table import DataTable


def _parse_cell(text: str) -> Any:
    """Parse a raw CSV cell into int, float or str (empty -> null)."""
    stripped = text.strip()
    if stripped == "":
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def read_delimited(
    path: str | Path,
    delimiter: str = ",",
    name: str | None = None,
) -> DataTable:
    """Read a delimited text file into a :class:`DataTable`.

    The first row is treated as the header.  Cells are type-inferred per
    column (int < float < str), and empty cells become nulls.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        return read_delimited_text(handle.read(), delimiter=delimiter, name=name or path.stem)


def read_delimited_text(text: str, delimiter: str = ",", name: str = "table") -> DataTable:
    """Parse delimited *text* (header + rows) into a :class:`DataTable`."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise IOFormatError("empty input: no header row")
    header = [cell.strip() for cell in rows[0]]
    if any(not cell for cell in header):
        raise IOFormatError(f"blank column name in header: {header}")
    columns: dict[str, list[Any]] = {col: [] for col in header}
    for line_no, row in enumerate(rows[1:], start=2):
        if not row or all(cell.strip() == "" for cell in row):
            continue
        if len(row) != len(header):
            raise IOFormatError(
                f"line {line_no}: expected {len(header)} cells, got {len(row)}"
            )
        for col, cell in zip(header, row):
            columns[col].append(_parse_cell(cell))

    # Normalise mixed int/float columns to a single dtype.  Genuinely mixed
    # int/str columns stay object-backed (Column.from_raw) so integers are
    # not silently coerced to strings on load; such columns keep the
    # type-aware ordering and per-cell predicate semantics.
    cols: list[Column] = []
    for col, values in columns.items():
        dtype = infer_dtype(values)
        if dtype == "str" and any(
            not isinstance(v, str) and not is_null(v) for v in values
        ):
            cols.append(Column.from_raw(col, values))
        else:
            cols.append(Column(col, values, dtype=dtype))
    return DataTable(cols, name=name)


def read_csv(path: str | Path, name: str | None = None) -> DataTable:
    """Read a comma-separated file."""
    return read_delimited(path, delimiter=",", name=name)


def read_tsv(path: str | Path, name: str | None = None) -> DataTable:
    """Read a tab-separated file (the format used in the paper's prompts)."""
    return read_delimited(path, delimiter="\t", name=name)


def write_delimited(
    table: DataTable,
    path: str | Path,
    delimiter: str = ",",
    columns: Sequence[str] | None = None,
) -> None:
    """Write *table* to a delimited text file with a header row."""
    path = Path(path)
    cols = list(columns) if columns is not None else table.columns
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(cols)
        for record in table.select(cols).rows():
            writer.writerow(["" if record[c] is None else record[c] for c in cols])


def write_csv(table: DataTable, path: str | Path) -> None:
    """Write *table* as CSV."""
    write_delimited(table, path, delimiter=",")


def write_tsv(table: DataTable, path: str | Path) -> None:
    """Write *table* as TSV."""
    write_delimited(table, path, delimiter="\t")


def table_to_csv_text(table: DataTable, delimiter: str = ",", max_rows: int | None = None) -> str:
    """Render *table* as delimited text (used to embed dataset samples in prompts)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter)
    writer.writerow(table.columns)
    rows = table.rows() if max_rows is None else table.head(max_rows).rows()
    for record in rows:
        writer.writerow(["" if record[c] is None else record[c] for c in table.columns])
    return buffer.getvalue()
