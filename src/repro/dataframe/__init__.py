"""Columnar data engine: the pandas substitute used throughout the reproduction.

Public API::

    from repro.dataframe import DataTable, Predicate, read_csv

    table = read_csv("netflix.csv")
    india = table.filter(Predicate("country", "eq", "India"))
    by_rating = india.groupby_agg("rating", "count")
"""

from .aggregates import AGG_FUNCTIONS, apply_aggregation, canonical_agg
from .column import Column, infer_dtype, is_null
from .errors import (
    AggregationError,
    ColumnNotFoundError,
    DataFrameError,
    FilterError,
    IOFormatError,
    SchemaError,
    TypeMismatchError,
)
from .expressions import FILTER_OPERATORS, Predicate, canonical_operator
from .io import (
    read_csv,
    read_delimited,
    read_delimited_text,
    read_tsv,
    table_to_csv_text,
    write_csv,
    write_delimited,
    write_tsv,
)
from .table import DataTable, concat_rows, infer_schema

__all__ = [
    "AGG_FUNCTIONS",
    "AggregationError",
    "Column",
    "ColumnNotFoundError",
    "DataFrameError",
    "DataTable",
    "FILTER_OPERATORS",
    "FilterError",
    "IOFormatError",
    "Predicate",
    "SchemaError",
    "TypeMismatchError",
    "apply_aggregation",
    "canonical_agg",
    "canonical_operator",
    "concat_rows",
    "infer_dtype",
    "infer_schema",
    "is_null",
    "read_csv",
    "read_delimited",
    "read_delimited_text",
    "read_tsv",
    "table_to_csv_text",
    "write_csv",
    "write_delimited",
    "write_tsv",
]
