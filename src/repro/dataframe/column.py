"""Typed, immutable columns backed by numpy arrays.

A :class:`Column` stores a homogeneous sequence of values as a typed numpy
buffer plus an explicit boolean null mask.  Three logical dtypes are
supported -- ``int``, ``float`` and ``str`` -- which is all the LINX
exploration operators (filter, group-by, aggregate) require:

* ``int``   -> an ``int64`` buffer (``0`` filler at masked slots),
* ``float`` -> a ``float64`` buffer (``NaN`` filler at masked slots),
* ``str``   -> a fixed-width unicode buffer (``""`` filler at masked slots).

A fourth, *object-backed* representation exists for columns that bypass
dtype coercion (external adapters injecting raw mixed int/str values, and
:meth:`Column.from_raw` used by the CSV loader for genuinely mixed columns).
Object-backed columns keep the exact pure-Python semantics of every
operation -- type-aware ordering, per-cell predicate dispatch -- at list
speed, while typed buffers take the vectorised C paths.

Columns are deliberately immutable (buffers are marked read-only): every
transformation returns a new column, which keeps exploration-tree views
independent of each other and makes per-instance memoisation sound.
Derived statistics (``unique``, ``value_counts``, ``null_count``,
``min``/``max`` and the hash) are computed once -- now as array reductions
-- and cached, so the exploration reward and observation featurisation,
which revisit the same views thousands of times during training, pay the
O(n) kernel only on first touch.

The Python-facing API is unchanged: ``values`` is still a tuple with
``None`` at missing slots (materialised lazily from the buffers), columns
iterate and index like sequences, and equality/hash semantics are
value-based.  Hot paths should call :meth:`Column.buffers` instead and work
on the arrays directly.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from .errors import TypeMismatchError

#: Sentinel used for missing values in textual columns.
NULL = None

_NUMERIC_DTYPES = ("int", "float")
_VALID_DTYPES = ("int", "float", "str")


def infer_dtype(values: Iterable[Any]) -> str:
    """Infer the narrowest dtype (``int`` < ``float`` < ``str``) for *values*.

    Nulls (``None`` / NaN / empty string) are ignored during inference.  An
    empty or all-null input defaults to ``str`` because string columns accept
    any value representation.  Typed numpy arrays short-circuit via their
    dtype kind.
    """
    if isinstance(values, np.ndarray):
        kind = values.dtype.kind
        if kind in "iu":
            return "int" if values.size else "str"
        if kind == "f":
            return "float" if values.size and not np.isnan(values).all() else "str"
        # bool, unicode and object arrays fall through to the generic scan.
    saw_int = False
    saw_float = False
    saw_value = False
    for value in values:
        if is_null(value):
            continue
        saw_value = True
        if isinstance(value, bool):
            return "str"
        if isinstance(value, (int, np.integer)):
            saw_int = True
        elif isinstance(value, (float, np.floating)):
            saw_float = True
        else:
            return "str"
    if not saw_value:
        return "str"
    if saw_float:
        return "float"
    if saw_int:
        return "int"
    return "str"


def is_null(value: Any) -> bool:
    """Return True for the engine's notion of a missing value."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value == "":
        return True
    return False


def coerce_value(value: Any, dtype: str) -> Any:
    """Coerce *value* to *dtype*, returning ``None`` for nulls.

    Raises :class:`TypeMismatchError` if the value cannot be represented in
    the requested dtype.  This is the per-cell reference the vectorised
    constructor falls back to (and matches exactly).
    """
    if is_null(value):
        return None
    try:
        if dtype == "int":
            if isinstance(value, str):
                return int(float(value))
            return int(value)
        if dtype == "float":
            return float(value)
        if dtype == "str":
            return str(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"unknown dtype {dtype!r}")


def _null_flags(values: Sequence[Any]) -> np.ndarray:
    """Boolean null mask of a raw Python sequence."""
    return np.fromiter((is_null(v) for v in values), dtype=bool, count=len(values))


#: Largest magnitude an int column value may have before int64 storage (via
#: the float64 conversion path) could corrupt it.
_INT64_SAFE = 2**62


def _numeric_buffers(values: Sequence[Any], dtype: str) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised coercion of *values* to an int64/float64 buffer + mask.

    Tries the zero-copy-ish numpy casts first (exact int64 for clean integer
    input, float64 with ``None -> NaN`` otherwise) and falls back to the
    per-cell :func:`coerce_value` reference -- which raises
    :class:`TypeMismatchError` with the offending value (or propagates
    ``OverflowError`` for infinities, like the pre-numpy code) -- when numpy
    cannot convert the input wholesale.  Int values too large for int64 keep
    their exact Python ints in an object buffer rather than overflowing.
    """
    if dtype == "int":
        try:
            data = np.asarray(values, dtype=np.int64)
            return data, np.zeros(len(data), dtype=bool)
        except (TypeError, ValueError, OverflowError):
            pass
    slow = False
    try:
        floats = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        slow = True
    else:
        # Route huge magnitudes through the exact per-cell path: float64 ->
        # int64 truncation would silently wrap them.
        slow = dtype == "int" and bool(
            np.any(np.abs(floats[~np.isnan(floats)]) > _INT64_SAFE)
        )
    if slow:
        coerced = [coerce_value(v, dtype) for v in values]
        if dtype == "int" and any(
            v is not None and not (-_INT64_SAFE <= v <= _INT64_SAFE) for v in coerced
        ):
            data = np.empty(len(coerced), dtype=object)
            data[:] = coerced
            mask = np.fromiter((v is None for v in coerced), dtype=bool, count=len(coerced))
            return data, mask
        floats = np.asarray(
            [math.nan if v is None else v for v in coerced], dtype=np.float64
        )
    mask = np.isnan(floats)
    if dtype == "int":
        data = np.where(mask, 0.0, floats).astype(np.int64)
    else:
        data = floats
    return data, mask


def _string_buffers(values: Sequence[Any]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised coercion of *values* to a fixed-width unicode buffer + mask.

    Strings containing NUL characters cannot round-trip through numpy's
    fixed-width unicode storage (trailing NULs are indistinguishable from
    padding), so such columns keep coerced ``str`` values in an object
    buffer and take the pure-Python operation paths.
    """
    obj = np.empty(len(values), dtype=object)
    obj[:] = list(values)
    mask = _null_flags(obj)
    raw = obj.tolist()
    if any(isinstance(v, str) and "\x00" in v for v in raw):
        data = np.empty(len(raw), dtype=object)
        data[:] = [None if m else str(v) for v, m in zip(raw, mask.tolist())]
        return data, mask
    data = obj.astype(str)
    if mask.any():
        data[mask] = ""
    return data, mask


class Column:
    """An immutable, named, typed sequence of values.

    Parameters
    ----------
    name:
        Column name as it appears in the table schema.
    values:
        Raw values; they are coerced to *dtype* on construction (vectorised
        through numpy, with the per-cell :func:`coerce_value` semantics).
    dtype:
        One of ``int``, ``float``, ``str``.  When omitted it is inferred.
    """

    __slots__ = (
        "name",
        "dtype",
        # Dual representation: `_values` is the Python-facing tuple (None at
        # missing slots), `_data`/`_mask` the numpy buffers.  Either side is
        # derived lazily from the other, so adapter code that injects raw
        # `_values` via __new__ (bypassing coercion) keeps working -- such
        # columns become object-backed and take the pure-Python fallbacks.
        "_values",
        "_data",
        "_mask",
        # Lazily-populated memo slots; every accessor tolerates the slot
        # being unset (AttributeError).
        "_memo_unique",
        "_memo_counts",
        "_memo_nulls",
        "_memo_minmax",
        "_memo_hash",
        "_memo_lower",
        # Scratch slot for the interestingness scorer's per-column reference
        # distribution (see repro.explore.interestingness); follows the same
        # lazy convention as the other memo slots.
        "_memo_interest",
        # Dictionary encoding: per-row int64 codes (-1 for null) plus the
        # decoded values in code order.  Computed as a byproduct of
        # `_unique_stats` and inherited through `take`, so the value stats of
        # filtered views reduce to integer bincounts instead of re-sorting
        # string buffers.
        "_memo_codes",
        "_memo_code_values",
    )

    def __init__(self, name: str, values: Sequence[Any], dtype: str | None = None):
        if dtype is None:
            dtype = infer_dtype(values)
        if dtype not in _VALID_DTYPES:
            raise TypeMismatchError(f"unsupported dtype {dtype!r}")
        self.name = name
        self.dtype = dtype
        if dtype in _NUMERIC_DTYPES:
            data, mask = _numeric_buffers(values, dtype)
        else:
            data, mask = _string_buffers(values)
        data.flags.writeable = False
        mask.flags.writeable = False
        self._data = data
        self._mask = mask

    @classmethod
    def _from_buffers(
        cls, name: str, dtype: str, data: np.ndarray, mask: np.ndarray
    ) -> "Column":
        """Internal zero-coercion constructor used by ``take``/``rename``."""
        clone = cls.__new__(cls)
        clone.name = name
        clone.dtype = dtype
        if data.flags.writeable:
            data.flags.writeable = False
        if mask.flags.writeable:
            mask.flags.writeable = False
        clone._data = data
        clone._mask = mask
        return clone

    @classmethod
    def from_raw(cls, name: str, values: Sequence[Any]) -> "Column":
        """Build an object-backed ``str``-dtype column without coercion.

        Raw cell types are preserved (nulls become ``None``), so a mixed
        int/str column loaded from disk keeps its integers instead of
        silently turning them into strings.  All operations on such columns
        use the type-aware pure-Python paths.
        """
        data = np.empty(len(values), dtype=object)
        data[:] = [None if is_null(v) else v for v in values]
        mask = np.fromiter((v is None for v in data), dtype=bool, count=len(data))
        return cls._from_buffers(name, "str", data, mask)

    # -- numpy access ---------------------------------------------------------------
    def buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(data, null_mask)`` numpy buffers backing this column.

        ``data`` is int64 / float64 / fixed-width unicode for typed columns
        (with 0 / NaN / ``""`` fillers at masked slots) or an object array
        for coercion-bypassing columns.  Both arrays are read-only; hot
        paths (predicate masks, grouping, featurisation) should consume
        these instead of :attr:`values`.
        """
        try:
            return self._data, self._mask
        except AttributeError:
            pass
        # Adapter-injected `_values` (set via __new__): build object buffers
        # preserving the raw cells so pure-Python semantics stay exact.
        vals = self._values
        data = np.empty(len(vals), dtype=object)
        data[:] = list(vals)
        mask = np.fromiter((v is None for v in data), dtype=bool, count=len(data))
        data.flags.writeable = False
        mask.flags.writeable = False
        self._data = data
        self._mask = mask
        return data, mask

    @property
    def is_object_backed(self) -> bool:
        """True when the column stores raw objects (coercion was bypassed)."""
        return self.buffers()[0].dtype == object

    def _lower_strings(self) -> np.ndarray:
        """Lower-cased unicode view of the data (memoised; typed columns only)."""
        try:
            return self._memo_lower
        except AttributeError:
            data = self.buffers()[0]
            if data.dtype.kind != "U":
                data = data.astype(str)
            self._memo_lower = np.char.lower(data)
            return self._memo_lower

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        try:
            return len(self._data)
        except AttributeError:
            return len(self._values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self.values == other.values
        )

    def __hash__(self) -> int:
        try:
            return self._memo_hash
        except AttributeError:
            self._memo_hash = hash((self.name, self.dtype, self.values))
            return self._memo_hash

    def __repr__(self) -> str:
        head = self.values[:5]
        preview = ", ".join(repr(v) for v in head)
        suffix = ", ..." if len(self) > 5 else ""
        return f"Column({self.name!r}, dtype={self.dtype}, [{preview}{suffix}])"

    # -- accessors -----------------------------------------------------------------
    @property
    def values(self) -> tuple[Any, ...]:
        """The tuple of (possibly null) Python values (materialised lazily)."""
        try:
            return self._values
        except AttributeError:
            pass
        data, mask = self._data, self._mask
        out = data.tolist()
        if mask.any():
            for i in np.flatnonzero(mask):
                out[i] = None
        self._values = tuple(out)
        return self._values

    @property
    def is_numeric(self) -> bool:
        """True when the column holds ints or floats."""
        return self.dtype in _NUMERIC_DTYPES

    def null_count(self) -> int:
        """Number of missing values (memoised)."""
        try:
            return self._memo_nulls
        except AttributeError:
            self._memo_nulls = int(self.buffers()[1].sum())
            return self._memo_nulls

    def non_null(self) -> list[Any]:
        """All non-null values, in order."""
        data, mask = self.buffers()
        if data.dtype == object:
            return [v for v in self.values if v is not None]
        return data[~mask].tolist()

    def _unique_stats(self) -> None:
        """Populate the distinct-value memos (first-appearance order) in one pass."""
        try:
            codes: np.ndarray | None = self._memo_codes
        except AttributeError:
            codes = None
        if codes is not None:
            # Inherited dictionary encoding: distinct values and counts come
            # from integer codes, avoiding a sort of the (string) buffer.
            # First-appearance order and the decoded value objects match the
            # buffer-based path exactly.
            valid = codes[codes >= 0]
            decoded = self._memo_code_values
            counts_by_code = np.bincount(valid, minlength=len(decoded))
            # First occurrence per code via reversed scatter (last write wins,
            # so writing in reverse leaves the smallest row index), then sort
            # only the handful of present codes — never the row values.
            first_index = np.empty(len(decoded), dtype=np.int64)
            first_index[valid[::-1]] = np.arange(len(valid) - 1, -1, -1)
            present = np.flatnonzero(counts_by_code)
            ordered_codes = present[np.argsort(first_index[present], kind="stable")]
            order = [decoded[code] for code in ordered_codes]
            ordered_counts = counts_by_code[ordered_codes].tolist()
            self._memo_unique = tuple(order)
            self._memo_counts = dict(zip(order, ordered_counts))
            return
        data, mask = self.buffers()
        if data.dtype == object:
            counts: dict[Any, int] = {}
            for value in self.values:
                if value is not None:
                    counts[value] = counts.get(value, 0) + 1
            self._memo_unique = tuple(counts)
            self._memo_counts = counts
            return
        sub = data[~mask]
        uniq, first_index, inverse, group_counts = np.unique(
            sub, return_index=True, return_inverse=True, return_counts=True
        )
        appearance = np.argsort(first_index, kind="stable")
        order = uniq[appearance].tolist()
        ordered_counts = group_counts[appearance].tolist()
        self._memo_unique = tuple(order)
        self._memo_counts = dict(zip(order, ordered_counts))
        # Byproduct: per-row codes in first-appearance order, inherited by
        # `take` so filtered views never re-sort this column's values.
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[appearance] = np.arange(len(uniq), dtype=np.int64)
        row_codes = np.full(len(data), -1, dtype=np.int64)
        row_codes[~mask] = rank[inverse]
        self._memo_codes = row_codes
        self._memo_code_values = tuple(order)

    def unique(self) -> list[Any]:
        """Distinct non-null values in first-appearance order (memoised)."""
        try:
            return list(self._memo_unique)
        except AttributeError:
            self._unique_stats()
            return list(self._memo_unique)

    def value_counts(self) -> dict[Any, int]:
        """Mapping of non-null value -> number of occurrences (memoised).

        A fresh dict is returned on every call so callers may mutate it.
        """
        try:
            return dict(self._memo_counts)
        except AttributeError:
            self._unique_stats()
            return dict(self._memo_counts)

    def nunique(self) -> int:
        """Number of distinct non-null values."""
        try:
            return len(self._memo_unique)
        except AttributeError:
            self._unique_stats()
            return len(self._memo_unique)

    # -- transformations -----------------------------------------------------------
    def rename(self, name: str) -> "Column":
        """Return a copy of the column under a new name (shares the buffers)."""
        data, mask = self.buffers()
        return Column._from_buffers(name, self.dtype, data, mask)

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column containing the rows at *indices* (in order)."""
        data, mask = self.buffers()
        idx = np.asarray(indices, dtype=np.int64)
        child = Column._from_buffers(self.name, self.dtype, data[idx], mask[idx])
        try:
            codes = self._memo_codes
        except AttributeError:
            return child
        child._memo_codes = codes[idx]
        child._memo_code_values = self._memo_code_values
        return child

    def cast(self, dtype: str) -> "Column":
        """Return a copy of the column coerced to *dtype*."""
        return Column(self.name, self.values, dtype=dtype)

    # -- statistics ----------------------------------------------------------------
    def _minmax(self) -> tuple[Any, Any]:
        try:
            return self._memo_minmax
        except AttributeError:
            data, mask = self.buffers()
            if data.dtype == object:
                values = [v for v in self.values if v is not None]
                self._memo_minmax = (
                    (min(values), max(values)) if values else (None, None)
                )
                return self._memo_minmax
            sub = data[~mask]
            if sub.size == 0:
                self._memo_minmax = (None, None)
            elif self.dtype == "int":
                self._memo_minmax = (int(sub.min()), int(sub.max()))
            elif self.dtype == "float":
                self._memo_minmax = (float(sub.min()), float(sub.max()))
            else:
                # Unicode buffers share Python's lexicographic ordering.
                self._memo_minmax = (str(sub.min()), str(sub.max()))
            return self._memo_minmax

    def min(self) -> Any:
        return self._minmax()[0]

    def max(self) -> Any:
        return self._minmax()[1]

    def sum(self) -> float | int | None:
        if not self.is_numeric:
            raise TypeMismatchError(f"sum() requires a numeric column, got {self.dtype}")
        data, mask = self.buffers()
        sub = data[~mask]
        if sub.size == 0:
            return None
        if self.dtype == "int":
            if data.dtype != object:
                # Magnitude via exact Python ints: np.abs(INT64_MIN) wraps.
                magnitude = max(abs(int(sub.min())), abs(int(sub.max())))
                if magnitude <= _INT64_SAFE // sub.size:
                    return int(sub.sum())
            # Exact arbitrary-precision accumulation when int64 could wrap.
            return int(sub.sum(dtype=object))
        return float(sub.sum())

    def mean(self) -> float | None:
        if not self.is_numeric:
            raise TypeMismatchError(f"mean() requires a numeric column, got {self.dtype}")
        data, mask = self.buffers()
        sub = data[~mask]
        if sub.size == 0:
            return None
        return float(sub.mean())
