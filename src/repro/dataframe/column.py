"""Typed, immutable columns for the columnar data engine.

A :class:`Column` stores a homogeneous sequence of values plus a null mask.
Three logical dtypes are supported -- ``int``, ``float`` and ``str`` -- which
is all the LINX exploration operators (filter, group-by, aggregate) require.
Columns are deliberately immutable: every transformation returns a new
column, which keeps exploration-tree views independent of each other.

Immutability also makes per-instance memoisation sound: derived statistics
(``unique``, ``value_counts``, ``null_count``, ``min``/``max`` and the hash)
are computed once and cached, so the exploration reward and observation
featurisation -- which revisit the same views thousands of times during
training -- pay the O(n) scan only on first touch.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

from .errors import TypeMismatchError

#: Sentinel used for missing values in textual columns.
NULL = None

_NUMERIC_DTYPES = ("int", "float")
_VALID_DTYPES = ("int", "float", "str")


def infer_dtype(values: Iterable[Any]) -> str:
    """Infer the narrowest dtype (``int`` < ``float`` < ``str``) for *values*.

    Nulls (``None`` / NaN / empty string) are ignored during inference.  An
    empty or all-null input defaults to ``str`` because string columns accept
    any value representation.
    """
    saw_int = False
    saw_float = False
    saw_value = False
    for value in values:
        if is_null(value):
            continue
        saw_value = True
        if isinstance(value, bool):
            return "str"
        if isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            return "str"
    if not saw_value:
        return "str"
    if saw_float:
        return "float"
    if saw_int:
        return "int"
    return "str"


def is_null(value: Any) -> bool:
    """Return True for the engine's notion of a missing value."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value == "":
        return True
    return False


def coerce_value(value: Any, dtype: str) -> Any:
    """Coerce *value* to *dtype*, returning ``None`` for nulls.

    Raises :class:`TypeMismatchError` if the value cannot be represented in
    the requested dtype.
    """
    if is_null(value):
        return None
    try:
        if dtype == "int":
            if isinstance(value, str):
                return int(float(value))
            return int(value)
        if dtype == "float":
            return float(value)
        if dtype == "str":
            return str(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"unknown dtype {dtype!r}")


class Column:
    """An immutable, named, typed sequence of values.

    Parameters
    ----------
    name:
        Column name as it appears in the table schema.
    values:
        Raw values; they are coerced to *dtype* on construction.
    dtype:
        One of ``int``, ``float``, ``str``.  When omitted it is inferred.
    """

    __slots__ = (
        "name",
        "dtype",
        "_values",
        # Lazily-populated memo slots; ``rename``/``take`` bypass __init__ so
        # every accessor tolerates the slot being unset (AttributeError).
        "_memo_unique",
        "_memo_counts",
        "_memo_nulls",
        "_memo_minmax",
        "_memo_hash",
    )

    def __init__(self, name: str, values: Sequence[Any], dtype: str | None = None):
        if dtype is None:
            dtype = infer_dtype(values)
        if dtype not in _VALID_DTYPES:
            raise TypeMismatchError(f"unsupported dtype {dtype!r}")
        self.name = name
        self.dtype = dtype
        self._values: tuple[Any, ...] = tuple(coerce_value(v, dtype) for v in values)

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index: int) -> Any:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.dtype == other.dtype
            and self._values == other._values
        )

    def __hash__(self) -> int:
        try:
            return self._memo_hash
        except AttributeError:
            self._memo_hash = hash((self.name, self.dtype, self._values))
            return self._memo_hash

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:5])
        suffix = ", ..." if len(self._values) > 5 else ""
        return f"Column({self.name!r}, dtype={self.dtype}, [{preview}{suffix}])"

    # -- accessors -----------------------------------------------------------------
    @property
    def values(self) -> tuple[Any, ...]:
        """The tuple of (possibly null) values."""
        return self._values

    @property
    def is_numeric(self) -> bool:
        """True when the column holds ints or floats."""
        return self.dtype in _NUMERIC_DTYPES

    def null_count(self) -> int:
        """Number of missing values (memoised)."""
        try:
            return self._memo_nulls
        except AttributeError:
            self._memo_nulls = sum(1 for v in self._values if v is None)
            return self._memo_nulls

    def non_null(self) -> list[Any]:
        """All non-null values, in order."""
        return [v for v in self._values if v is not None]

    def unique(self) -> list[Any]:
        """Distinct non-null values in first-appearance order (memoised)."""
        try:
            memo = self._memo_unique
        except AttributeError:
            seen: dict[Any, None] = {}
            for value in self._values:
                if value is not None and value not in seen:
                    seen[value] = None
            memo = self._memo_unique = tuple(seen)
        return list(memo)

    def value_counts(self) -> dict[Any, int]:
        """Mapping of non-null value -> number of occurrences (memoised).

        A fresh dict is returned on every call so callers may mutate it.
        """
        try:
            memo = self._memo_counts
        except AttributeError:
            counts: dict[Any, int] = {}
            for value in self._values:
                if value is None:
                    continue
                counts[value] = counts.get(value, 0) + 1
            memo = self._memo_counts = counts
        return dict(memo)

    def nunique(self) -> int:
        """Number of distinct non-null values."""
        try:
            return len(self._memo_unique)
        except AttributeError:
            return len(self.unique())

    # -- transformations -----------------------------------------------------------
    def rename(self, name: str) -> "Column":
        """Return a copy of the column under a new name."""
        clone = Column.__new__(Column)
        clone.name = name
        clone.dtype = self.dtype
        clone._values = self._values
        return clone

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column containing the rows at *indices* (in order)."""
        clone = Column.__new__(Column)
        clone.name = self.name
        clone.dtype = self.dtype
        clone._values = tuple(self._values[i] for i in indices)
        return clone

    def cast(self, dtype: str) -> "Column":
        """Return a copy of the column coerced to *dtype*."""
        return Column(self.name, self._values, dtype=dtype)

    # -- statistics ----------------------------------------------------------------
    def _minmax(self) -> tuple[Any, Any]:
        try:
            return self._memo_minmax
        except AttributeError:
            values = self.non_null()
            self._memo_minmax = (min(values), max(values)) if values else (None, None)
            return self._memo_minmax

    def min(self) -> Any:
        return self._minmax()[0]

    def max(self) -> Any:
        return self._minmax()[1]

    def sum(self) -> float | int | None:
        if not self.is_numeric:
            raise TypeMismatchError(f"sum() requires a numeric column, got {self.dtype}")
        values = self.non_null()
        return sum(values) if values else None

    def mean(self) -> float | None:
        if not self.is_numeric:
            raise TypeMismatchError(f"mean() requires a numeric column, got {self.dtype}")
        values = self.non_null()
        if not values:
            return None
        return sum(values) / len(values)
