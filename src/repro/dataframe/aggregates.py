"""Aggregation functions for group-and-aggregate operations.

LINX group-by operations are parametric tuples ``[G, g_attr, agg_func,
agg_attr]`` (Section 3).  This module provides the closed set of aggregation
functions used by the action space and the notebook renderer.

These per-list implementations are the *reference semantics*: the
vectorised grouped kernels in :meth:`DataTable._grouped_aggregate` must
produce the same values (nulls skipped, ``None`` for empty groups,
``AggregationError`` on type violations), and object-backed mixed-type
columns fall back to them directly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .errors import AggregationError

#: Canonical aggregation function names, in action-space order.
AGG_FUNCTIONS: tuple[str, ...] = ("count", "sum", "mean", "min", "max", "nunique")

#: Aliases accepted from LDX / PyLDX text.
AGG_ALIASES: dict[str, str] = {
    "count": "count",
    "cnt": "count",
    "size": "count",
    "sum": "sum",
    "total": "sum",
    "mean": "mean",
    "avg": "mean",
    "average": "mean",
    "min": "min",
    "minimum": "min",
    "max": "max",
    "maximum": "max",
    "nunique": "nunique",
    "distinct": "nunique",
    "count_distinct": "nunique",
}


def canonical_agg(name: str) -> str:
    """Map an aggregation spelling (``avg``, ``CNT`` ...) to its canonical name."""
    key = str(name).strip().lower()
    if key not in AGG_ALIASES:
        raise AggregationError(f"unknown aggregation function {name!r}")
    return AGG_ALIASES[key]


def _non_null(values: Sequence[Any]) -> list[Any]:
    return [v for v in values if v is not None]


def agg_count(values: Sequence[Any]) -> int:
    """Count of non-null values (count(*) semantics when applied to the group key)."""
    return len(_non_null(values))


def agg_sum(values: Sequence[Any]) -> float | int | None:
    numeric = _require_numeric(values, "sum")
    return sum(numeric) if numeric else None


def agg_mean(values: Sequence[Any]) -> float | None:
    numeric = _require_numeric(values, "mean")
    if not numeric:
        return None
    return sum(numeric) / len(numeric)


def agg_min(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    try:
        return min(present)
    except TypeError as exc:
        raise AggregationError("min() over mixed-type values") from exc


def agg_max(values: Sequence[Any]) -> Any:
    present = _non_null(values)
    if not present:
        return None
    try:
        return max(present)
    except TypeError as exc:
        raise AggregationError("max() over mixed-type values") from exc


def agg_nunique(values: Sequence[Any]) -> int:
    return len(set(_non_null(values)))


def _require_numeric(values: Sequence[Any], func: str) -> list[float]:
    numeric: list[float] = []
    for value in _non_null(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise AggregationError(f"{func}() requires numeric values, got {value!r}")
        numeric.append(value)
    return numeric


AGG_IMPLEMENTATIONS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "count": agg_count,
    "sum": agg_sum,
    "mean": agg_mean,
    "min": agg_min,
    "max": agg_max,
    "nunique": agg_nunique,
}


def apply_aggregation(name: str, values: Sequence[Any]) -> Any:
    """Apply aggregation *name* (canonical or alias) to *values*."""
    return AGG_IMPLEMENTATIONS[canonical_agg(name)](values)


def numeric_only(name: str) -> bool:
    """True when the aggregation is only defined for numeric columns."""
    return canonical_agg(name) in ("sum", "mean")
