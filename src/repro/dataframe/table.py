"""The :class:`DataTable`: an immutable, columnar, in-memory table.

This is the engine that replaces pandas in the LINX pipeline.  It supports
exactly the operations the paper's exploration model requires:

* schema inspection (column names, dtypes, distinct counts),
* row filtering with :class:`~repro.dataframe.expressions.Predicate`,
* group-and-aggregate with the functions in
  :mod:`repro.dataframe.aggregates`,
* ordering, projection and sampling helpers used by the notebook renderer.

Tables are immutable: each operation returns a new table, so every node of
an exploration tree holds an independent view of the data.

Since the numpy-columnar rewrite the relational kernels are vectorised:
filtering gathers rows with one fancy-index per column, sorting is a stable
``np.argsort`` over a typed key buffer, group-and-aggregate derives integer
group codes with ``np.unique`` and reduces with ``np.bincount``-style
kernels, and :meth:`fingerprint` hashes the raw buffers (``ndarray.tobytes``)
instead of ``repr``-ing Python tuples.  Object-backed (coercion-bypassing)
columns transparently fall back to the original pure-Python paths, so mixed
int/str columns keep their type-aware ordering.

Immutability enables two per-instance memoisations used by the memoized
execution subsystem (:mod:`repro.explore.cache`):

* :meth:`DataTable.fingerprint` — a cheap content fingerprint (schema,
  length and a per-column buffer digest) computed once and reused as the
  cache key for repeated ``(view, operation)`` executions;
* a group-code map per group-by column, so several aggregate functions
  over the same view share one grouping pass.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from .aggregates import apply_aggregation, canonical_agg, numeric_only
from .column import Column, infer_dtype
from .errors import (
    AggregationError,
    ColumnNotFoundError,
    SchemaError,
)
from .expressions import Predicate


#: Distinct-count threshold above which string group keys factorise via
#: vectorised 64-bit hashes instead of binary-searching the (wide) unicode
#: buffer.  Below it the searchsorted path wins (tiny constant factors).
HASH_FACTORIZE_MIN_DISTINCT = 64

#: Multiplier seeding the per-character-position hash weights (the 64-bit
#: golden ratio, as in splitmix64); weights are forced odd so every
#: character position contributes an invertible term.
_HASH_WEIGHT_SEED = 0x9E3779B97F4A7C15


def _hash_weights(width: int) -> np.ndarray:
    """Independent odd 64-bit weights, one per character position.

    Each position's weight runs through the splitmix64 finaliser: linearly
    related weights (e.g. ``(p+1) * seed``) make the key hash a small-integer
    combination of character codes, which collides catastrophically on
    digit-pattern keys; the avalanche mixing decorrelates positions so
    distinct keys collide with ~2^-64 pair probability.
    """
    x = np.arange(1, width + 1, dtype=np.uint64) * np.uint64(_HASH_WEIGHT_SEED)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x | np.uint64(1)


class DataTable:
    """An immutable columnar table.

    Construct from a mapping of column name -> sequence of values, from a
    list of row dictionaries (:meth:`from_records`) or from a delimited file
    (:func:`repro.dataframe.io.read_delimited`).
    """

    def __init__(self, columns: Mapping[str, Sequence[Any]] | Sequence[Column], name: str = "table"):
        self.name = name
        cols: list[Column] = []
        if isinstance(columns, Mapping):
            for col_name, values in columns.items():
                cols.append(Column(str(col_name), list(values)))
        else:
            for col in columns:
                if not isinstance(col, Column):
                    raise SchemaError(f"expected Column instances, got {type(col).__name__}")
                cols.append(col)
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {c.name: c for c in cols}
        self._length = lengths.pop() if lengths else 0
        # Per-instance memos (sound because tables are immutable).
        self._fingerprint: tuple | None = None
        self._group_rows: dict[str, tuple[list[Any], np.ndarray, int]] = {}

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]], name: str = "table") -> "DataTable":
        """Build a table from a list of row dictionaries.

        Missing keys become nulls; the union of keys defines the schema in
        first-appearance order.
        """
        columns: dict[str, list[Any]] = {}
        for record in records:
            for key in record:
                if key not in columns:
                    columns[key] = []
        for record in records:
            for key in columns:
                columns[key].append(record.get(key))
        return cls(columns, name=name)

    @classmethod
    def empty(cls, schema: Sequence[str], name: str = "table") -> "DataTable":
        """Create an empty table with the given column names."""
        return cls({col: [] for col in schema}, name=name)

    # -- basic protocol ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTable):
            return NotImplemented
        return self.columns == other.columns and all(
            self._columns[c] == other._columns[c] for c in self._columns
        )

    def __repr__(self) -> str:
        return f"DataTable(name={self.name!r}, rows={len(self)}, columns={self.columns})"

    # -- schema -----------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in schema order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def schema(self) -> dict[str, str]:
        """Mapping of column name -> dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    def fingerprint(self) -> tuple:
        """A cheap, hashable content fingerprint of this table.

        Combines the table name, row count, schema and a 128-bit blake2b
        digest over every column's raw buffers (``ndarray.tobytes()`` for
        the data and the null mask).  Tables that are equal (same name,
        schema and values) share a fingerprint, so it can key execution
        caches across distinct-but-identical view objects; distinct
        contents get distinct digests (Python's ``hash`` is deliberately
        avoided — ``hash(-1) == hash(-2)`` would alias views).  Computed
        once per instance.

        Unicode buffers are re-packed to their minimal fixed width before
        hashing so equal contents digest identically regardless of the
        width the buffer happened to be allocated with; object-backed
        columns digest their value ``repr`` in chunks.  Note the digest
        format changed with the numpy-columnar rewrite, so fingerprints
        (and any cache keys persisted from older builds) are not comparable
        across versions.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            for column in self._columns.values():
                digest.update(repr((column.name, column.dtype)).encode())
                data, mask = column.buffers()
                if data.dtype == object:
                    values = column.values
                    if all(
                        v is None or (isinstance(v, str) and "\x00" not in v)
                        for v in values
                    ):
                        # All-string object columns canonicalise to the same
                        # unicode buffer a typed column would hold, so equal
                        # tables share a fingerprint regardless of which
                        # construction path produced them.
                        data = np.asarray(
                            ["" if v is None else v for v in values], dtype=str
                        )
                    else:
                        # Mixed / NUL-carrying columns (no typed twin can
                        # exist): digest the value repr in fixed-size chunks
                        # so huge columns never repr() into one giant
                        # transient string.
                        for start in range(0, len(values), 8192):
                            digest.update(repr(values[start : start + 8192]).encode())
                        continue
                if data.dtype.kind == "U":
                    width = max(1, int(np.char.str_len(data).max())) if data.size else 1
                    if data.dtype.itemsize != 4 * width:
                        data = data.astype(f"<U{width}")
                digest.update(data.dtype.str.encode())
                digest.update(data.tobytes())
                digest.update(mask.tobytes())
            self._fingerprint = (
                self.name,
                self._length,
                tuple((c.name, c.dtype) for c in self._columns.values()),
                digest.digest(),
            )
        return self._fingerprint

    def column(self, name: str) -> Column:
        """Return the named column, raising :class:`ColumnNotFoundError` if absent."""
        if name not in self._columns:
            raise ColumnNotFoundError(name, self.columns)
        return self._columns[name]

    def numeric_columns(self) -> list[str]:
        """Names of numeric (int/float) columns."""
        return [name for name, col in self._columns.items() if col.is_numeric]

    def categorical_columns(self) -> list[str]:
        """Names of string columns."""
        return [name for name, col in self._columns.items() if not col.is_numeric]

    # -- row access ---------------------------------------------------------------------
    def row(self, index: int) -> dict[str, Any]:
        """Return row *index* as a dictionary."""
        if index < 0 or index >= self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self) -> list[dict[str, Any]]:
        """Materialise all rows as dictionaries (intended for small results)."""
        return [self.row(i) for i in range(self._length)]

    def head(self, n: int = 5) -> "DataTable":
        """First *n* rows as a new table."""
        return self._take(np.arange(min(n, self._length)))

    def _take(self, indices: Sequence[int] | np.ndarray) -> "DataTable":
        cols = [col.take(indices) for col in self._columns.values()]
        return DataTable(cols, name=self.name)

    # -- relational operations ------------------------------------------------------------
    def select(self, columns: Sequence[str]) -> "DataTable":
        """Project onto *columns* (in the given order)."""
        cols = [self.column(name) for name in columns]
        return DataTable(cols, name=self.name)

    def filter(self, predicate: Predicate) -> "DataTable":
        """Return the rows satisfying *predicate*."""
        column = self.column(predicate.column)
        mask = predicate.mask(column)
        return self._take(np.flatnonzero(mask))

    def filter_rows(self, mask: Sequence[bool] | np.ndarray) -> "DataTable":
        """Return the rows where *mask* is True; the mask length must match."""
        if len(mask) != self._length:
            raise SchemaError(
                f"mask length {len(mask)} does not match table length {self._length}"
            )
        return self._take(np.flatnonzero(np.asarray(mask, dtype=bool)))

    def sort_by(self, column: str, descending: bool = False) -> "DataTable":
        """Sort rows by *column*; nulls sort last regardless of direction.

        Typed buffers sort with one stable ``np.argsort`` (numeric keys use
        a NaN-at-null float view, string keys sort via their distinct-value
        codes so descending stays stable).  The object-backed fallback keeps
        the type-aware key so mixed-type columns (e.g. ints and strings in
        one column, as external adapters can produce) order deterministically
        instead of raising ``TypeError`` mid-episode: ascending puts numbers
        first, then everything else by its string form; ``descending``
        reverses that bucket order too (strings before numbers), with nulls
        last either way.
        """
        col = self.column(column)
        data, null_mask = col.buffers()
        if data.dtype == object:
            return self._take(self._sort_order_mixed(col, descending))
        if col.is_numeric:
            key = data.astype(np.float64, copy=True)
            if null_mask.any():
                key[null_mask] = np.nan
            # NaN sorts last under stable argsort in either direction.
            order = np.argsort(-key if descending else key, kind="stable")
        else:
            valid = np.flatnonzero(~null_mask)
            codes = np.unique(data[valid], return_inverse=True)[1]
            sub_order = np.argsort(-codes if descending else codes, kind="stable")
            order = np.concatenate([valid[sub_order], np.flatnonzero(null_mask)])
        return self._take(order)

    @staticmethod
    def _sort_order_mixed(col: Column, descending: bool) -> list[int]:
        """Type-aware stable sort order for object-backed columns."""
        keyed = list(range(len(col)))
        values = col.values

        def key(i: int):
            value = values[i]
            if value is None:
                return (1, 0, 0.0, "")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return (0, 0, value, "")
            return (0, 1, 0.0, str(value))

        keyed.sort(key=key, reverse=descending)
        if descending:
            # Move nulls back to the end after the reverse sort.
            non_null = [i for i in keyed if values[i] is not None]
            nulls = [i for i in keyed if values[i] is None]
            keyed = non_null + nulls
        return keyed

    def _group_index(self, group_column: str) -> tuple[list[Any], np.ndarray, int]:
        """Group codes of each row, memoised per column.

        Returns ``(order, codes, count)`` where *order* lists the distinct
        non-null keys in first-appearance order, ``codes[i]`` is the index
        into *order* of row ``i``'s key (``-1`` for null keys) and *count*
        is ``len(order)``.  The map is computed once per (table, column)
        and reused by every aggregate function applied to the same view.
        """
        cached = self._group_rows.get(group_column)
        if cached is None:
            key_col = self._columns[group_column]
            data, null_mask = key_col.buffers()
            if data.dtype == object:
                order: list[Any] = []
                slots: dict[Any, int] = {}
                codes = np.full(len(data), -1, dtype=np.int64)
                for i, key in enumerate(key_col.values):
                    if key is None:
                        continue
                    slot = slots.get(key)
                    if slot is None:
                        slot = slots[key] = len(order)
                        order.append(key)
                    codes[i] = slot
            else:
                # Factorise against the column's memoised distinct values:
                # a direct lookup table for dense integer keys, otherwise one
                # binary search per row (O(n log k)); both beat re-sorting
                # the whole key buffer on every fresh view.
                order = key_col.unique()
                codes = np.full(len(data), -1, dtype=np.int64)
                if order:
                    uniq = np.asarray(order, dtype=data.dtype)
                    valid = ~null_mask
                    if data.dtype.kind in "iu":
                        lo = int(uniq.min())
                        span = int(uniq.max()) - lo + 1
                        if span <= max(1024, 4 * len(data)):
                            lut = np.full(span, -1, dtype=np.int64)
                            lut[uniq - lo] = np.arange(len(uniq))
                            codes[valid] = lut[data[valid] - lo]
                            cached = (order, codes, len(order))
                            self._group_rows[group_column] = cached
                            return cached
                    key_side, row_side = uniq, data[valid]
                    if (
                        data.dtype.kind == "U"
                        and len(order) >= HASH_FACTORIZE_MIN_DISTINCT
                    ):
                        # High-cardinality string keys: comparison-based
                        # factorisation pays O(log k) *wide-string* compares
                        # per row.  Hash every key to one uint64 in a single
                        # vectorised pass instead; rows then factorise with
                        # machine-word lookups (no string is ever compared).
                        hashed = self._hash_factorize(uniq, row_side)
                        if hashed is not None:
                            codes[valid] = hashed
                            cached = (order, codes, len(order))
                            self._group_rows[group_column] = cached
                            return cached
                    if data.dtype.kind == "U" and data.dtype.itemsize in (4, 8):
                        # Short strings binary-search ~2x faster when their
                        # UCS4 bytes are reinterpreted as one machine word
                        # (any consistent total order works for exact match).
                        word = np.int32 if data.dtype.itemsize == 4 else np.int64
                        key_side = uniq.view(word)
                        row_side = row_side.view(word)
                    by_value = np.argsort(key_side, kind="stable").astype(np.int64)
                    positions = np.searchsorted(key_side[by_value], row_side)
                    codes[valid] = by_value[positions]
            cached = (order, codes, len(order))
            self._group_rows[group_column] = cached
        return cached

    @staticmethod
    def _hash_factorize(uniq: np.ndarray, rows: np.ndarray) -> "np.ndarray | None":
        """Hash-based factorisation of unicode keys (no string comparisons).

        Every key — the k distinct values in *uniq* and the n row values in
        *rows* — is reduced to one uint64 by a weighted sum of its UCS4 code
        units (position-dependent odd weights, natural 2^64 wraparound).
        Row hashes are then resolved against the k distinct hashes with
        integer lookups.  Correctness needs only the k *distinct* hashes to
        be pairwise distinct (row values are drawn from them); if that check
        fails — vanishingly unlikely, ~k²/2^64 — the caller falls back to
        the comparison-based path.  Returns the codes of *rows* into
        *uniq*'s positions, or ``None`` on hash collision.
        """
        width = uniq.dtype.itemsize // 4
        if width == 0:
            return None
        weights = _hash_weights(width)

        def hash_keys(values: np.ndarray) -> np.ndarray:
            units = (
                np.ascontiguousarray(values)
                .view(np.uint32)
                .reshape(len(values), width)
                .astype(np.uint64)
            )
            # einsum contracts without materialising the (n, width) product
            # matrix; uint64 arithmetic wraps, which is the hash's modulus.
            return np.einsum("nw,w->n", units, weights)

        uniq_hashes = hash_keys(uniq)
        sorted_hashes = np.sort(uniq_hashes)
        if sorted_hashes.size > 1 and (sorted_hashes[1:] == sorted_hashes[:-1]).any():
            return None
        by_value = np.argsort(uniq_hashes, kind="stable").astype(np.int64)
        positions = np.searchsorted(sorted_hashes, hash_keys(rows))
        return by_value[positions]

    def _masked_group_index(
        self, group_column: str, where: "Sequence[bool] | np.ndarray"
    ) -> tuple[list[Any], np.ndarray, int]:
        """The group index restricted to the rows where *where* is True.

        Built from the full table's memoised :meth:`_group_index` by
        dropping masked-out rows and renumbering the surviving groups into
        the order of their first appearance *among the surviving rows* —
        exactly the ``(order, codes, count)`` that :meth:`_group_index`
        would return on the materialised ``filter_rows(where)`` table, so
        downstream aggregation is bit-identical to the eager two-step path.
        Masked-out rows keep code ``-1`` (the null-key convention), which
        excludes them from every aggregate kernel.
        """
        mask = np.asarray(where, dtype=bool)
        if len(mask) != self._length:
            raise SchemaError(
                f"mask length {len(mask)} does not match table length {self._length}"
            )
        base_order, base_codes, base_count = self._group_index(group_column)
        codes = np.where(mask, base_codes, np.int64(-1))
        surviving = codes[codes >= 0]
        if surviving.size == 0:
            return [], np.full(self._length, -1, dtype=np.int64), 0
        kept, first_row = np.unique(surviving, return_index=True)
        # Renumber by first appearance among surviving rows (np.unique
        # returns codes sorted by value, not by appearance).
        kept = kept[np.argsort(first_row, kind="stable")]
        remap = np.full(base_count + 1, -1, dtype=np.int64)
        remap[kept] = np.arange(len(kept), dtype=np.int64)
        order = [base_order[code] for code in kept.tolist()]
        # codes of -1 index the sentinel slot at remap[-1], which stays -1.
        return order, remap[codes], len(order)

    def groupby_agg(
        self,
        group_column: str,
        agg_func: str,
        agg_column: str | None = None,
        where: "Sequence[bool] | np.ndarray | None" = None,
    ) -> "DataTable":
        """Group by *group_column* and aggregate *agg_column* with *agg_func*.

        The result has two columns: the group key and a column named
        ``{agg_func}_{agg_column}`` -- ``count`` for counts over the group
        key itself and ``count_{agg_column}`` for counts over another
        column.  Groups are returned ordered by descending aggregate value,
        then by first appearance, which mirrors the presentation order in
        the paper's notebooks.

        ``where`` restricts the aggregation to the rows where the mask is
        True *without materialising the filtered table*: the result is
        value- and buffer-identical to ``self.filter_rows(where)
        .groupby_agg(...)``, but reuses this table's memoised group index
        (one factorisation serves every mask), which is how the query
        planner fuses filter→group-by pipelines into a single pass.
        """
        func = canonical_agg(agg_func)
        self.column(group_column)  # validate early for a clear error
        if agg_column is None:
            agg_column = group_column
        value_col = self.column(agg_column)
        if numeric_only(func) and not value_col.is_numeric:
            raise AggregationError(
                f"{func}() on non-numeric column {agg_column!r} (dtype {value_col.dtype})"
            )

        key_col = self.column(group_column)
        key_data = key_col.buffers()[0]

        if func == "count":
            result_name = "count" if agg_column == group_column else f"count_{agg_column}"
        else:
            result_name = f"{func}_{agg_column}"

        if (
            where is None
            and func == "count"
            and agg_column == group_column
            and key_data.dtype != object
            and result_name != group_column
        ):
            # Counting the group key is exactly the column's (memoised)
            # value_counts -- no group codes needed at all.
            counts_map = key_col.value_counts()
            if counts_map:
                order = list(counts_map)
                counts = np.fromiter(
                    counts_map.values(), dtype=np.int64, count=len(order)
                )
                return self._build_grouped_result(
                    group_column,
                    key_col,
                    order,
                    result_name,
                    counts,
                    np.zeros(len(order), dtype=bool),
                    "int",
                )

        if where is None:
            order, codes, n_groups = self._group_index(group_column)
        else:
            order, codes, n_groups = self._masked_group_index(group_column, where)
        aggregated = self._grouped_aggregate(func, codes, n_groups, value_col)

        if (
            isinstance(aggregated, tuple)
            and key_data.dtype != object
            and result_name != group_column
            and n_groups > 0
            and not aggregated[1].all()
        ):
            agg_data, agg_mask, agg_dtype = aggregated
            return self._build_grouped_result(
                group_column, key_col, order, result_name, agg_data, agg_mask, agg_dtype
            )

        # Generic path (object-backed inputs, empty or all-null results):
        # build through the coercing constructor, preserving the historical
        # dtype inference (e.g. an all-null aggregate column infers ``str``).
        if isinstance(aggregated, tuple):
            agg_data, agg_mask, _ = aggregated
            values = [
                None if null else value
                for value, null in zip(agg_data.tolist(), agg_mask.tolist())
            ]
        else:
            values = aggregated
        table = DataTable({group_column: order, result_name: values}, name=self.name)
        # Present the largest groups first, which is how analysts read them.
        value_column = table.column(result_name)
        if value_column.is_numeric:
            table = table.sort_by(result_name, descending=True)
        return table

    def _build_grouped_result(
        self,
        group_column: str,
        key_col: Column,
        order: list[Any],
        result_name: str,
        agg_data: np.ndarray,
        agg_mask: np.ndarray,
        agg_dtype: str,
    ) -> "DataTable":
        """Assemble a grouped result straight from typed buffers.

        The result arrives already ordered largest-aggregate-first (stable,
        nulls last) -- which is how analysts read grouped views -- without a
        second table materialisation.
        """
        keys = np.asarray(order, dtype=key_col.buffers()[0].dtype)
        if agg_dtype in ("int", "float"):
            sort_key = agg_data.astype(np.float64, copy=True)
            if agg_mask.any():
                sort_key[agg_mask] = np.nan
            by_value = np.argsort(-sort_key, kind="stable")
            keys = keys[by_value]
            agg_data = agg_data[by_value]
            agg_mask = agg_mask[by_value]
        cols = [
            Column._from_buffers(
                group_column, key_col.dtype, keys, np.zeros(len(order), dtype=bool)
            ),
            Column._from_buffers(result_name, agg_dtype, agg_data, agg_mask),
        ]
        return DataTable(cols, name=self.name)

    @staticmethod
    def _grouped_aggregate(
        func: str, codes: np.ndarray, n_groups: int, value_col: Column
    ) -> tuple[np.ndarray, np.ndarray, str] | list[Any]:
        """Aggregate *value_col* per group code with vectorised kernels.

        Returns ``(data, null_mask, dtype)`` buffers with one slot per group
        (masked where the group has no non-null values, matching the
        per-list reference aggregations in :mod:`repro.dataframe.aggregates`).
        Object-backed value columns fall back to that reference
        implementation -- returning a plain value list -- so error semantics
        for mixed-type values are preserved.
        """
        data, null_mask = value_col.buffers()
        if data.dtype == object:
            buckets: list[list[Any]] = [[] for _ in range(n_groups)]
            for code, value in zip(codes.tolist(), value_col.values):
                if code >= 0:
                    buckets[code].append(value)
            return [apply_aggregation(func, bucket) for bucket in buckets]

        selected = (codes >= 0) & ~null_mask
        group_of = codes[selected]
        counts = np.bincount(group_of, minlength=n_groups)
        empty = counts == 0
        if func == "count":
            return counts, np.zeros(n_groups, dtype=bool), "int"
        if func == "nunique":
            distinct = np.zeros(n_groups, dtype=np.int64)
            if group_of.size:
                distinct_values = np.unique(data[selected], return_inverse=True)[1]
                stride = int(distinct_values.max()) + 1
                pairs = np.unique(group_of * stride + distinct_values)
                distinct = np.bincount(pairs // stride, minlength=n_groups)
            return distinct, np.zeros(n_groups, dtype=bool), "int"
        if func in ("sum", "mean"):
            weights = data[selected]
            if (
                func == "sum"
                and value_col.dtype == "int"
                and weights.size
                # A group sum can reach |value|_max * group_size; beyond
                # 2**52 the float64 accumulation loses exactness.  Magnitude
                # via exact Python ints: np.abs(INT64_MIN) wraps.
                and max(abs(int(weights.min())), abs(int(weights.max())))
                > 2**52 // weights.size
            ):
                # float64 weights would lose exactness; take the per-list
                # reference path for these (rare) huge-int columns.
                buckets = [[] for _ in range(n_groups)]
                for code, value in zip(group_of.tolist(), weights.tolist()):
                    buckets[code].append(value)
                return [apply_aggregation(func, bucket) for bucket in buckets]
            sums = np.bincount(
                group_of, weights=weights.astype(np.float64), minlength=n_groups
            )
            if func == "mean":
                means = np.divide(
                    sums, counts, out=np.full(n_groups, np.nan), where=~empty
                )
                return means, empty, "float"
            if value_col.dtype == "int":
                return np.where(empty, 0, sums).astype(np.int64), empty, "int"
            # Keep the canonical NaN filler at masked slots so equal tables
            # digest identically regardless of construction path.
            return np.where(empty, np.nan, sums), empty, "float"
        # min/max: order rows by (group, value) once, then read the group
        # boundaries.  Works uniformly for numeric and unicode buffers.
        out = np.zeros(n_groups, dtype=data.dtype)
        if group_of.size:
            sub = data[selected]
            by_group_then_value = np.lexsort((sub, group_of))
            sorted_groups = group_of[by_group_then_value]
            sorted_values = sub[by_group_then_value]
            starts = np.flatnonzero(
                np.r_[True, sorted_groups[1:] != sorted_groups[:-1]]
            )
            ends = np.r_[starts[1:], sorted_groups.size]
            edge = starts if func == "min" else ends - 1
            out[sorted_groups[starts]] = sorted_values[edge]
        if value_col.dtype == "float" and empty.any():
            out[empty] = np.nan
        return out, empty, value_col.dtype

    def distinct(self, column: str) -> list[Any]:
        """Distinct non-null values of *column*."""
        return self.column(column).unique()

    def value_counts(self, column: str) -> dict[Any, int]:
        """Frequency of each non-null value in *column*."""
        return self.column(column).value_counts()

    def sample_values(self, column: str, k: int = 10, seed: int = 0) -> list[Any]:
        """A deterministic pseudo-random sample of up to *k* distinct values."""
        values = self.distinct(column)
        if len(values) <= k:
            return values
        # Simple deterministic LCG shuffle; avoids importing random for reproducibility.
        state = (seed * 2654435761 + 97) % (2**32)
        picked: list[Any] = []
        pool = list(values)
        for _ in range(k):
            state = (1103515245 * state + 12345) % (2**31)
            index = state % len(pool)
            picked.append(pool.pop(index))
        return picked

    # -- export ------------------------------------------------------------------------
    def to_records(self) -> list[dict[str, Any]]:
        """Alias of :meth:`rows` for symmetry with :meth:`from_records`."""
        return self.rows()

    def to_columns(self) -> dict[str, list[Any]]:
        """Materialise the table as a mapping of column name -> list of values."""
        return {name: list(col.values) for name, col in self._columns.items()}

    def describe(self) -> dict[str, dict[str, Any]]:
        """Per-column summary used by prompts and the notebook renderer."""
        summary: dict[str, dict[str, Any]] = {}
        for name, col in self._columns.items():
            info: dict[str, Any] = {
                "dtype": col.dtype,
                "nulls": col.null_count(),
                "distinct": col.nunique(),
            }
            if col.is_numeric:
                info.update({"min": col.min(), "max": col.max(), "mean": col.mean()})
            else:
                counts = col.value_counts()
                if counts:
                    top = max(counts.items(), key=lambda item: item[1])
                    info.update({"top": top[0], "top_count": top[1]})
            summary[name] = info
        return summary


def concat_rows(tables: Iterable[DataTable], name: str = "table") -> DataTable:
    """Concatenate tables that share the same schema, preserving row order."""
    tables = list(tables)
    if not tables:
        raise SchemaError("concat_rows() requires at least one table")
    schema = tables[0].columns
    for table in tables[1:]:
        if table.columns != schema:
            raise SchemaError(f"schema mismatch: {table.columns} vs {schema}")
    merged: dict[str, list[Any]] = {col: [] for col in schema}
    for table in tables:
        data = table.to_columns()
        for col in schema:
            merged[col].extend(data[col])
    return DataTable(merged, name=name)


def infer_schema(records: Sequence[Mapping[str, Any]]) -> dict[str, str]:
    """Infer a ``column -> dtype`` schema from row dictionaries."""
    columns: dict[str, list[Any]] = {}
    for record in records:
        for key, value in record.items():
            columns.setdefault(key, []).append(value)
    return {key: infer_dtype(values) for key, values in columns.items()}
