"""The :class:`DataTable`: an immutable, columnar, in-memory table.

This is the engine that replaces pandas in the LINX pipeline.  It supports
exactly the operations the paper's exploration model requires:

* schema inspection (column names, dtypes, distinct counts),
* row filtering with :class:`~repro.dataframe.expressions.Predicate`,
* group-and-aggregate with the functions in
  :mod:`repro.dataframe.aggregates`,
* ordering, projection and sampling helpers used by the notebook renderer.

Tables are immutable: each operation returns a new table, so every node of
an exploration tree holds an independent view of the data.

Immutability enables two per-instance memoisations used by the memoized
execution subsystem (:mod:`repro.explore.cache`):

* :meth:`DataTable.fingerprint` — a cheap content fingerprint (schema,
  length and a per-column content digest) computed once and reused as the
  cache key for repeated ``(view, operation)`` executions;
* a group-index map per group-by column, so several aggregate functions
  over the same view share one grouping pass.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from .aggregates import apply_aggregation, canonical_agg, numeric_only
from .column import Column, infer_dtype
from .errors import (
    AggregationError,
    ColumnNotFoundError,
    SchemaError,
)
from .expressions import Predicate


class DataTable:
    """An immutable columnar table.

    Construct from a mapping of column name -> sequence of values, from a
    list of row dictionaries (:meth:`from_records`) or from a delimited file
    (:func:`repro.dataframe.io.read_delimited`).
    """

    def __init__(self, columns: Mapping[str, Sequence[Any]] | Sequence[Column], name: str = "table"):
        self.name = name
        cols: list[Column] = []
        if isinstance(columns, Mapping):
            for col_name, values in columns.items():
                cols.append(Column(str(col_name), list(values)))
        else:
            for col in columns:
                if not isinstance(col, Column):
                    raise SchemaError(f"expected Column instances, got {type(col).__name__}")
                cols.append(col)
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {c.name: c for c in cols}
        self._length = lengths.pop() if lengths else 0
        # Per-instance memos (sound because tables are immutable).
        self._fingerprint: tuple | None = None
        self._group_rows: dict[str, tuple[list[Any], dict[Any, list[int]]]] = {}

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]], name: str = "table") -> "DataTable":
        """Build a table from a list of row dictionaries.

        Missing keys become nulls; the union of keys defines the schema in
        first-appearance order.
        """
        columns: dict[str, list[Any]] = {}
        for record in records:
            for key in record:
                if key not in columns:
                    columns[key] = []
        for record in records:
            for key in columns:
                columns[key].append(record.get(key))
        return cls(columns, name=name)

    @classmethod
    def empty(cls, schema: Sequence[str], name: str = "table") -> "DataTable":
        """Create an empty table with the given column names."""
        return cls({col: [] for col in schema}, name=name)

    # -- basic protocol ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTable):
            return NotImplemented
        return self.columns == other.columns and all(
            self._columns[c] == other._columns[c] for c in self._columns
        )

    def __repr__(self) -> str:
        return f"DataTable(name={self.name!r}, rows={len(self)}, columns={self.columns})"

    # -- schema -----------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in schema order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def schema(self) -> dict[str, str]:
        """Mapping of column name -> dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    def fingerprint(self) -> tuple:
        """A cheap, hashable content fingerprint of this table.

        Combines the table name, row count, schema and a 128-bit blake2b
        digest of every column's canonical value representation.  Tables
        that are equal (same name, schema and values) share a fingerprint,
        so it can key execution caches across distinct-but-identical view
        objects; distinct contents get distinct digests (Python's ``hash``
        is deliberately avoided — ``hash(-1) == hash(-2)`` would alias
        views).  Computed once per instance.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            for column in self._columns.values():
                digest.update(repr((column.name, column.dtype)).encode())
                values = column.values
                # Digest in fixed-size chunks so huge columns never repr()
                # into one giant transient string.
                for start in range(0, len(values), 8192):
                    digest.update(repr(values[start : start + 8192]).encode())
            self._fingerprint = (
                self.name,
                self._length,
                tuple((c.name, c.dtype) for c in self._columns.values()),
                digest.digest(),
            )
        return self._fingerprint

    def column(self, name: str) -> Column:
        """Return the named column, raising :class:`ColumnNotFoundError` if absent."""
        if name not in self._columns:
            raise ColumnNotFoundError(name, self.columns)
        return self._columns[name]

    def numeric_columns(self) -> list[str]:
        """Names of numeric (int/float) columns."""
        return [name for name, col in self._columns.items() if col.is_numeric]

    def categorical_columns(self) -> list[str]:
        """Names of string columns."""
        return [name for name, col in self._columns.items() if not col.is_numeric]

    # -- row access ---------------------------------------------------------------------
    def row(self, index: int) -> dict[str, Any]:
        """Return row *index* as a dictionary."""
        if index < 0 or index >= self._length:
            raise IndexError(f"row index {index} out of range for {self._length} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self) -> list[dict[str, Any]]:
        """Materialise all rows as dictionaries (intended for small results)."""
        return [self.row(i) for i in range(self._length)]

    def head(self, n: int = 5) -> "DataTable":
        """First *n* rows as a new table."""
        indices = list(range(min(n, self._length)))
        return self._take(indices)

    def _take(self, indices: Sequence[int]) -> "DataTable":
        cols = [col.take(indices) for col in self._columns.values()]
        return DataTable(cols, name=self.name)

    # -- relational operations ------------------------------------------------------------
    def select(self, columns: Sequence[str]) -> "DataTable":
        """Project onto *columns* (in the given order)."""
        cols = [self.column(name) for name in columns]
        return DataTable(cols, name=self.name)

    def filter(self, predicate: Predicate) -> "DataTable":
        """Return the rows satisfying *predicate*."""
        column = self.column(predicate.column)
        mask = predicate.mask(column)
        indices = [i for i, keep in enumerate(mask) if keep]
        return self._take(indices)

    def filter_rows(self, mask: Sequence[bool]) -> "DataTable":
        """Return the rows where *mask* is True; the mask length must match."""
        if len(mask) != self._length:
            raise SchemaError(
                f"mask length {len(mask)} does not match table length {self._length}"
            )
        indices = [i for i, keep in enumerate(mask) if keep]
        return self._take(indices)

    def sort_by(self, column: str, descending: bool = False) -> "DataTable":
        """Sort rows by *column*; nulls sort last regardless of direction.

        The sort key is type-aware so mixed-type columns (e.g. ints and
        strings in one column, as external adapters can produce) order
        deterministically instead of raising ``TypeError`` mid-episode:
        ascending puts numbers first, then everything else by its string
        form; ``descending`` reverses that bucket order too (strings before
        numbers), with nulls last either way.
        """
        col = self.column(column)
        keyed = list(range(self._length))

        def key(i: int):
            value = col[i]
            if value is None:
                return (1, 0, 0.0, "")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return (0, 0, value, "")
            return (0, 1, 0.0, str(value))

        keyed.sort(key=key, reverse=descending)
        if descending:
            # Move nulls back to the end after the reverse sort.
            non_null = [i for i in keyed if col[i] is not None]
            nulls = [i for i in keyed if col[i] is None]
            keyed = non_null + nulls
        return self._take(keyed)

    def _group_index(self, group_column: str) -> tuple[list[Any], dict[Any, list[int]]]:
        """Row indices of each non-null group key, memoised per column.

        Returns ``(order, rows)`` where *order* lists the keys in
        first-appearance order and ``rows[key]`` holds the row indices of
        that group.  The map is computed once per (table, column) and reused
        by every aggregate function applied to the same view.
        """
        cached = self._group_rows.get(group_column)
        if cached is None:
            key_col = self._columns[group_column]
            order: list[Any] = []
            rows: dict[Any, list[int]] = {}
            for i, key in enumerate(key_col.values):
                if key is None:
                    continue
                bucket = rows.get(key)
                if bucket is None:
                    rows[key] = bucket = []
                    order.append(key)
                bucket.append(i)
            cached = (order, rows)
            self._group_rows[group_column] = cached
        return cached

    def groupby_agg(
        self,
        group_column: str,
        agg_func: str,
        agg_column: str | None = None,
    ) -> "DataTable":
        """Group by *group_column* and aggregate *agg_column* with *agg_func*.

        The result has two columns: the group key and a column named
        ``{agg_func}_{agg_column}`` -- ``count`` for counts over the group
        key itself and ``count_{agg_column}`` for counts over another
        column.  Groups are returned ordered by descending aggregate value,
        then by key, which mirrors the presentation order in the paper's
        notebooks.
        """
        func = canonical_agg(agg_func)
        self.column(group_column)  # validate early for a clear error
        if agg_column is None:
            agg_column = group_column
        value_col = self.column(agg_column)
        if numeric_only(func) and not value_col.is_numeric:
            raise AggregationError(
                f"{func}() on non-numeric column {agg_column!r} (dtype {value_col.dtype})"
            )

        order, rows = self._group_index(group_column)
        raw_values = value_col.values
        if func == "count":
            result_name = "count" if agg_column == group_column else f"count_{agg_column}"
        else:
            result_name = f"{func}_{agg_column}"
        keys: list[Any] = []
        values: list[Any] = []
        for key in order:
            keys.append(key)
            values.append(
                apply_aggregation(func, [raw_values[i] for i in rows[key]])
            )

        table = DataTable({group_column: keys, result_name: values}, name=self.name)
        # Present the largest groups first, which is how analysts read them.
        value_column = table.column(result_name)
        if value_column.is_numeric:
            table = table.sort_by(result_name, descending=True)
        return table

    def distinct(self, column: str) -> list[Any]:
        """Distinct non-null values of *column*."""
        return self.column(column).unique()

    def value_counts(self, column: str) -> dict[Any, int]:
        """Frequency of each non-null value in *column*."""
        return self.column(column).value_counts()

    def sample_values(self, column: str, k: int = 10, seed: int = 0) -> list[Any]:
        """A deterministic pseudo-random sample of up to *k* distinct values."""
        values = self.distinct(column)
        if len(values) <= k:
            return values
        # Simple deterministic LCG shuffle; avoids importing random for reproducibility.
        state = (seed * 2654435761 + 97) % (2**32)
        picked: list[Any] = []
        pool = list(values)
        for _ in range(k):
            state = (1103515245 * state + 12345) % (2**31)
            index = state % len(pool)
            picked.append(pool.pop(index))
        return picked

    # -- export ------------------------------------------------------------------------
    def to_records(self) -> list[dict[str, Any]]:
        """Alias of :meth:`rows` for symmetry with :meth:`from_records`."""
        return self.rows()

    def to_columns(self) -> dict[str, list[Any]]:
        """Materialise the table as a mapping of column name -> list of values."""
        return {name: list(col.values) for name, col in self._columns.items()}

    def describe(self) -> dict[str, dict[str, Any]]:
        """Per-column summary used by prompts and the notebook renderer."""
        summary: dict[str, dict[str, Any]] = {}
        for name, col in self._columns.items():
            info: dict[str, Any] = {
                "dtype": col.dtype,
                "nulls": col.null_count(),
                "distinct": col.nunique(),
            }
            if col.is_numeric:
                info.update({"min": col.min(), "max": col.max(), "mean": col.mean()})
            else:
                counts = col.value_counts()
                if counts:
                    top = max(counts.items(), key=lambda item: item[1])
                    info.update({"top": top[0], "top_count": top[1]})
            summary[name] = info
        return summary


def concat_rows(tables: Iterable[DataTable], name: str = "table") -> DataTable:
    """Concatenate tables that share the same schema, preserving row order."""
    tables = list(tables)
    if not tables:
        raise SchemaError("concat_rows() requires at least one table")
    schema = tables[0].columns
    for table in tables[1:]:
        if table.columns != schema:
            raise SchemaError(f"schema mismatch: {table.columns} vs {schema}")
    merged: dict[str, list[Any]] = {col: [] for col in schema}
    for table in tables:
        data = table.to_columns()
        for col in schema:
            merged[col].extend(data[col])
    return DataTable(merged, name=name)


def infer_schema(records: Sequence[Mapping[str, Any]]) -> dict[str, str]:
    """Infer a ``column -> dtype`` schema from row dictionaries."""
    columns: dict[str, list[Any]] = {}
    for record in records:
        for key, value in record.items():
            columns.setdefault(key, []).append(value)
    return {key: infer_dtype(values) for key, values in columns.items()}
