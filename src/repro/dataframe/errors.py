"""Exceptions raised by the columnar data engine.

The exception hierarchy mirrors what a database client library would expose:
a single root (:class:`DataFrameError`) so callers can catch everything from
the engine, and specific subclasses for schema, type and lookup problems.
"""

from __future__ import annotations


class DataFrameError(Exception):
    """Base class for every error raised by :mod:`repro.dataframe`."""


class ColumnNotFoundError(DataFrameError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        message = f"column {name!r} not found"
        if self.available:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)


class SchemaError(DataFrameError):
    """Rows or columns are inconsistent with the table schema."""


class TypeMismatchError(DataFrameError, TypeError):
    """An operation was applied to a column of an incompatible type."""


class AggregationError(DataFrameError):
    """An aggregation function cannot be applied to the given column."""


class FilterError(DataFrameError):
    """A filter predicate is malformed or cannot be evaluated."""


class IOFormatError(DataFrameError):
    """A delimited file could not be parsed into a table."""
