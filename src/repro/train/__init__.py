"""Distributed training tier: actor/learner fleet, checkpoints, policy registry.

The training loop of :mod:`repro.cdrl` runs one process.  This package turns
it into an operable fleet:

* :mod:`repro.train.checkpoint` — schema-versioned, bit-identical training
  checkpoints (network weights, optimizer moments, pending gradient batch,
  elite replay set and history), so resume-at-episode-k equals an
  uninterrupted run exactly.
* :mod:`repro.train.actor` — actor processes that collect rollout waves over
  the shared disk execution cache, rebuilt declaratively from a primitive
  spec like ``explore_many(workers="process")`` workers are.
* :mod:`repro.train.learner` — the synchronous learner that aggregates actor
  waves into the trainer's gradient batches, keeping W actors × K envs
  bit-identical to single-process ``num_envs=W*K`` training.
* :mod:`repro.train.registry` — a sqlite-backed :class:`PolicyRegistry` of
  named, versioned policy artifacts that self-registers session-generator
  factories (``cdrl:<name>-v<N>``) into the serving tier's stage registry.

``python -m repro.train`` is the operational CLI (train / resume / list /
promote).
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    TrainingCheckpoint,
    TrainSpec,
)
from .learner import FleetLearner
from .registry import PolicyRegistry, RegisteredPolicySessionGenerator

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "FleetLearner",
    "PolicyRegistry",
    "RegisteredPolicySessionGenerator",
    "TrainSpec",
    "TrainingCheckpoint",
]
