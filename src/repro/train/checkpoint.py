"""Bit-identical training checkpoints for the CDRL trainer.

A checkpoint captures everything the training loop needs to continue as if
it had never stopped: network weights and optimizer moments (structurally
serialized — dtype string, shape, raw bytes — the same discipline
:mod:`repro.explore.diskcache` uses for table columns, never pickled object
graphs), the trainer's pending gradient batch and elite replay set, the
JSON-round-tripping :class:`~repro.rl.trainer.TrainingHistory`, and the
episode position.  Because wave rollouts draw from per-episode RNG streams
(``env_rng(seed, episode_index)``), the RNG "position" of a run *is* the
``(seed, episodes_completed)`` pair — no stateful generator needs saving.

The hard guarantee, tested in ``tests/test_train.py``: restoring a
checkpoint taken at episode *k* and training to the end produces weights,
optimizer state and history bit-identical to the uninterrupted run.

One subtlety is the elite replay set.  ``PolicyGradientTrainer._update``
excludes elite episodes that are *identical objects* to batch members, so a
checkpoint must preserve aliasing: elite entries that are also in the
pending batch are stored as ``("batch", index)`` references and re-aliased
on restore; independent elites serialize their transitions.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent
from repro.cdrl.compliance import ComplianceRewardConfig
from repro.dataframe.table import DataTable
from repro.datasets.registry import load_dataset
from repro.rl.buffer import EpisodeBuffer
from repro.rl.policy import PolicyDecision
from repro.rl.trainer import PolicyGradientTrainer, TrainerConfig, TrainingHistory

CHECKPOINT_SCHEMA_VERSION = 1

#: Serialized array: (dtype string, shape, raw bytes).
ArrayPayload = tuple[str, tuple[int, ...], bytes]


def _pack_array(array: np.ndarray) -> ArrayPayload:
    return (array.dtype.str, tuple(array.shape), array.tobytes())


def _unpack_array(payload: ArrayPayload) -> np.ndarray:
    dtype_str, shape, raw = payload
    return np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(shape).copy()


# -- training specs ------------------------------------------------------------------
def config_to_payload(config: CdrlConfig) -> dict:
    """A :class:`CdrlConfig` as a dict of primitives (pickle/JSON friendly)."""
    payload = dataclasses.asdict(config)
    payload["hidden_sizes"] = tuple(config.hidden_sizes)
    return payload


def config_from_payload(payload: dict) -> CdrlConfig:
    """Invert :func:`config_to_payload`."""
    data = dict(payload)
    data["hidden_sizes"] = tuple(data.get("hidden_sizes", (64, 64)))
    data["trainer"] = TrainerConfig(**data.get("trainer", {}))
    data["compliance"] = ComplianceRewardConfig(**data.get("compliance", {}))
    return CdrlConfig(**data)


@dataclass(frozen=True)
class TrainSpec:
    """What to train on, declaratively: a named dataset plus LDX and config.

    Everything is a primitive (or reduces to primitives via
    :meth:`to_payload`), so the same spec can rebuild identical training
    contexts in the learner, in every actor process, and on resume — the
    pattern ``LinxEngine.worker_spec()`` established for ``explore_many``.
    """

    dataset: str
    ldx_text: str
    num_rows: Optional[int] = None
    dataset_seed: Optional[int] = None
    config: CdrlConfig = field(default_factory=CdrlConfig)

    def to_payload(self) -> dict:
        return {
            "dataset": self.dataset,
            "ldx_text": self.ldx_text,
            "num_rows": self.num_rows,
            "dataset_seed": self.dataset_seed,
            "config": config_to_payload(self.config),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TrainSpec":
        return cls(
            dataset=payload["dataset"],
            ldx_text=payload["ldx_text"],
            num_rows=payload.get("num_rows"),
            dataset_seed=payload.get("dataset_seed"),
            config=config_from_payload(payload["config"]),
        )

    def load_table(self) -> DataTable:
        return load_dataset(self.dataset, num_rows=self.num_rows, seed=self.dataset_seed)

    def build_agent(self, *, num_envs: Optional[int] = None, cache=None) -> LinxCdrlAgent:
        """Construct the CDRL agent this spec describes.

        ``num_envs`` overrides both the agent-level and trainer-level knobs
        (the learner trains with 1 driving env; actors with their own K).
        """
        config = self.config
        if num_envs is not None:
            config = dataclasses.replace(
                config,
                num_envs=num_envs,
                trainer=dataclasses.replace(config.trainer, num_envs=num_envs),
            )
        return LinxCdrlAgent(self.load_table(), self.ldx_text, config=config, cache=cache)


# -- episode-buffer serialization ----------------------------------------------------
def serialize_buffer(buffer: EpisodeBuffer) -> list[tuple]:
    """An :class:`EpisodeBuffer` as rows of primitives.

    Only the fields gradient updates consume survive: per-head indices, the
    observation, the logit biases in effect at sampling time, and the scalar
    log-prob/value/entropy.  Probability vectors are recomputed by the
    forward pass inside ``accumulate_gradient`` and are deliberately
    dropped.
    """
    rows: list[tuple] = []
    for transition in buffer.transitions:
        decision = transition.decision
        rows.append(
            (
                tuple((name, int(index)) for name, index in decision.indices.items()),
                _pack_array(np.asarray(decision.observation, dtype=np.float64)),
                tuple(
                    (name, _pack_array(np.asarray(bias, dtype=np.float64)))
                    for name, bias in decision.biases.items()
                ),
                float(decision.log_prob),
                float(decision.value),
                float(decision.entropy),
                float(transition.reward),
                bool(transition.done),
            )
        )
    return rows


def deserialize_buffer(rows: list[tuple]) -> EpisodeBuffer:
    """Invert :func:`serialize_buffer` (probabilities come back empty)."""
    buffer = EpisodeBuffer()
    for indices, observation, biases, log_prob, value, entropy, reward, done in rows:
        decision = PolicyDecision(
            indices={name: int(index) for name, index in indices},
            probabilities={},
            log_prob=float(log_prob),
            value=float(value),
            entropy=float(entropy),
            observation=_unpack_array(observation),
            biases={name: _unpack_array(payload) for name, payload in biases},
        )
        buffer.add(decision, float(reward), bool(done))
    return buffer


# -- the checkpoint ------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """A schema-versioned snapshot of a training run at a wave boundary."""

    spec: dict
    episodes_completed: int
    total_episodes: int
    network_state: list
    optimizer_state: dict
    history: dict
    #: Episodes collected since the last gradient update (usually empty at a
    #: wave boundary unless batch_episodes does not divide the wave size).
    pending_batch: list
    #: Elite replay set; each entry is ``("batch", index)`` (aliasing a
    #: pending-batch member) or ``("buffer", rows)``.
    elite: list
    #: Best fully-compliant session seen so far, as
    #: ``(operation signatures, utility)`` — or ``None``.
    best_compliant: Optional[tuple]
    created_at: float = 0.0
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    # -- serialization ---------------------------------------------------------------
    def to_blob(self) -> bytes:
        payload = {
            "schema_version": self.schema_version,
            "spec": self.spec,
            "episodes_completed": self.episodes_completed,
            "total_episodes": self.total_episodes,
            "network_state": self.network_state,
            "optimizer_state": self.optimizer_state,
            "history": self.history,
            "pending_batch": self.pending_batch,
            "elite": self.elite,
            "best_compliant": self.best_compliant,
            "created_at": self.created_at,
        }
        return pickle.dumps(payload, protocol=4)

    @classmethod
    def from_blob(cls, blob: bytes) -> "TrainingCheckpoint":
        payload = pickle.loads(blob)
        version = payload.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema version {version} is not supported "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        return cls(
            spec=payload["spec"],
            episodes_completed=payload["episodes_completed"],
            total_episodes=payload["total_episodes"],
            network_state=payload["network_state"],
            optimizer_state=payload["optimizer_state"],
            history=payload["history"],
            pending_batch=payload["pending_batch"],
            elite=payload["elite"],
            best_compliant=payload["best_compliant"],
            created_at=payload["created_at"],
            schema_version=version,
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write atomically (tmp + rename) so a crash never leaves a torn file."""
        path = os.fspath(path)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(self.to_blob())
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainingCheckpoint":
        with open(path, "rb") as handle:
            return cls.from_blob(handle.read())


def capture(
    spec_payload: dict,
    trainer: PolicyGradientTrainer,
    *,
    episodes_completed: int,
    total_episodes: int,
    best_compliant: Optional[tuple] = None,
) -> TrainingCheckpoint:
    """Snapshot *trainer* at a wave boundary.

    Elite buffers that are identity-members of the pending batch become
    ``("batch", index)`` references so :func:`restore_into` can rebuild the
    exact aliasing ``_update``'s replay filter depends on.
    """
    elite_payload: list[tuple] = []
    for buffer in trainer._elite:
        batch_index = next(
            (i for i, member in enumerate(trainer._batch) if member is buffer), None
        )
        if batch_index is not None:
            elite_payload.append(("batch", batch_index))
        else:
            elite_payload.append(("buffer", serialize_buffer(buffer)))
    return TrainingCheckpoint(
        spec=spec_payload,
        episodes_completed=episodes_completed,
        total_episodes=total_episodes,
        network_state=trainer.policy.network.export_state(),
        optimizer_state=trainer.optimizer.export_state(trainer.policy.parameters()),
        history=trainer.history.to_dict(),
        pending_batch=[serialize_buffer(buffer) for buffer in trainer._batch],
        elite=elite_payload,
        best_compliant=best_compliant,
        created_at=time.time(),
    )


def restore_into(checkpoint: TrainingCheckpoint, trainer: PolicyGradientTrainer) -> None:
    """Load *checkpoint* into a freshly built *trainer* in place.

    The trainer must have been constructed from the checkpoint's spec (same
    dataset/LDX/config), so the network architecture matches; weights load
    in place, which keeps the optimizer-moment identity keys valid.
    """
    trainer.policy.network.load_state(checkpoint.network_state)
    trainer.optimizer.load_state(trainer.policy.parameters(), checkpoint.optimizer_state)
    trainer.history = TrainingHistory.from_dict(checkpoint.history)
    trainer._batch = [deserialize_buffer(rows) for rows in checkpoint.pending_batch]
    elite: list[EpisodeBuffer] = []
    for kind, payload in checkpoint.elite:
        if kind == "batch":
            elite.append(trainer._batch[payload])
        elif kind == "buffer":
            elite.append(deserialize_buffer(payload))
        else:
            raise ValueError(f"unknown elite entry kind {kind!r}")
    trainer._elite = elite
