"""Training-tier smoke check: fleet bit-identity, resume, publish, serve.

Run by CI (``python -m repro.train.smoke``) to gate the distributed
training tier's load-bearing guarantees end to end:

* a 2-actor fleet (inline) trains **bit-identical** to the single-process
  trainer with ``num_envs=2`` — same final weights, same history;
* a *process* fleet killed at a wave boundary and resumed from its
  checkpoint (with a different fleet shape) finishes with the same final
  weights — kill-and-resume is exact, and the fleet shape is operational,
  not semantic;
* the trained policy publishes to a :class:`~repro.train.registry.PolicyRegistry`
  and is served over HTTP: an ``ExploreRequest`` naming
  ``stages={"session_generator": "cdrl:smoke-v1"}`` returns a session from
  the registered policy without training, and ``/stats`` reports the
  registry.
"""

from __future__ import annotations

import http.client
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.cdrl.agent import CdrlConfig

from .checkpoint import TrainSpec
from .learner import FleetLearner
from .registry import PolicyRegistry

SMOKE_LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""

NUM_ROWS = 150
EPISODES = 8
SEED = 3


def _call(
    port: int, method: str, path: str, body: dict[str, Any] | None = None
) -> tuple[int, dict[str, Any]]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(
            method, path, body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _history_fields(history_dict: dict) -> dict:
    """History minus cache_stats (actors and trainer cache independently)."""
    return {
        key: history_dict[key]
        for key in ("episode_returns", "episode_steps", "greedy_returns")
    }


def _smoke_spec() -> TrainSpec:
    return TrainSpec(
        dataset="flights",
        ldx_text=SMOKE_LDX,
        num_rows=NUM_ROWS,
        config=CdrlConfig(episodes=EPISODES, episode_length=4, seed=SEED),
    )


def main() -> int:
    spec = _smoke_spec()

    # -- single-process baseline: num_envs = fleet's W*K ------------------------
    baseline = spec.build_agent(num_envs=2)
    baseline_history = baseline.trainer.train()
    baseline_weights = baseline.trainer.policy.network.export_state()

    # -- inline fleet W=2 x K=1 is bit-identical --------------------------------
    with FleetLearner(spec, num_actors=2, envs_per_actor=1, workers="inline") as learner:
        fleet_result = learner.train()
        fleet_weights = learner.trainer.policy.network.export_state()
        assert fleet_weights == baseline_weights, (
            "fleet(W=2, inline) weights diverged from single-process num_envs=2"
        )
        assert _history_fields(fleet_result.history.to_dict()) == _history_fields(
            baseline_history.to_dict()
        ), "fleet history diverged from single-process history"
    print(
        f"fleet bit-identity ok: {EPISODES} episodes, "
        f"utility={fleet_result.utility_score:.4f}, "
        f"compliant={fleet_result.fully_compliant}"
    )

    with tempfile.TemporaryDirectory(prefix="linx-train-smoke-") as tmp:
        checkpoint_path = Path(tmp) / "run.ckpt"
        registry_path = Path(tmp) / "policies.sqlite"

        # -- kill at a wave boundary, resume with a different fleet shape -------
        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="process",
            checkpoint_path=checkpoint_path,
        ) as partial:
            stopped_at = partial.collect_until(EPISODES // 2)
        assert stopped_at == EPISODES // 2, f"stopped at {stopped_at}"
        resumed = FleetLearner.from_checkpoint(
            checkpoint_path, num_actors=1, envs_per_actor=2, workers="inline"
        )
        with resumed:
            resumed_result = resumed.train()
            resumed_weights = resumed.trainer.policy.network.export_state()
            assert resumed_weights == baseline_weights, (
                "kill-and-resume weights diverged from the uninterrupted run"
            )
            assert _history_fields(resumed_result.history.to_dict()) == (
                _history_fields(baseline_history.to_dict())
            ), "kill-and-resume history diverged"
            print(
                f"kill-and-resume ok: stopped at {stopped_at}, resumed with a "
                "different fleet shape, weights bit-identical"
            )

            # -- publish the trained policy -------------------------------------
            with PolicyRegistry(registry_path) as registry:
                version = resumed.publish(
                    registry,
                    "smoke",
                    metrics={"utility": resumed_result.utility_score},
                )
        assert version == 1, f"expected version 1, got {version}"

        # -- serve it by name over HTTP -----------------------------------------
        from repro.engine.core import LinxEngine
        from repro.engine.request import ExploreRequest
        from repro.engine.scheduler import RequestScheduler
        from repro.engine.server import ServerThread

        engine = LinxEngine(policy_registry_path=registry_path)
        scheduler = RequestScheduler(engine, max_workers=1)
        try:
            with ServerThread(scheduler) as hosted:
                port = hosted.port
                status, stages = _call(port, "GET", "/stages")
                generators = stages["stages"]["session_generator"]
                assert "cdrl:smoke-v1" in generators, generators
                assert "cdrl:smoke" in generators, generators

                request = ExploreRequest(
                    goal="Characterise weather-delayed flights",
                    dataset="flights",
                    num_rows=NUM_ROWS,
                    ldx_text=SMOKE_LDX,
                    episodes=4,
                    seed=SEED,
                    stages={"session_generator": "cdrl:smoke-v1"},
                    request_id="train-smoke",
                )
                status, submitted = _call(port, "POST", "/requests", request.to_dict())
                assert status == 202, f"submit returned {status}: {submitted}"
                ticket = submitted["ticket"]
                while True:
                    status, snapshot = _call(port, "GET", f"/requests/{ticket}/result")
                    if status != 202:
                        break
                    time.sleep(0.05)
                assert status == 200, f"result returned {status}: {snapshot}"
                result = snapshot["result"]
                assert result["stage_names"]["session_generator"] == "cdrl:smoke-v1", (
                    result["stage_names"]
                )
                assert result["operations"], "registered policy served no session"
                assert result["episodes_trained"] == EPISODES, (
                    f"expected episodes_trained={EPISODES}, "
                    f"got {result['episodes_trained']}"
                )

                status, stats = _call(port, "GET", "/stats")
                registry_stats = stats.get("policy_registry")
                assert registry_stats is not None, "no policy_registry in /stats"
                assert registry_stats["artifacts"] >= 1, registry_stats
                assert registry_stats["loads"] >= 1, registry_stats
                print(
                    "served registered policy ok: "
                    f"generator={result['stage_names']['session_generator']}, "
                    f"operations={len(result['operations'])}, "
                    f"compliant={result['fully_compliant']}, "
                    f"episodes_trained={result['episodes_trained']}"
                )
                print(f"  policy registry: {registry_stats}")
        finally:
            scheduler.shutdown()
            if engine.policy_registry is not None:
                engine.policy_registry.close()
    print("train smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
