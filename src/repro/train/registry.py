"""A sqlite-backed registry of named, versioned, servable policy artifacts.

Training produces checkpoints; this module turns them into *operable*
artifacts: ``publish`` stores a checkpoint under ``(name, version)`` with
its engine config fingerprint and final metrics, ``promote`` marks the
version the bare name should serve, and ``attach`` self-registers a
session-generator factory per artifact into the serving tier's
:data:`~repro.engine.registry.STAGE_REGISTRY` — after which an HTTP
``ExploreRequest`` with ``{"session_generator": "cdrl:flights-v2"}`` loads
and serves that exact trained policy instead of training from scratch.

Durability follows :class:`~repro.engine.store.ResultStore` /
:class:`~repro.explore.diskcache.DiskCacheTier`: WAL journaling, one
transaction per write, an in-process lock for thread sharing, and a
schema-version meta row that drops the store wholesale on mismatch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent

from .checkpoint import TrainingCheckpoint, TrainSpec

#: Version of the on-disk layout (sqlite schema + checkpoint blob format).
REGISTRY_SCHEMA_VERSION = 1

#: Policy names are lowercase slugs; the serving alias adds the ``cdrl:``
#: prefix and ``-v<N>`` suffix, so neither may appear in the name itself.
_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


def config_fingerprint(config: CdrlConfig) -> str:
    """Digest of a training configuration (mirrors the engine's fingerprint
    recipe: blake2b-12 over the sorted config fields)."""
    payload = repr(sorted(dataclasses.asdict(config).items()))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=12).hexdigest()


def _validate_name(name: str) -> str:
    key = str(name).strip().lower()
    if not _NAME_PATTERN.match(key):
        raise ValueError(
            f"invalid policy name {name!r}: must be a lowercase slug "
            "([a-z0-9_-], starting alphanumeric)"
        )
    return key


class PolicyRegistry:
    """Persistent mapping of ``(name, version)`` → trained policy artifact."""

    def __init__(self, path: str | Path, timeout: float = 30.0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        #: Artifacts written / loaded.
        self.publishes = 0
        self.loads = 0
        #: True when a version mismatch dropped a pre-existing registry.
        self.invalidated = False
        #: Stage registries :meth:`attach` has hooked into (new versions
        #: self-register there on publish).
        self._attached: list[Any] = []
        self._ensure_schema()

    # -- schema -----------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and row[0] != str(REGISTRY_SCHEMA_VERSION):
                self._conn.execute("DROP TABLE IF EXISTS policies")
                self.invalidated = True
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS policies ("
                " name TEXT NOT NULL,"
                " version INTEGER NOT NULL,"
                " config_fingerprint TEXT NOT NULL,"
                " dataset TEXT NOT NULL,"
                " ldx_text TEXT NOT NULL,"
                " metrics TEXT NOT NULL,"
                " checkpoint BLOB NOT NULL,"
                " promoted INTEGER NOT NULL DEFAULT 0,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (name, version))"
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(REGISTRY_SCHEMA_VERSION),),
            )

    # -- writes -----------------------------------------------------------------------
    def publish(
        self,
        name: str,
        checkpoint: TrainingCheckpoint,
        *,
        metrics: dict | None = None,
    ) -> int:
        """Store *checkpoint* as the next version of *name*; returns the version.

        The first version of a name is promoted automatically (so the bare
        alias serves something immediately); later versions stay candidates
        until :meth:`promote`.
        """
        key = _validate_name(name)
        spec = TrainSpec.from_payload(checkpoint.spec)
        fingerprint = config_fingerprint(spec.config)
        blob = checkpoint.to_blob()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT MAX(version) FROM policies WHERE name = ?", (key,)
            ).fetchone()
            version = (row[0] or 0) + 1
            self._conn.execute(
                "INSERT INTO policies"
                " (name, version, config_fingerprint, dataset, ldx_text, metrics,"
                "  checkpoint, promoted, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    version,
                    fingerprint,
                    spec.dataset,
                    spec.ldx_text,
                    json.dumps(metrics or {}),
                    blob,
                    1 if version == 1 else 0,
                    time.time(),
                ),
            )
            self.publishes += 1
        for stage_registry in self._attached:
            self._register_artifact(stage_registry, key, version)
        return version

    def promote(self, name: str, version: int) -> None:
        """Make *version* what the bare ``cdrl:<name>`` alias serves."""
        key = _validate_name(name)
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT 1 FROM policies WHERE name = ? AND version = ?",
                (key, int(version)),
            ).fetchone()
            if row is None:
                raise KeyError(f"policy {key!r} has no version {version}")
            self._conn.execute(
                "UPDATE policies SET promoted = 0 WHERE name = ?", (key,)
            )
            self._conn.execute(
                "UPDATE policies SET promoted = 1 WHERE name = ? AND version = ?",
                (key, int(version)),
            )

    # -- lookups ----------------------------------------------------------------------
    def versions(self, name: str) -> list[int]:
        key = _validate_name(name)
        with self._lock:
            rows = self._conn.execute(
                "SELECT version FROM policies WHERE name = ? ORDER BY version", (key,)
            ).fetchall()
        return [int(row[0]) for row in rows]

    def get(self, name: str, version: Optional[int] = None) -> dict[str, Any]:
        """The artifact record for ``(name, version)``.

        ``version=None`` resolves to the promoted version, falling back to
        the latest.  The returned dict carries the deserialized
        :class:`TrainingCheckpoint` under ``"checkpoint"``.
        """
        key = _validate_name(name)
        with self._lock:
            if version is None:
                row = self._conn.execute(
                    "SELECT name, version, config_fingerprint, dataset, ldx_text,"
                    " metrics, checkpoint, promoted, created_at"
                    " FROM policies WHERE name = ?"
                    " ORDER BY promoted DESC, version DESC LIMIT 1",
                    (key,),
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT name, version, config_fingerprint, dataset, ldx_text,"
                    " metrics, checkpoint, promoted, created_at"
                    " FROM policies WHERE name = ? AND version = ?",
                    (key, int(version)),
                ).fetchone()
            if row is None:
                suffix = "" if version is None else f" version {version}"
                raise KeyError(f"no policy {key!r}{suffix} in {self.path}")
            self.loads += 1
        return {
            "name": row[0],
            "version": int(row[1]),
            "config_fingerprint": row[2],
            "dataset": row[3],
            "ldx_text": row[4],
            "metrics": json.loads(row[5]),
            "checkpoint": TrainingCheckpoint.from_blob(row[6]),
            "promoted": bool(row[7]),
            "created_at": float(row[8]),
        }

    def list_policies(self) -> list[dict[str, Any]]:
        """Every stored artifact's metadata (no checkpoint blobs), ordered."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, version, config_fingerprint, dataset, metrics,"
                " promoted, created_at, LENGTH(checkpoint)"
                " FROM policies ORDER BY name, version"
            ).fetchall()
        return [
            {
                "name": row[0],
                "version": int(row[1]),
                "config_fingerprint": row[2],
                "dataset": row[3],
                "metrics": json.loads(row[4]),
                "promoted": bool(row[5]),
                "created_at": float(row[6]),
                "checkpoint_bytes": int(row[7]),
            }
            for row in rows
        ]

    # -- serving integration ----------------------------------------------------------
    def attach(self, stage_registry=None) -> list[str]:
        """Register a session-generator factory per stored artifact.

        Each ``(name, version)`` registers as ``cdrl:<name>-v<version>``
        and each name additionally as the floating alias ``cdrl:<name>``
        (promoted-or-latest, resolved when the stage instance is built).
        Versions published after attaching self-register too.  Returns the
        stage names registered.

        Note the serving caveat: the engine memoizes stage instances per
        ``(kind, name)``, so only the *versioned* names are fully idempotent
        for result-store purposes — the floating alias can start serving a
        newer version after a promote + engine restart.
        """
        if stage_registry is None:
            from repro.engine.registry import STAGE_REGISTRY

            stage_registry = STAGE_REGISTRY
        if all(existing is not stage_registry for existing in self._attached):
            self._attached.append(stage_registry)
        registered: list[str] = []
        seen_names: set[str] = set()
        for record in self.list_policies():
            registered.append(
                self._register_artifact(stage_registry, record["name"], record["version"])
            )
            if record["name"] not in seen_names:
                seen_names.add(record["name"])
                registered.append(self._register_alias(stage_registry, record["name"]))
        return registered

    def _register_artifact(self, stage_registry, name: str, version: int) -> str:
        from repro.engine.registry import KIND_SESSION_GENERATOR

        stage_name = f"cdrl:{name}-v{version}"
        registry = self

        def factory(_context) -> "RegisteredPolicySessionGenerator":
            return RegisteredPolicySessionGenerator(registry, name, version=version)

        stage_registry.register(
            KIND_SESSION_GENERATOR, stage_name, factory, replace=True
        )
        # Publishing a new version must also refresh what the bare alias
        # resolves to on next engine start.
        self._register_alias(stage_registry, name)
        return stage_name

    def _register_alias(self, stage_registry, name: str) -> str:
        from repro.engine.registry import KIND_SESSION_GENERATOR

        stage_name = f"cdrl:{name}"
        registry = self

        def factory(_context) -> "RegisteredPolicySessionGenerator":
            return RegisteredPolicySessionGenerator(registry, name, version=None)

        stage_registry.register(
            KIND_SESSION_GENERATOR, stage_name, factory, replace=True
        )
        return stage_name

    # -- maintenance ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM policies").fetchone()[0]
            )

    def describe(self) -> dict[str, Any]:
        with self._lock:
            names = int(
                self._conn.execute(
                    "SELECT COUNT(DISTINCT name) FROM policies"
                ).fetchone()[0]
            )
        return {
            "path": str(self.path),
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "policies": names,
            "artifacts": len(self),
            "publishes": self.publishes,
            "loads": self.loads,
            "invalidated": self.invalidated,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "PolicyRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RegisteredPolicySessionGenerator:
    """Serves a trained, registered policy as an engine session generator.

    ``generate`` never trains: it rebuilds the agent from the artifact's
    stored training spec (the policy's head structure depends on the
    *training* LDX and dataset schema), loads the checkpointed weights, and
    runs a small greedy-plus-sampled evaluation sweep, returning the best
    session ranked by (compliance with the *request's* LDX, utility) — the
    verification pattern :class:`~repro.engine.stages.AtenaSessionGenerator`
    established for generators whose training objective is not the request.
    """

    def __init__(
        self,
        registry: PolicyRegistry,
        policy_name: str,
        version: Optional[int] = None,
        attempts: int = 5,
    ):
        self.registry = registry
        self.policy_name = _validate_name(policy_name)
        self.version = version
        self.attempts = attempts
        suffix = f"-v{version}" if version is not None else ""
        self.name = f"cdrl:{self.policy_name}{suffix}"
        self._record: Optional[dict[str, Any]] = None

    def _load_record(self) -> dict[str, Any]:
        if self._record is None:
            self._record = self.registry.get(self.policy_name, self.version)
        return self._record

    def generate(
        self,
        table,
        ldx_text: str,
        *,
        episodes: Optional[int] = None,
        seed: Optional[int] = None,
        cache=None,
        on_episode=None,
    ):
        from repro.engine.stages import SessionOutcome
        from repro.explore.rollouts import collect_sequential_rollouts
        from repro.ldx.parser import try_parse_ldx
        from repro.ldx.verifier import verify, verify_structure

        record = self._load_record()
        checkpoint: TrainingCheckpoint = record["checkpoint"]
        spec = TrainSpec.from_payload(checkpoint.spec)
        agent = LinxCdrlAgent(
            table,
            spec.ldx_text,
            config=dataclasses.replace(
                spec.config,
                num_envs=1,
                trainer=dataclasses.replace(spec.config.trainer, num_envs=1),
            ),
            cache=cache,
        )
        try:
            agent.policy.network.load_state(checkpoint.network_state)
        except ValueError as exc:
            raise ValueError(
                f"policy {self.name!r} was trained on dataset "
                f"{record['dataset']!r} and does not fit table {table.name!r}: "
                f"{exc}"
            ) from exc

        request_query = try_parse_ldx(ldx_text)
        scorer = agent._generic_reward
        eval_seed = seed if seed is not None else spec.config.seed
        # The request's episode budget bounds the evaluation sweep, not
        # training (there is none): a handful of attempts is plenty.
        attempts = (
            max(1, min(int(episodes), 16)) if episodes is not None else self.attempts
        )
        best: Optional[tuple[Any, bool, float]] = None
        for attempt in range(attempts):
            rollout = collect_sequential_rollouts(
                [agent.environment],
                agent.policy,
                seed=eval_seed,
                episode_base=attempt,
                greedy=(attempt == 0),
                decision_to_choice=agent.trainer.decision_to_choice,
            )
            session = rollout.sessions[0]
            if on_episode is not None:
                on_episode(attempt, rollout.buffers[0].total_reward(), session)
            compliant = bool(
                request_query and verify(session.to_tree(), request_query)
            )
            utility = float(scorer.session_score(session))
            if best is None or (compliant, utility) > (best[1], best[2]):
                best = (session, compliant, utility)
        assert best is not None
        session, compliant, utility = best
        tree = session.to_tree()
        stored_history = checkpoint.history
        return SessionOutcome(
            session=session,
            fully_compliant=compliant,
            structurally_compliant=bool(
                request_query and verify_structure(tree, request_query)
            ),
            utility_score=utility,
            episodes_trained=len(stored_history.get("episode_returns", [])),
        )
