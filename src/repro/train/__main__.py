"""Command-line front-end for the distributed training tier.

Four subcommands cover the train → resume → publish → serve lifecycle::

    # Train a policy with a 2-actor fleet and publish it as "flights-delay".
    python -m repro.train train --dataset flights --rows 300 \
        --ldx-file spec.ldx --episodes 60 --actors 2 --envs-per-actor 2 \
        --checkpoint /tmp/linx/run.ckpt \
        --registry /tmp/linx/policies.sqlite --name flights-delay

    # Continue an interrupted run (any fleet shape resumes any checkpoint).
    python -m repro.train resume /tmp/linx/run.ckpt --actors 4

    # Inspect and manage the registry.
    python -m repro.train list --registry /tmp/linx/policies.sqlite
    python -m repro.train promote flights-delay 2 \
        --registry /tmp/linx/policies.sqlite

A published policy is immediately servable: point the HTTP server at the
same registry (``python -m repro.engine.server --policy-registry ...``) and
submit requests with ``{"stages": {"session_generator": "cdrl:<name>-v<N>"}}``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.cdrl.agent import CdrlConfig

from .checkpoint import TrainSpec, TrainingCheckpoint
from .learner import FleetLearner
from .registry import PolicyRegistry


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--actors", type=int, default=2, help="actor worker count W (default 2)"
    )
    parser.add_argument(
        "--envs-per-actor",
        type=int,
        default=1,
        help="lock-step environments per actor K; the wave size is W*K",
    )
    parser.add_argument(
        "--workers",
        choices=("process", "inline"),
        default="process",
        help="'process' runs actors in worker processes; 'inline' runs "
             "them sequentially in this process (same numbers, no parallelism)",
    )
    parser.add_argument(
        "--disk-cache",
        default=None,
        help="sqlite execution-cache path shared by all actors",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint every N waves (default 1)",
    )
    parser.add_argument(
        "--registry", default=None, help="sqlite policy registry path"
    )
    parser.add_argument(
        "--name",
        default=None,
        help="publish the trained policy under this name (requires --registry)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-episode ticker"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.train",
        description="Train, resume, publish and manage CDRL policies.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train", help="train a new policy with an actor fleet"
    )
    train.add_argument("--dataset", default="flights", help="registered dataset name")
    train.add_argument("--rows", type=int, default=None, help="sample N rows")
    train.add_argument(
        "--dataset-seed", type=int, default=None, help="row-sampling seed"
    )
    ldx = train.add_mutually_exclusive_group()
    ldx.add_argument("--ldx", default=None, help="inline LDX specification text")
    ldx.add_argument(
        "--ldx-file", default=None, help="read the LDX specification from a file"
    )
    train.add_argument("--episodes", type=int, default=100)
    train.add_argument("--episode-length", type=int, default=6)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--checkpoint", default=None, help="checkpoint file path (enables resume)"
    )
    _add_fleet_arguments(train)

    resume = commands.add_parser(
        "resume", help="continue training from a checkpoint file"
    )
    resume.add_argument("checkpoint", help="checkpoint file written by 'train'")
    _add_fleet_arguments(resume)

    listing = commands.add_parser("list", help="list registry policies")
    listing.add_argument("--registry", required=True)

    promote = commands.add_parser(
        "promote", help="make a version the default for its policy name"
    )
    promote.add_argument("name")
    promote.add_argument("version", type=int)
    promote.add_argument("--registry", required=True)

    return parser


def _resolve_ldx(args: argparse.Namespace) -> str:
    if args.ldx is not None:
        return args.ldx
    if args.ldx_file is not None:
        with open(args.ldx_file, "r", encoding="utf-8") as handle:
            return handle.read()
    # No specification: accept any filter/group session (the engine's
    # fallback spec), so the generic exploration reward drives training.
    from repro.engine.core import PERMISSIVE_LDX

    return PERMISSIVE_LDX


def _ticker(quiet: bool):
    if quiet:
        return None

    def callback(episode: int, episode_return: float, _session) -> None:
        print(f"  episode {episode + 1}: return {episode_return:.4f}")

    return callback


def _run_learner(learner: FleetLearner, args: argparse.Namespace) -> int:
    if args.name is not None and args.registry is None:
        print("error: --name requires --registry", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with learner:
        result = learner.train(callback=_ticker(args.quiet))
        elapsed = time.perf_counter() - started
        print(
            f"trained {result.episodes_trained} episodes in {elapsed:.1f}s "
            f"({learner.fleet.num_actors} actors x "
            f"{learner.fleet.envs_per_actor} envs, {learner.fleet.workers})"
        )
        print(
            f"  best session: compliant={result.fully_compliant}, "
            f"utility={result.utility_score:.4f}, "
            f"{len(result.session.operations)} operations"
        )
        if learner.checkpoint_path:
            print(f"  checkpoint: {learner.checkpoint_path}")
        if args.name is not None:
            with PolicyRegistry(args.registry) as registry:
                version = learner.publish(
                    registry,
                    args.name,
                    metrics={
                        "episodes": result.episodes_trained,
                        "utility": result.utility_score,
                        "fully_compliant": result.fully_compliant,
                        "train_seconds": round(elapsed, 3),
                    },
                )
            print(
                f"  published cdrl:{args.name}-v{version} to {args.registry}"
            )
    return 0


def _command_train(args: argparse.Namespace) -> int:
    config = CdrlConfig(
        episodes=args.episodes,
        episode_length=args.episode_length,
        seed=args.seed,
    )
    spec = TrainSpec(
        dataset=args.dataset,
        ldx_text=_resolve_ldx(args),
        num_rows=args.rows,
        dataset_seed=args.dataset_seed,
        config=config,
    )
    learner = FleetLearner(
        spec,
        num_actors=args.actors,
        envs_per_actor=args.envs_per_actor,
        workers=args.workers,
        disk_cache_path=args.disk_cache,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    return _run_learner(learner, args)


def _command_resume(args: argparse.Namespace) -> int:
    checkpoint = TrainingCheckpoint.load(args.checkpoint)
    print(
        f"resuming at episode {checkpoint.episodes_completed}"
        f"/{checkpoint.total_episodes} "
        f"(dataset {checkpoint.spec['dataset']!r})"
    )
    learner = FleetLearner.from_checkpoint(
        args.checkpoint,
        num_actors=args.actors,
        envs_per_actor=args.envs_per_actor,
        workers=args.workers,
        disk_cache_path=args.disk_cache,
        checkpoint_every=args.checkpoint_every,
    )
    return _run_learner(learner, args)


def _command_list(args: argparse.Namespace) -> int:
    with PolicyRegistry(args.registry) as registry:
        policies = registry.list_policies()
        if not policies:
            print(f"no policies in {args.registry}")
            return 0
        print(f"{len(policies)} artifact(s) in {args.registry}:")
        for record in policies:
            marker = "*" if record["promoted"] else " "
            print(
                f"  {marker} cdrl:{record['name']}-v{record['version']}  "
                f"dataset={record['dataset']}  "
                f"checkpoint={record['checkpoint_bytes']}B  "
                f"metrics={record['metrics']}"
            )
        print("  (* = promoted: served by the bare cdrl:<name> alias)")
    return 0


def _command_promote(args: argparse.Namespace) -> int:
    with PolicyRegistry(args.registry) as registry:
        try:
            registry.promote(args.name, args.version)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"promoted cdrl:{args.name}-v{args.version}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _command_train,
        "resume": _command_resume,
        "list": _command_list,
        "promote": _command_promote,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
