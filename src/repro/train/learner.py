"""The synchronous learner driving an actor fleet.

The learner owns the authoritative policy, optimizer and
:class:`~repro.rl.trainer.PolicyGradientTrainer` bookkeeping; actors only
collect.  Each iteration exports the current weights, has the fleet collect
one wave of global episodes, and feeds the returned buffers through
``trainer.record_episode`` in episode order — the exact code path the
single-process trainer runs — so gradient batching, elite replay, greedy
evaluations and history are all shared, not reimplemented.

Bit-identity invariant: every episode of a wave is collected with the
wave-start weights and samples from its own ``(seed, episode_index)``
stream, so W actors × K envs reproduces single-process ``num_envs=W*K``
training weight-for-weight.  Checkpoints are taken at wave boundaries
(:mod:`repro.train.checkpoint`), making kill-and-resume equally exact.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.cdrl.agent import CdrlResult
from repro.explore.operations import operation_from_signature
from repro.explore.session import session_from_operations
from repro.ldx.verifier import verify, verify_structure
from repro.rl.trainer import TrainingHistory

from .actor import ActorFleet
from .checkpoint import (
    TrainingCheckpoint,
    TrainSpec,
    capture,
    deserialize_buffer,
    restore_into,
)


class FleetLearner:
    """Trains a CDRL policy with W actor processes × K envs each.

    Parameters mirror :class:`~repro.train.actor.ActorFleet`;
    ``checkpoint_path`` (with ``checkpoint_every``, in waves) enables
    periodic wave-boundary checkpoints, and :meth:`from_checkpoint` resumes
    one bit-identically.
    """

    def __init__(
        self,
        spec: TrainSpec,
        *,
        num_actors: int = 2,
        envs_per_actor: int = 1,
        workers: str = "process",
        disk_cache_path: str | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 1,
    ):
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.spec = spec
        # The learner drives a single environment: it never collects waves
        # itself (actors do), but greedy evaluations and the final
        # best-session sweep run here, on the same primary environment the
        # single-process trainer would use.
        self.agent = spec.build_agent(num_envs=1)
        self.trainer = self.agent.trainer
        self.fleet = ActorFleet(
            spec,
            num_actors=num_actors,
            envs_per_actor=envs_per_actor,
            workers=workers,
            disk_cache_path=disk_cache_path,
        )
        self.total_episodes = spec.config.episodes
        self.episodes_completed = 0
        self.checkpoint_path = os.fspath(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every
        #: Best fully-compliant episode seen, as (operation signatures, utility).
        self._best: Optional[tuple[list, float]] = None

    # -- resume ----------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: str | os.PathLike,
        *,
        num_actors: int = 2,
        envs_per_actor: int = 1,
        workers: str = "process",
        disk_cache_path: str | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        checkpoint_every: int = 1,
    ) -> "FleetLearner":
        """Rebuild a learner from a checkpoint, positioned to continue exactly.

        The fleet shape (W, K) is operational, not semantic: any shape
        resumes any checkpoint with identical results, because episode RNG
        depends only on the global episode index.
        """
        checkpoint = TrainingCheckpoint.load(path)
        learner = cls(
            TrainSpec.from_payload(checkpoint.spec),
            num_actors=num_actors,
            envs_per_actor=envs_per_actor,
            workers=workers,
            disk_cache_path=disk_cache_path,
            checkpoint_path=checkpoint_path if checkpoint_path is not None else path,
            checkpoint_every=checkpoint_every,
        )
        restore_into(checkpoint, learner.trainer)
        learner.episodes_completed = checkpoint.episodes_completed
        learner.total_episodes = checkpoint.total_episodes
        learner._best = (
            (list(checkpoint.best_compliant[0]), float(checkpoint.best_compliant[1]))
            if checkpoint.best_compliant is not None
            else None
        )
        return learner

    # -- checkpointing ---------------------------------------------------------------
    def checkpoint(self) -> TrainingCheckpoint:
        """Snapshot the current training position (call at wave boundaries)."""
        return capture(
            self.spec.to_payload(),
            self.trainer,
            episodes_completed=self.episodes_completed,
            total_episodes=self.total_episodes,
            best_compliant=self._best,
        )

    def save_checkpoint(self) -> None:
        if self.checkpoint_path:
            self.checkpoint().save(self.checkpoint_path)

    # -- training --------------------------------------------------------------------
    def _track(self, record: dict) -> None:
        if not record["compliant"]:
            return
        utility = record["utility"]
        if self._best is None or utility > self._best[1]:
            self._best = (list(record["operations"]), float(utility))

    def _run_waves(
        self,
        episode_target: int,
        callback: Optional[Callable[[int, float, object], None]],
    ) -> None:
        """Collect and record waves until ``episodes_completed >= episode_target``.

        Wave sizes follow the uninterrupted schedule (``min(M, total -
        completed)``), so stopping early at a wave boundary and resuming
        later replays the identical sequence of waves.
        """
        waves_done = 0
        while self.episodes_completed < min(episode_target, self.total_episodes):
            wave = min(self.fleet.num_envs, self.total_episodes - self.episodes_completed)
            weights = self.trainer.policy.network.export_state()
            records = self.fleet.collect_wave(weights, self.episodes_completed, wave)
            for record in records:
                buffer = deserialize_buffer(record["buffer"])

                def per_episode(episode: int, episode_return: float, _session) -> None:
                    self._track(record)
                    if callback is not None:
                        callback(episode, episode_return, None)

                self.trainer.record_episode(
                    self.episodes_completed, buffer, None, callback=per_episode
                )
                self.episodes_completed += 1
            waves_done += 1
            if self.checkpoint_path and waves_done % self.checkpoint_every == 0:
                self.save_checkpoint()

    def collect_until(
        self,
        episode_target: int,
        callback: Optional[Callable[[int, float, object], None]] = None,
    ) -> int:
        """Train up to the first wave boundary at or past *episode_target*.

        Returns the episodes completed so far and saves a checkpoint there
        — the "kill" half of kill-and-resume.
        """
        self._run_waves(episode_target, callback)
        self.save_checkpoint()
        return self.episodes_completed

    def train(
        self,
        callback: Optional[Callable[[int, float, object], None]] = None,
    ) -> CdrlResult:
        """Run (or continue) training to completion and return the result."""
        self._run_waves(self.total_episodes, callback)
        history = self.trainer.finish_training()
        # The completion checkpoint: its pending batch is empty (just
        # flushed), so resuming from it and calling train() again applies
        # nothing twice.
        self.save_checkpoint()
        return self._finalise(history)

    def _finalise(self, history: TrainingHistory) -> CdrlResult:
        if self._best is not None:
            signatures, utility = self._best
            operations = [operation_from_signature(sig) for sig in signatures]
            session = session_from_operations(
                self.agent.dataset, operations, cache=self.agent.cache
            )
        else:
            session, _ = self.trainer.best_session(attempts=5)
            utility = self.agent._generic_reward.session_score(session)
        tree = session.to_tree()
        return CdrlResult(
            session=session,
            fully_compliant=verify(tree, self.agent.query),
            structurally_compliant=verify_structure(tree, self.agent.query),
            utility_score=float(utility),
            history=history,
            episodes_trained=len(history.episode_returns),
        )

    # -- publishing ------------------------------------------------------------------
    def publish(self, registry, name: str, *, metrics: dict | None = None) -> int:
        """Publish the current weights to *registry* as a new version of *name*.

        Call after :meth:`train`: the checkpoint captured here includes the
        final partial-batch update that ``finish_training`` applies.
        """
        return registry.publish(
            name,
            self.checkpoint(),
            metrics=metrics or {},
        )

    def close(self) -> None:
        self.fleet.close()

    def __enter__(self) -> "FleetLearner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
