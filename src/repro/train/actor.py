"""Actor processes: declaratively-rebuilt rollout collectors.

An actor is to training what ``explore_many(workers="process")`` workers are
to serving: a process that rebuilds its full context (dataset, environments,
policy) from a primitive spec, keeps it warm across tasks, and optionally
shares executed query results with its siblings through the
:class:`~repro.explore.diskcache.TieredExecutionCache` disk tier.

Each task is one *chunk* of a collection wave: the learner ships the current
network weights plus a global episode range; the actor loads the weights in
place, collects the episodes with :func:`repro.explore.rollouts.collect_rollouts`
(per-episode RNG streams are derived from ``(seed, episode_index)``, so the
global episode index alone fixes every sample), and returns primitive
episode records — serialized buffers, operation signatures, and the
compliance/utility verdicts the learner would otherwise have to recompute.

Because the per-episode streams are position-independent and every episode
of a wave uses the wave-start weights, a wave split across W actors × K envs
is bit-identical to the same wave collected by one process with W*K envs —
the fleet-level guarantee ``tests/test_train.py`` and the training benchmark
both gate on.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional

from repro.explore.diskcache import TieredExecutionCache
from repro.explore.rollouts import VectorEnvironment, collect_rollouts
from repro.ldx.verifier import verify

from .checkpoint import TrainSpec, serialize_buffer


class ActorContext:
    """Everything one actor keeps warm between chunks."""

    def __init__(self, payload: dict[str, Any]):
        spec = TrainSpec.from_payload(payload["spec"])
        cache = None
        disk_cache_path = payload.get("disk_cache_path")
        if disk_cache_path:
            cache = TieredExecutionCache(disk_cache_path)
        self.agent = spec.build_agent(num_envs=payload["envs"], cache=cache)
        self.vector_environment = self.agent.vector_environment or VectorEnvironment(
            [self.agent.environment]
        )
        self.trainer_config = self.agent.trainer.config


#: The context a worker process lazily builds and reuses across chunks,
#: keyed by the payload that built it (the ``worker_engine`` pattern).
_actor_context: Optional[ActorContext] = None
_actor_payload: Optional[dict[str, Any]] = None


def _context_for(payload: dict[str, Any]) -> ActorContext:
    global _actor_context, _actor_payload
    if _actor_context is None or payload != _actor_payload:
        _actor_context = ActorContext(payload)
        _actor_payload = payload
    return _actor_context


def collect_chunk(
    payload: dict[str, Any],
    weights_state: list,
    episode_base: int,
    num_episodes: int,
) -> list[dict[str, Any]]:
    """Collect episodes ``[episode_base, episode_base + num_episodes)``.

    Top-level (picklable) so it can be the :class:`ProcessPoolExecutor`
    entry point; also called directly in ``workers="inline"`` mode.
    Returns one primitive record per episode, in episode order.
    """
    context = _context_for(payload)
    context.agent.policy.network.load_state(weights_state)
    config = context.trainer_config
    rollout = collect_rollouts(
        context.vector_environment,
        context.agent.policy,
        seed=config.seed,
        episode_base=episode_base,
        num_episodes=num_episodes,
        decision_to_choice=context.agent.trainer.decision_to_choice,
        reward_scale=config.reward_scale,
    )
    records: list[dict[str, Any]] = []
    for buffer, session in zip(rollout.buffers, rollout.sessions):
        compliant = bool(verify(session.to_tree(), context.agent.query))
        records.append(
            {
                "buffer": serialize_buffer(buffer),
                "operations": [list(op.signature()) for op in session.operations],
                "compliant": compliant,
                # Scored actor-side so the learner never replays sessions.
                "utility": (
                    float(context.agent._generic_reward.session_score(session))
                    if compliant
                    else None
                ),
            }
        )
    if isinstance(context.agent.cache, TieredExecutionCache):
        # Land the write-behind buffer so sibling actors (and the learner's
        # next wave) can reuse this chunk's executions.
        context.agent.cache.flush()
    return records


class ActorFleet:
    """A pool of W actor processes, each driving K lock-step environments.

    ``collect_wave`` splits a wave of up to ``W*K`` global episode indices
    into per-actor chunks of at most K consecutive episodes and concatenates
    the results in actor order — which *is* global episode order, so the
    learner can feed them to ``record_episode`` exactly as the
    single-process trainer would.

    ``workers="inline"`` runs chunks sequentially in this process (no pool)
    — same numbers, no parallelism; useful for tests and debugging.
    """

    def __init__(
        self,
        spec: TrainSpec,
        *,
        num_actors: int = 2,
        envs_per_actor: int = 1,
        workers: str = "process",
        disk_cache_path: str | None = None,
    ):
        if workers not in ("process", "inline"):
            raise ValueError(f"workers must be 'process' or 'inline', got {workers!r}")
        if num_actors < 1:
            raise ValueError(f"num_actors must be >= 1, got {num_actors}")
        if envs_per_actor < 1:
            raise ValueError(f"envs_per_actor must be >= 1, got {envs_per_actor}")
        self.num_actors = num_actors
        self.envs_per_actor = envs_per_actor
        self.workers = workers
        self.payload: dict[str, Any] = {
            "spec": spec.to_payload(),
            "envs": envs_per_actor,
            "disk_cache_path": disk_cache_path,
        }
        self._pool: Optional[ProcessPoolExecutor] = None
        if workers == "process":
            self._pool = ProcessPoolExecutor(max_workers=num_actors)

    @property
    def num_envs(self) -> int:
        """Total environments across the fleet (the wave size it serves)."""
        return self.num_actors * self.envs_per_actor

    def collect_wave(
        self, weights_state: list, episode_base: int, wave_size: int
    ) -> list[dict[str, Any]]:
        """Collect ``wave_size`` episodes starting at ``episode_base``."""
        if wave_size < 1:
            return []
        if wave_size > self.num_envs:
            raise ValueError(
                f"wave_size={wave_size} exceeds the fleet's {self.num_envs} envs"
            )
        chunks: list[tuple[int, int]] = []
        offset = 0
        while offset < wave_size:
            count = min(self.envs_per_actor, wave_size - offset)
            chunks.append((episode_base + offset, count))
            offset += count
        if self._pool is None:
            chunk_records = [
                collect_chunk(self.payload, weights_state, base, count)
                for base, count in chunks
            ]
        else:
            futures = [
                self._pool.submit(collect_chunk, self.payload, weights_state, base, count)
                for base, count in chunks
            ]
            chunk_records = [future.result() for future in futures]
        return [record for records in chunk_records for record in records]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ActorFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
