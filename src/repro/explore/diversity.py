"""Diversity of an exploration session.

The generic reward (Section 5.1) includes a diversity term: the minimal
distance between the newest query and any previous query, using a distance
over query results.  Sessions that keep producing near-identical views are
penalised; sessions that examine genuinely different slices are rewarded.
"""

from __future__ import annotations

from repro.dataframe.table import DataTable

from .interestingness import _reference_interest
from .operations import Operation


def _top_values(column) -> set:
    """The column's first ten distinct values, memoised on the column."""
    memo = _reference_interest(column)
    top = memo.get("top10")
    if top is None:
        top = memo["top10"] = set(list(column.value_counts())[:10])
    return top


def result_distance(a: DataTable, b: DataTable) -> float:
    """Distance in [0, 1] between two result views.

    Combines three signals: schema overlap (Jaccard over column names),
    relative size difference, and overlap of the top categorical values in
    shared columns.  Identical views are at distance 0, views with disjoint
    schemas at distance 1.
    """
    cols_a, cols_b = set(a.columns), set(b.columns)
    union = cols_a | cols_b
    if not union:
        return 0.0
    schema_similarity = len(cols_a & cols_b) / len(union)

    size_a, size_b = len(a), len(b)
    if max(size_a, size_b) == 0:
        size_similarity = 1.0
    else:
        size_similarity = min(size_a, size_b) / max(size_a, size_b)

    shared = list(cols_a & cols_b)
    if shared:
        overlaps = []
        for column in shared:
            top_a = _top_values(a.column(column))
            top_b = _top_values(b.column(column))
            if not top_a and not top_b:
                overlaps.append(1.0)
                continue
            union_vals = top_a | top_b
            overlaps.append(len(top_a & top_b) / len(union_vals) if union_vals else 1.0)
        content_similarity = sum(overlaps) / len(overlaps)
    else:
        content_similarity = 0.0

    similarity = 0.4 * schema_similarity + 0.2 * size_similarity + 0.4 * content_similarity
    return 1.0 - similarity


def operation_distance(a: Operation, b: Operation) -> float:
    """Syntactic distance in [0, 1] between two operations (used as a tie-breaker)."""
    sig_a, sig_b = a.signature(), b.signature()
    if sig_a[0] != sig_b[0]:
        return 1.0
    fields_a, fields_b = sig_a[1:], sig_b[1:]
    length = max(len(fields_a), len(fields_b))
    if length == 0:
        return 0.0
    differing = sum(
        1
        for i in range(length)
        if (fields_a[i] if i < len(fields_a) else None)
        != (fields_b[i] if i < len(fields_b) else None)
    )
    return differing / length


def session_diversity(new_view: DataTable, previous_views: list[DataTable]) -> float:
    """Diversity contribution of the newest view: min distance to any previous view."""
    if not previous_views:
        return 1.0
    return min(result_distance(new_view, view) for view in previous_views)
