"""Parametric query operations of the exploration model.

Following Section 3 of the paper, an exploration session is built from two
parametric operation types applied to the result of a previous operation:

* ``[F, attr, op, term]`` — filter the current view,
* ``[G, g_attr, agg_func, agg_attr]`` — group by ``g_attr`` and aggregate
  ``agg_attr`` with ``agg_func``.

The agent may also emit a *back* action to return to an earlier view, and the
root of the exploration tree represents the raw dataset.  Operations are
immutable value objects; ``signature()`` returns the positional field list
LDX operation patterns match against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.dataframe.aggregates import canonical_agg
from repro.dataframe.expressions import canonical_operator

#: Operation kind codes used in LDX patterns and signatures.
KIND_ROOT = "ROOT"
KIND_FILTER = "F"
KIND_GROUP = "G"
KIND_BACK = "B"


@dataclass(frozen=True)
class Operation:
    """Base class for exploration operations."""

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def signature(self) -> tuple[str, ...]:
        """Positional field list used by LDX patterns (kind first)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner used in notebook rendering."""
        raise NotImplementedError


@dataclass(frozen=True)
class RootOperation(Operation):
    """The implicit root of an exploration tree: the unmodified dataset."""

    dataset_name: str = "dataset"

    @property
    def kind(self) -> str:
        return KIND_ROOT

    def signature(self) -> tuple[str, ...]:
        return (KIND_ROOT,)

    def describe(self) -> str:
        return f"Load dataset {self.dataset_name!r}"


@dataclass(frozen=True)
class FilterOperation(Operation):
    """``[F, attr, op, term]`` — keep rows where ``attr <op> term``."""

    attr: str
    op: str
    term: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", canonical_operator(self.op))

    @property
    def kind(self) -> str:
        return KIND_FILTER

    def signature(self) -> tuple[str, ...]:
        return (KIND_FILTER, str(self.attr), str(self.op), str(self.term))

    def describe(self) -> str:
        symbol = {
            "eq": "=",
            "neq": "!=",
            "gt": ">",
            "ge": ">=",
            "lt": "<",
            "le": "<=",
            "contains": "contains",
            "startswith": "starts with",
            "endswith": "ends with",
        }[self.op]
        return f"FILTER {self.attr} {symbol} {self.term}"


@dataclass(frozen=True)
class GroupAggOperation(Operation):
    """``[G, g_attr, agg_func, agg_attr]`` — group and aggregate."""

    group_attr: str
    agg_func: str
    agg_attr: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "agg_func", canonical_agg(self.agg_func))

    @property
    def kind(self) -> str:
        return KIND_GROUP

    def signature(self) -> tuple[str, ...]:
        return (KIND_GROUP, str(self.group_attr), str(self.agg_func), str(self.agg_attr))

    def describe(self) -> str:
        return f"GROUP-BY {self.group_attr}, {self.agg_func.upper()}({self.agg_attr})"


@dataclass(frozen=True)
class BackOperation(Operation):
    """Return to a previous view; not materialised as a tree node.

    ``steps`` indicates how many levels to move up from the current node
    (1 = parent of the current view).
    """

    steps: int = 1

    @property
    def kind(self) -> str:
        return KIND_BACK

    def signature(self) -> tuple[str, ...]:
        return (KIND_BACK, str(self.steps))

    def describe(self) -> str:
        return f"BACK {self.steps}"


def operation_from_signature(fields: Sequence[str]) -> Operation:
    """Reconstruct an operation from its positional signature.

    Used when converting LDX minimal trees or PyLDX templates into concrete
    operations for metric computation.
    """
    if not fields:
        raise ValueError("empty operation signature")
    kind = str(fields[0]).upper()
    if kind == KIND_ROOT:
        return RootOperation()
    if kind == KIND_FILTER:
        if len(fields) != 4:
            raise ValueError(f"filter signature needs 4 fields, got {list(fields)}")
        return FilterOperation(attr=fields[1], op=fields[2], term=fields[3])
    if kind == KIND_GROUP:
        if len(fields) != 4:
            raise ValueError(f"group signature needs 4 fields, got {list(fields)}")
        return GroupAggOperation(group_attr=fields[1], agg_func=fields[2], agg_attr=fields[3])
    if kind == KIND_BACK:
        if len(fields) > 2:
            raise ValueError(f"back signature needs at most 2 fields, got {list(fields)}")
        if len(fields) == 1:
            return BackOperation()
        try:
            steps = int(fields[1])
        except (TypeError, ValueError):
            raise ValueError(
                f"back signature needs an integer step count, got {fields[1]!r}"
            ) from None
        return BackOperation(steps=steps)
    raise ValueError(f"unknown operation kind {fields[0]!r}")


def is_query_operation(operation: Operation) -> bool:
    """True for operations that materialise a new view (filter / group-agg)."""
    return operation.kind in (KIND_FILTER, KIND_GROUP)
