"""Batched parallel rollouts: K environments stepped in lock-step.

The exploration trainers historically rolled episodes out one environment at
a time: one policy forward, one mask fold and one RNG draw per environment
per step, and — when environments were created independently — one *cold*
execution cache each.  :class:`VectorEnvironment` removes both costs.  It
owns K :class:`~repro.explore.environment.ExplorationEnvironment` instances
that

* share one :class:`~repro.explore.cache.ExecutionCache` (so any
  environment's executed ``(view, operation)`` result is a cache hit for all
  the others),
* share one view-feature memo (content-addressed observation features cross
  environment boundaries), and
* advance in lock-step, stacking the per-environment observation vectors
  into a single ``(K, F)`` float64 matrix so
  :meth:`~repro.rl.policy.CategoricalPolicy.act_batch` runs **one** batched
  network forward (and one batched validity-mask gather) per step instead
  of K.

Determinism is a hard requirement, not an aspiration: episode *i* samples
from its own RNG stream derived from ``(seed, i)`` (:func:`env_rng`), and
the policy's batched kernels are row-bit-identical to the single-observation
ones, so :func:`collect_rollouts` over K environments reproduces
:func:`collect_sequential_rollouts` — the one-at-a-time reference — bit for
bit at equal seeds.  Sharing caches never changes results (only how often
queries re-execute), so the equivalence holds with any cache layering,
including the disk tier of :mod:`repro.explore.diskcache`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.dataframe.table import DataTable
from repro.rl.buffer import EpisodeBuffer
from repro.rl.policy import CategoricalPolicy, MASK_LOGIT_BIAS

from .action_space import ActionChoice, ActionSpace, choice_from_index_map
from .cache import ExecutionCache
from .environment import (
    ExplorationEnvironment,
    GenericRewardStrategy,
    RewardStrategy,
)

#: Builds one reward strategy per environment (stateful strategies cannot be
#: shared across interleaved episodes).
RewardStrategyFactory = Callable[[], RewardStrategy]

DecisionToChoice = Callable[[dict[str, int]], ActionChoice]


def env_rng(seed: int, env_index: int) -> np.random.Generator:
    """The canonical RNG stream of episode *env_index* under *seed*.

    Streams are derived from the ``(seed, env_index)`` pair via
    :class:`numpy.random.SeedSequence`, so

    * different episodes of one batch never share a stream (no draw-order
      coupling between environments — the concurrency bug this replaces),
    * the stream depends only on the pair, not on how many environments run
      alongside: a K-env batched rollout and K one-at-a-time rollouts
      consume identical randomness.

    Negative seeds are mapped into the unsigned 64-bit range (SeedSequence
    rejects negative entropy).
    """
    return np.random.default_rng(
        np.random.SeedSequence((seed & 0xFFFFFFFFFFFFFFFF, env_index))
    )


@dataclass
class VectorStepResult:
    """The stacked outcome of stepping every environment once."""

    #: ``(K, F)`` float64 matrix of next observations.
    observations: np.ndarray
    #: ``(K,)`` float64 vector of step rewards.
    rewards: np.ndarray
    #: ``(K,)`` boolean vector; lock-step environments finish together.
    dones: np.ndarray
    #: Per-environment step info dictionaries.
    infos: list[dict[str, Any]]


class VectorEnvironment:
    """K exploration environments advancing in lock-step over one shared cache.

    All environments must agree on the dataset schema (same observation
    size) and on ``episode_length`` (lock-step batching needs episodes that
    finish together).  On construction every environment adopts the first
    one's view-feature memo, so observation featurisation — which is keyed
    by content fingerprints — is shared exactly like query results are.

    Use :meth:`create` to build the environments with shared plumbing (one
    action space, one execution cache) in one call.
    """

    def __init__(self, environments: Sequence[ExplorationEnvironment]):
        envs = list(environments)
        if not envs:
            raise ValueError("VectorEnvironment needs at least one environment")
        lengths = {env.episode_length for env in envs}
        if len(lengths) > 1:
            raise ValueError(
                f"lock-step environments need equal episode lengths, got {sorted(lengths)}"
            )
        sizes = {env.observation_size() for env in envs}
        if len(sizes) > 1:
            raise ValueError(
                f"environments have differing observation sizes: {sorted(sizes)}"
            )
        self.environments = envs
        # Content-addressed features transfer across environments; pool them.
        shared_memo = envs[0]._view_feature_memo
        for env in envs[1:]:
            env._view_feature_memo = shared_memo

    @classmethod
    def create(
        cls,
        dataset: DataTable,
        num_envs: int,
        *,
        episode_length: int = 6,
        reward_strategy_factory: RewardStrategyFactory | None = None,
        action_space: ActionSpace | None = None,
        cache: ExecutionCache | None = None,
        enable_cache: bool = True,
        use_plans: bool = True,
    ) -> "VectorEnvironment":
        """Build *num_envs* environments over one action space and one cache.

        ``reward_strategy_factory`` is called once per environment; pass it
        whenever the strategy keeps per-episode state (e.g. the CDRL
        compliance strategy's step counter).  ``None`` shares one default
        generic strategy across all environments — it is stateless apart
        from content-keyed memos, so sibling environments reuse each
        other's interestingness and diversity scores just like they reuse
        query results.  With ``enable_cache`` one :class:`ExecutionCache`
        (given or fresh) is shared by all environments — the whole point of
        batching.  ``use_plans`` is forwarded to every environment; with the
        shared cache it makes sibling rollouts share canonical-plan entries,
        not just syntactic ones.
        """
        if num_envs < 1:
            raise ValueError("num_envs must be positive")
        space = action_space or ActionSpace(dataset)
        if enable_cache and cache is None:
            cache = ExecutionCache()
        if reward_strategy_factory is None:
            shared_strategy = GenericRewardStrategy()
            reward_strategy_factory = lambda: shared_strategy  # noqa: E731
        environments = [
            ExplorationEnvironment(
                dataset=dataset,
                episode_length=episode_length,
                reward_strategy=reward_strategy_factory(),
                action_space=space,
                cache=cache,
                enable_cache=enable_cache,
                use_plans=use_plans,
            )
            for _ in range(num_envs)
        ]
        return cls(environments)

    # -- aggregate views ------------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.environments)

    @property
    def episode_length(self) -> int:
        return self.environments[0].episode_length

    @property
    def cache(self) -> Optional[ExecutionCache]:
        """The execution cache shared by the environments (if any)."""
        return self.environments[0].cache

    def cache_stats(self) -> Optional[dict[str, Any]]:
        return self.environments[0].cache_stats()

    def observation_size(self) -> int:
        return self.environments[0].observation_size()

    # -- lock-step episode control --------------------------------------------------------
    def reset(self, count: int | None = None) -> np.ndarray:
        """Start a new episode in the first *count* (default: all) environments.

        Returns the ``(count, F)`` matrix of initial observations.
        """
        active = self.environments[: count if count is not None else self.num_envs]
        return np.stack([env.reset() for env in active])

    def observe(self, count: int | None = None) -> np.ndarray:
        active = self.environments[: count if count is not None else self.num_envs]
        return np.stack([env.observe() for env in active])

    def head_masks(self, count: int | None = None) -> dict[str, np.ndarray]:
        """Per-head validity masks stacked across environments: ``(K, size)``.

        Each environment's masks are memoised per session node, so this is a
        gather, not K recomputations.
        """
        active = self.environments[: count if count is not None else self.num_envs]
        per_env = [env.action_masks() for env in active]
        return {
            name: np.stack([masks[name] for masks in per_env])
            for name in per_env[0]
        }

    def step(self, choices: Sequence[ActionChoice]) -> VectorStepResult:
        """Step the first ``len(choices)`` environments once, in order."""
        if len(choices) > self.num_envs:
            raise ValueError(
                f"got {len(choices)} choices for {self.num_envs} environments"
            )
        observations = np.empty(
            (len(choices), self.observation_size()), dtype=np.float64
        )
        rewards = np.empty(len(choices), dtype=np.float64)
        dones = np.empty(len(choices), dtype=bool)
        infos: list[dict[str, Any]] = []
        for index, choice in enumerate(choices):
            result = self.environments[index].step(choice)
            observations[index] = result.observation
            rewards[index] = result.reward
            dones[index] = result.done
            infos.append(result.info)
        return VectorStepResult(observations, rewards, dones, infos)

    def sessions(self, count: int | None = None) -> list:
        active = self.environments[: count if count is not None else self.num_envs]
        return [env.session for env in active]


class DynamicVectorEnvironment(VectorEnvironment):
    """A :class:`VectorEnvironment` whose membership changes between steps.

    The serving tier's continuous-batching layer needs the vectorised
    plumbing without the fixed roster: requests arrive and finish at
    arbitrary times, each bringing environments that join the shared pool
    for the duration of the request and leave afterwards.  Members may be
    attached and detached at any step boundary; each keeps its own episode
    state and per-episode RNG stream (streams are derived from
    ``(seed, episode_index)`` by the collectors, so membership churn never
    perturbs sampling), while the *pooled* state persists across churn:

    * the first member's view-feature memo becomes the pool's and every
      later member adopts it — content-addressed observation features
      computed for one request keep serving requests that join after it
      has left, and
    * members are expected to arrive sharing an :class:`ExecutionCache`
      (e.g. the engine-wide cache), which this class never replaces.

    The lock-step aggregate methods (:meth:`reset`, :meth:`observe`,
    :meth:`step`, ...) operate on the members attached at call time.
    """

    def __init__(self, environments: Sequence[ExplorationEnvironment] = ()):
        self.environments = []
        self._episode_length: Optional[int] = None
        self._observation_size: Optional[int] = None
        self._pooled_view_feature_memo = None
        for environment in environments:
            self.attach(environment)

    # -- membership -----------------------------------------------------------------------
    def attach(self, environment: ExplorationEnvironment) -> int:
        """Add *environment* to the pool; returns its current member index.

        The first member defines the pool's episode length and observation
        size and seeds the pooled view-feature memo; later members must
        match both and adopt the pooled memo (exactly the sharing a static
        :class:`VectorEnvironment` performs at construction).
        """
        if any(member is environment for member in self.environments):
            raise ValueError("environment is already attached")
        if self._episode_length is None:
            self._episode_length = environment.episode_length
            self._observation_size = environment.observation_size()
            self._pooled_view_feature_memo = environment._view_feature_memo
        else:
            if environment.episode_length != self._episode_length:
                raise ValueError(
                    f"lock-step members need episode_length={self._episode_length}, "
                    f"got {environment.episode_length}"
                )
            if environment.observation_size() != self._observation_size:
                raise ValueError(
                    f"members need observation size {self._observation_size}, "
                    f"got {environment.observation_size()}"
                )
            environment._view_feature_memo = self._pooled_view_feature_memo
        self.environments.append(environment)
        return len(self.environments) - 1

    def detach(self, environment: ExplorationEnvironment) -> None:
        """Remove *environment* from the pool (ValueError when not a member).

        The departing environment keeps its reference to the pooled memo
        (sharing content-addressed features is never unsafe), and the pool
        keeps the memo for future members even when it empties out.
        """
        for index, member in enumerate(self.environments):
            if member is environment:
                del self.environments[index]
                return
        raise ValueError("environment is not attached")

    # -- aggregate views (empty-safe) -----------------------------------------------------
    @property
    def episode_length(self) -> int:
        if self._episode_length is None:
            raise ValueError("no environment has ever been attached")
        return self._episode_length

    def observation_size(self) -> int:
        if self._observation_size is None:
            raise ValueError("no environment has ever been attached")
        return self._observation_size

    @property
    def cache(self) -> Optional[ExecutionCache]:
        return self.environments[0].cache if self.environments else None

    def cache_stats(self) -> Optional[dict[str, Any]]:
        return self.environments[0].cache_stats() if self.environments else None


@dataclass
class RolloutBatch:
    """The outcome of collecting one episode per (active) environment."""

    buffers: list[EpisodeBuffer] = field(default_factory=list)
    sessions: list = field(default_factory=list)

    def total_rewards(self) -> list[float]:
        return [buffer.total_reward() for buffer in self.buffers]

    def total_steps(self) -> int:
        return sum(len(buffer) for buffer in self.buffers)

    def operation_signatures(self) -> list[list[tuple]]:
        """Per-episode operation signatures, in episode order.

        Signatures are primitive tuples (the same declarative form
        ``ExploreResult`` persists), so actor processes can ship what each
        episode *did* back to the learner without pickling session objects.
        """
        return [
            [operation.signature() for operation in session.operations]
            for session in self.sessions
        ]


_SENTINEL = object()


def _is_env_mask_provider(provider) -> bool:
    """True when *provider* is some environment's bound ``head_mask`` method."""
    return getattr(provider, "__func__", None) is ExplorationEnvironment.head_mask


@contextmanager
def _policy_bound_to(policy: CategoricalPolicy, environment: ExplorationEnvironment):
    """Temporarily point the policy's per-environment hooks at *environment*.

    A policy configured for single-environment use holds environment-bound
    hooks: ``mask_provider`` (usually ``environment.head_mask``) and — for
    the specification-aware policy — an ``environment`` attribute its
    guidance reads the ongoing session from.  Batched collection swaps both
    to the environment being decided for, and restores them afterwards, so
    the per-row computation matches what a dedicated sequential policy would
    have done.  Only hooks that are recognisably environment-bound are
    swapped: an unset hook stays unset, and a *custom* mask provider (not
    some environment's ``head_mask``) keeps applying exactly as it would in
    single-environment acting.
    """
    saved_mask = policy.mask_provider
    saved_env = getattr(policy, "environment", _SENTINEL)
    if _is_env_mask_provider(saved_mask):
        policy.mask_provider = environment.head_mask
    if saved_env is not _SENTINEL and saved_env is not None:
        policy.environment = environment
    try:
        yield
    finally:
        policy.mask_provider = saved_mask
        if saved_env is not _SENTINEL and saved_env is not None:
            policy.environment = saved_env


def _mask_only_policy(policy: CategoricalPolicy) -> bool:
    """True when the policy's biases are exactly its environments' validity masks.

    The plain :class:`CategoricalPolicy` without a ``bias_provider`` and
    with an environment's ``head_mask`` as its mask provider qualifies; the
    specification-aware subclass (which overrides ``_collect_biases`` with
    per-state guidance) and policies with *custom* mask providers do not —
    they take the general per-environment bias path.
    """
    return (
        type(policy)._collect_biases is CategoricalPolicy._collect_biases
        and policy.bias_provider is None
        and _is_env_mask_provider(policy.mask_provider)
    )


def _fold_mask_biases(
    policy: CategoricalPolicy, masks: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Fold one environment's validity masks into logit biases.

    Mirrors :meth:`CategoricalPolicy._apply_masks` for the mask-only case
    bit for bit: short masks pad with ``True``, long ones truncate, and
    all-true / degenerate all-false masks contribute nothing.
    """
    biases: dict[str, np.ndarray] = {}
    for name, size in policy.network.head_sizes.items():
        mask = masks.get(name)
        if mask is None:
            continue
        if len(mask) < size:
            mask = np.concatenate([mask, np.ones(size - len(mask), dtype=bool)])
        elif len(mask) > size:
            mask = mask[:size]
        if mask.all() or not mask.any():
            continue
        biases[name] = np.where(mask, 0.0, MASK_LOGIT_BIAS)
    return biases


def _batched_mask_biases(
    policy: CategoricalPolicy, environments: Sequence[ExplorationEnvironment]
) -> list[dict[str, np.ndarray]]:
    """The batched validity-mask gather for all K environments of one step.

    :meth:`ActionSpace.valid_mask` memoises mask dictionaries by view
    fingerprint, so environments sitting on the same view hand back the
    *same* dict — the fold is computed once per distinct view, not once per
    environment (all K share one fold on the lock-step reset, for
    instance).
    """
    per_env_masks = [env.action_masks() for env in environments]
    folds: dict[int, dict[str, np.ndarray]] = {}
    biases: list[dict[str, np.ndarray]] = []
    for masks in per_env_masks:
        fold = folds.get(id(masks))
        if fold is None:
            fold = folds[id(masks)] = _fold_mask_biases(policy, masks)
        biases.append(fold)
    return biases


def _collect_biases(
    policy: CategoricalPolicy, environments: Sequence[ExplorationEnvironment]
) -> list[dict[str, np.ndarray]]:
    """Per-environment decision biases for one lock-step decision."""
    if _mask_only_policy(policy):
        return _batched_mask_biases(policy, environments)
    biases: list[dict[str, np.ndarray]] = []
    for environment in environments:
        with _policy_bound_to(policy, environment):
            biases.append(policy.decision_biases())
    return biases


def collect_rollouts(
    vector_env: VectorEnvironment,
    policy: CategoricalPolicy,
    *,
    seed: int = 0,
    episode_base: int = 0,
    num_episodes: int | None = None,
    greedy: bool = False,
    decision_to_choice: DecisionToChoice | None = None,
    reward_scale: float = 1.0,
) -> RolloutBatch:
    """Collect one episode per active environment, batched in lock-step.

    Episode ``episode_base + k`` (environment *k*) samples from
    :func:`env_rng(seed, episode_base + k) <env_rng>`; every step runs one
    batched policy forward over the stacked ``(K, F)`` observations.  The
    result is bit-identical to :func:`collect_sequential_rollouts` with the
    same arguments.

    ``num_episodes`` (≤ ``vector_env.num_envs``) restricts collection to the
    first *n* environments — the trainer uses it for a final partial wave.
    """
    count = vector_env.num_envs if num_episodes is None else num_episodes
    if not 1 <= count <= vector_env.num_envs:
        raise ValueError(
            f"num_episodes must be in 1..{vector_env.num_envs}, got {num_episodes}"
        )
    environments = vector_env.environments[:count]
    to_choice = decision_to_choice or choice_from_index_map
    rngs = [env_rng(seed, episode_base + k) for k in range(count)]
    observations = vector_env.reset(count)
    buffers = [EpisodeBuffer() for _ in range(count)]
    done = False
    while not done:
        biases = _collect_biases(policy, environments)
        decisions = policy.act_batch(observations, biases, rngs, greedy=greedy)
        choices = [to_choice(decision.indices) for decision in decisions]
        outcome = vector_env.step(choices)
        for k, decision in enumerate(decisions):
            buffers[k].add(
                decision, float(outcome.rewards[k]) * reward_scale, bool(outcome.dones[k])
            )
        observations = outcome.observations
        done = bool(outcome.dones.all())
    return RolloutBatch(buffers=buffers, sessions=vector_env.sessions(count))


def collect_sequential_rollouts(
    environments: Sequence[ExplorationEnvironment],
    policy: CategoricalPolicy,
    *,
    seed: int = 0,
    episode_base: int = 0,
    greedy: bool = False,
    decision_to_choice: DecisionToChoice | None = None,
    reward_scale: float = 1.0,
) -> RolloutBatch:
    """One-environment-at-a-time rollouts under the batched seeding scheme.

    This is the sequential reference (and benchmark baseline) for
    :func:`collect_rollouts`: environment *k* runs a full episode with the
    stream ``env_rng(seed, episode_base + k)`` before environment *k+1*
    starts.  With equal seeds the batched collector reproduces these
    buffers bit for bit.
    """
    to_choice = decision_to_choice or choice_from_index_map
    buffers: list[EpisodeBuffer] = []
    sessions = []
    for k, environment in enumerate(environments):
        rng = env_rng(seed, episode_base + k)
        buffer = EpisodeBuffer()
        with _policy_bound_to(policy, environment):
            observation = environment.reset()
            done = False
            while not done:
                decision = policy.act(observation, greedy=greedy, rng=rng)
                result = environment.step(to_choice(decision.indices))
                buffer.add(decision, result.reward * reward_scale, result.done)
                observation = result.observation
                done = result.done
        buffers.append(buffer)
        sessions.append(environment.session)
    return RolloutBatch(buffers=buffers, sessions=sessions)
