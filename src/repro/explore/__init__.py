"""Exploration model: operations, sessions, executor, rewards and the ADE MDP."""

from .action_space import (
    ACTION_TYPES,
    AGENT_AGG_FUNCTIONS,
    AGENT_FILTER_OPERATORS,
    HEAD_ORDER,
    ActionChoice,
    ActionSpace,
    choice_from_index_map,
    choice_from_indices,
)
from .cache import CacheStats, ExecutionCache, ThreadSafeExecutionCache
from .diskcache import (
    DISK_SCHEMA_VERSION,
    DiskCacheTier,
    ThreadSafeTieredExecutionCache,
    TieredExecutionCache,
)
from .diversity import operation_distance, result_distance, session_diversity
from .environment import (
    ExplorationEnvironment,
    GenericRewardStrategy,
    RewardStrategy,
    StepResult,
)
from .executor import ExecutionError, QueryExecutor
from .interestingness import (
    conciseness,
    filter_interestingness,
    group_interestingness,
    kl_divergence,
    operation_interestingness,
)
from .operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
    is_query_operation,
    operation_from_signature,
)
from .reward import GenericExplorationReward, GenericRewardConfig
from .rollouts import (
    RolloutBatch,
    VectorEnvironment,
    VectorStepResult,
    collect_rollouts,
    collect_sequential_rollouts,
    env_rng,
)
from .session import ExplorationSession, SessionNode, session_from_operations

__all__ = [
    "ACTION_TYPES",
    "AGENT_AGG_FUNCTIONS",
    "AGENT_FILTER_OPERATORS",
    "ActionChoice",
    "ActionSpace",
    "BackOperation",
    "CacheStats",
    "DISK_SCHEMA_VERSION",
    "DiskCacheTier",
    "ExecutionCache",
    "ExecutionError",
    "ExplorationEnvironment",
    "ExplorationSession",
    "FilterOperation",
    "GenericExplorationReward",
    "GenericRewardConfig",
    "GenericRewardStrategy",
    "GroupAggOperation",
    "HEAD_ORDER",
    "Operation",
    "QueryExecutor",
    "RewardStrategy",
    "RolloutBatch",
    "RootOperation",
    "SessionNode",
    "StepResult",
    "ThreadSafeExecutionCache",
    "ThreadSafeTieredExecutionCache",
    "TieredExecutionCache",
    "VectorEnvironment",
    "VectorStepResult",
    "choice_from_index_map",
    "choice_from_indices",
    "collect_rollouts",
    "collect_sequential_rollouts",
    "conciseness",
    "env_rng",
    "filter_interestingness",
    "group_interestingness",
    "is_query_operation",
    "kl_divergence",
    "operation_distance",
    "operation_from_signature",
    "operation_interestingness",
    "result_distance",
    "session_diversity",
    "session_from_operations",
]
