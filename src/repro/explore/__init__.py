"""Exploration model: operations, sessions, executor, rewards and the ADE MDP."""

from .action_space import (
    ACTION_TYPES,
    AGENT_AGG_FUNCTIONS,
    AGENT_FILTER_OPERATORS,
    HEAD_ORDER,
    ActionChoice,
    ActionSpace,
    choice_from_indices,
)
from .cache import CacheStats, ExecutionCache, ThreadSafeExecutionCache
from .diversity import operation_distance, result_distance, session_diversity
from .environment import (
    ExplorationEnvironment,
    GenericRewardStrategy,
    RewardStrategy,
    StepResult,
)
from .executor import ExecutionError, QueryExecutor
from .interestingness import (
    conciseness,
    filter_interestingness,
    group_interestingness,
    kl_divergence,
    operation_interestingness,
)
from .operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
    is_query_operation,
    operation_from_signature,
)
from .reward import GenericExplorationReward, GenericRewardConfig
from .session import ExplorationSession, SessionNode, session_from_operations

__all__ = [
    "ACTION_TYPES",
    "AGENT_AGG_FUNCTIONS",
    "AGENT_FILTER_OPERATORS",
    "ActionChoice",
    "ActionSpace",
    "BackOperation",
    "CacheStats",
    "ExecutionCache",
    "ExecutionError",
    "ExplorationEnvironment",
    "ExplorationSession",
    "FilterOperation",
    "GenericExplorationReward",
    "GenericRewardConfig",
    "GenericRewardStrategy",
    "GroupAggOperation",
    "HEAD_ORDER",
    "Operation",
    "QueryExecutor",
    "RewardStrategy",
    "RootOperation",
    "SessionNode",
    "StepResult",
    "ThreadSafeExecutionCache",
    "choice_from_indices",
    "conciseness",
    "filter_interestingness",
    "group_interestingness",
    "is_query_operation",
    "kl_divergence",
    "operation_distance",
    "operation_from_signature",
    "operation_interestingness",
    "result_distance",
    "session_diversity",
    "session_from_operations",
]
