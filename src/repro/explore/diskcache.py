"""A persistent, sqlite-backed tier under the in-memory execution cache.

The in-memory :class:`~repro.explore.cache.ExecutionCache` dies with its
process, so every benchmark sweep, every engine restart and every process-
pool worker starts cold.  This module adds the durable tier:

* :class:`DiskCacheTier` — a sharded sqlite store of serialized result
  views keyed by a canonical hash of the PR-3 buffer fingerprint +
  operation signature.  Keys stripe over ``num_shards`` WAL files by a
  stable digest prefix (see :mod:`repro.shards`), each with its own write
  lock and per-thread read connections, so concurrent lookups never queue
  behind each other or behind a writer and write-behind flushes become one
  ``executemany`` batch per shard.  A schema-version (or shard-count) row
  per shard invalidates a stale shard wholesale when the payload, digest
  format or key→shard routing changes (stale formats are *dropped*, never
  misread).
* :class:`TieredExecutionCache` — the drop-in ``ExecutionCache`` subclass
  that layers the memory LRU over a disk tier: **read-through** (a memory
  miss falls through to disk and promotes the row back into the LRU) and
  **batched write-behind** (inserts buffer in memory and land on disk in
  one transaction per :data:`DEFAULT_WRITE_BATCH` puts, or on
  :meth:`~TieredExecutionCache.flush`).
* :class:`ThreadSafeTieredExecutionCache` — the lock-guarded variant the
  long-lived :class:`~repro.engine.core.LinxEngine` shares across worker
  threads.

Results are serialized structurally — per-column dtype string, raw data
buffer and null-mask bytes — not as pickled object graphs, so a
deserialized view reconstructs the exact buffers and therefore the exact
fingerprint: a view read back from disk keys downstream cache lookups
identically to the view that was stored, across processes.  Failure
outcomes (negative cache) stay memory-only; an error message is cheap to
recompute and not worth a durable row.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import sqlite3
import struct
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable
from repro.reliability import (
    SITE_CACHE_PAYLOAD,
    SITE_CACHE_WRITE,
    fault_point,
    retry_sqlite,
)
from repro.shards import ShardedSqlite, prepare_shard_meta

from .cache import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_MAX_ERROR_ENTRIES,
    CacheKey,
    ExecutionCache,
    LockGuardedCacheOps,
)

#: Version of the on-disk layout (sqlite schema + payload encoding + cache
#: key digest format).  Bump on any incompatible change: a mismatching
#: store is dropped and recreated on open, so stale formats are ignored
#: rather than misinterpreted.  The fingerprint digest format changed in
#: the numpy-columnar rewrite (PR 3) — that is exactly the class of change
#: this guards against.  Version 2 introduced canonical-plan keys (the
#: ``("PLAN", fingerprint)`` second component) alongside per-operation
#: keys; stores written before the planner are dropped wholesale rather
#: than serving a mixed keyspace.
DISK_SCHEMA_VERSION = 2

#: Default number of buffered inserts per write-behind flush.
DEFAULT_WRITE_BATCH = 32

logger = logging.getLogger(__name__)


# -- canonical key encoding ---------------------------------------------------------------

def _feed(digest, value: Any) -> None:
    """Recursively absorb *value* into *digest* with a type-tagged encoding.

    Cache keys are nested tuples of primitives (the table fingerprint and
    the operation signature).  ``pickle`` output is not canonical across
    processes (its memoisation depends on object identity, e.g. string
    interning), so keys are hashed through this fixed encoding instead.
    """
    if isinstance(value, (tuple, list)):
        digest.update(b"T" + str(len(value)).encode() + b":")
        for item in value:
            _feed(digest, item)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        digest.update(b"S" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(value, bool):
        digest.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        raw = str(value).encode()
        digest.update(b"I" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(value, float):
        digest.update(b"F" + struct.pack("<d", value))
    elif isinstance(value, (bytes, bytearray)):
        digest.update(b"Y" + str(len(value)).encode() + b":" + bytes(value))
    elif value is None:
        digest.update(b"N")
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__} in cache key")


def encode_key(key: CacheKey) -> bytes:
    """The canonical 160-bit digest a cache key is stored under."""
    digest = hashlib.blake2b(digest_size=20)
    _feed(digest, key)
    return digest.digest()


# -- structural table serialization -------------------------------------------------------

def serialize_table(table: DataTable) -> bytes:
    """Encode *table* column-by-column from its raw buffers.

    Typed columns store ``(dtype string, numpy dtype str, data bytes, mask
    bytes)``; object-backed columns (coercion-bypassing mixed/NUL columns)
    store their Python value list.  The encoding reconstructs buffers — and
    therefore fingerprints — exactly.
    """
    columns: list[tuple] = []
    for name in table.columns:
        column = table.column(name)
        data, mask = column.buffers()
        if data.dtype == object:
            columns.append(("object", name, column.dtype, list(column.values)))
        else:
            columns.append(
                (
                    "typed",
                    name,
                    column.dtype,
                    data.dtype.str,
                    data.tobytes(),
                    mask.tobytes(),
                )
            )
    return pickle.dumps((table.name, len(table), columns), protocol=4)


def deserialize_table(payload: bytes) -> DataTable:
    """Rebuild a :func:`serialize_table` payload into a :class:`DataTable`."""
    name, length, columns = pickle.loads(payload)
    rebuilt: list[Column] = []
    for entry in columns:
        if entry[0] == "typed":
            _, col_name, dtype, dtype_str, data_bytes, mask_bytes = entry
            data = np.frombuffer(data_bytes, dtype=np.dtype(dtype_str))
            mask = np.frombuffer(mask_bytes, dtype=bool)
            rebuilt.append(Column._from_buffers(col_name, dtype, data, mask))
        else:
            _, col_name, dtype, values = entry
            data = np.empty(len(values), dtype=object)
            data[:] = list(values)
            mask = np.fromiter(
                (value is None for value in values), dtype=bool, count=len(values)
            )
            rebuilt.append(Column._from_buffers(col_name, dtype, data, mask))
    table = DataTable(rebuilt, name=name)
    if len(table) != length:
        raise ValueError(
            f"corrupt cache payload: expected {length} rows, rebuilt {len(table)}"
        )
    return table


# -- the disk tier ------------------------------------------------------------------------

class DiskCacheTier:
    """Persistent, sharded sqlite store of serialized execution results.

    Keys stripe over ``num_shards`` WAL files by a stable digest prefix,
    so writers to different shards never collide and each shard's WAL
    journaling still allows concurrent readers alongside its one writer;
    ``busy_timeout`` serialises competing write transactions on the same
    shard instead of failing them.  Lookups run on per-thread pooled read
    connections with no lock at all; writes serialize per shard on that
    shard's write lock, so one tier instance is shared across threads.

    Parameters
    ----------
    path:
        The sqlite file of shard 0 (parent directories are created).
        Conventionally ``<dir>/execution_cache.sqlite``; shards 1..N-1
        live at ``execution_cache.sqlite.shard<k>`` alongside it.
    timeout:
        Seconds a writer waits on a locked database before giving up.
    num_shards:
        How many sqlite files the key space is striped over.  ``1``
        (default) keeps the legacy single-file layout; a cache opened at a
        different count than it was written with is dropped wholesale
        (per-shard meta guards the routing — a dropped cache repopulates,
        it never mis-routes).
    """

    def __init__(self, path: str | Path, timeout: float = 30.0, num_shards: int = 1):
        self.path = Path(path)
        self.num_shards = num_shards
        self._lock = threading.Lock()  # guards counters only, never I/O
        #: Lookups served from disk / fallen through / rows written.
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.flushes = 0
        #: Transient ``database is locked`` failures absorbed by the shared
        #: backoff helper (telemetry for multi-replica write contention).
        self.write_retries = 0
        #: True when a version/shard-count mismatch dropped existing rows.
        self.invalidated = False
        # A corrupt/truncated shard file is quarantine-renamed and rebuilt
        # fresh, mirroring the wholesale schema-version drop — cache
        # corruption must never fail engine construction.
        self._pool = ShardedSqlite(self.path, num_shards, timeout, self._initialize)
        #: Where a corrupt pre-existing shard file was renamed on open, if any.
        quarantined = self._pool.quarantined_paths()
        self.quarantined_path: Optional[str] = quarantined[0] if quarantined else None

    # -- schema -------------------------------------------------------------------
    @property
    def _conn(self) -> sqlite3.Connection:
        """Shard 0's write connection (compatibility handle for tests/tools)."""
        return self._pool.shards[0].conn

    def _initialize(self, conn: sqlite3.Connection, shard_index: int) -> None:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        with conn:
            if prepare_shard_meta(
                conn,
                schema_version=DISK_SCHEMA_VERSION,
                num_shards=self.num_shards,
                shard_index=shard_index,
            ):
                # A stale digest/payload format or key→shard routing: drop
                # everything, never attempt to reinterpret old rows.
                conn.execute("DROP TABLE IF EXISTS entries")
                self.invalidated = True
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key BLOB PRIMARY KEY,"
                " payload BLOB NOT NULL,"
                " rows INTEGER NOT NULL,"
                " created_at REAL NOT NULL)"
            )

    # -- lookups ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[DataTable]:
        """The stored result view under *key*, or ``None``."""
        encoded = encode_key(key)
        shard = self._pool.shard_for_digest(encoded)
        row = shard.read_conn().execute(
            "SELECT payload FROM entries WHERE key = ?", (encoded,)
        ).fetchone()
        if row is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            table = deserialize_table(row[0])
        except Exception:
            # An unreadable payload behaves like a miss (and is removed so
            # it cannot keep failing).
            with shard.write_lock, shard.conn:
                shard.conn.execute("DELETE FROM entries WHERE key = ?", (encoded,))
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return table

    def put_many(self, items: Iterable[tuple[CacheKey, DataTable]]) -> int:
        """Insert (or replace) a batch of results, one transaction per shard.

        The batch is partitioned by owning shard and lands as one
        ``executemany`` per shard file, so a flush touches each shard's
        write lock at most once.  Transient lock contention from sibling
        replicas retries with backoff (``write_retries`` counts the
        absorbed failures); the
        :data:`~repro.reliability.SITE_CACHE_PAYLOAD` seam lets the fault
        harness tear a payload mid-write, which :meth:`get` must then
        repair as a miss.
        """
        now = time.time()
        rows = []
        for key, table in items:
            payload = serialize_table(table)
            spec = fault_point(SITE_CACHE_PAYLOAD)
            if spec is not None:
                # A torn write: persist only the first half of the payload,
                # exactly what a crash mid-write leaves behind.
                payload = payload[: max(1, len(payload) // 2)]
            rows.append((encode_key(key), payload, len(table), now))
        if not rows:
            return 0

        def count_retry(attempt: int, exc: BaseException, delay: float) -> None:
            with self._lock:
                self.write_retries += 1

        groups = self._pool.group_by_shard(
            rows, lambda row: self._pool.shard_for_digest(row[0])
        )
        for shard, batch in groups.items():

            def insert(shard=shard, batch=batch) -> None:
                with shard.write_lock, shard.conn:
                    fault_point(SITE_CACHE_WRITE)
                    shard.conn.executemany(
                        "INSERT OR REPLACE INTO entries (key, payload, rows, created_at)"
                        " VALUES (?, ?, ?, ?)",
                        batch,
                    )
                with self._lock:
                    self.writes += len(batch)

            retry_sqlite(insert, on_retry=count_retry)
        with self._lock:
            self.flushes += 1
        return len(rows)

    def put(self, key: CacheKey, table: DataTable) -> None:
        self.put_many([(key, table)])

    # -- maintenance ---------------------------------------------------------------
    def __len__(self) -> int:
        return sum(
            int(
                shard.read_conn()
                .execute("SELECT COUNT(*) FROM entries")
                .fetchone()[0]
            )
            for shard in self._pool.shards
        )

    def stored_rows(self) -> int:
        """Total result rows persisted (the disk analogue of ``cached_rows``)."""
        return sum(
            int(
                shard.read_conn()
                .execute("SELECT COALESCE(SUM(rows), 0) FROM entries")
                .fetchone()[0]
            )
            for shard in self._pool.shards
        )

    def clear(self) -> None:
        """Drop every persisted entry (the schema version rows stay)."""
        for shard in self._pool.shards:
            with shard.write_lock, shard.conn:
                shard.conn.execute("DELETE FROM entries")

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard occupancy (one row per shard file, for telemetry)."""
        return [
            {
                "shard": shard.index,
                "path": str(shard.path),
                "entries": int(
                    shard.read_conn()
                    .execute("SELECT COUNT(*) FROM entries")
                    .fetchone()[0]
                ),
            }
            for shard in self._pool.shards
        ]

    def describe(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "schema_version": DISK_SCHEMA_VERSION,
            "num_shards": self.num_shards,
            "entries": len(self),
            "stored_rows": self.stored_rows(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "flushes": self.flushes,
            "write_retries": self.write_retries,
            "invalidated": self.invalidated,
            "quarantined_path": self.quarantined_path,
            "shards": self.shard_stats(),
        }

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "DiskCacheTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the tiered cache ---------------------------------------------------------------------

class TieredExecutionCache(ExecutionCache):
    """An :class:`ExecutionCache` with a persistent disk tier underneath.

    Reads are **read-through**: a memory miss consults the write-behind
    buffer and then the disk tier, promoting any hit back into the memory
    LRU (without re-queuing it for writing).  Writes are **write-behind**:
    :meth:`put` lands in memory immediately and is buffered for disk; the
    buffer flushes in one transaction every *write_batch_size* puts, on
    :meth:`flush`, and on :meth:`close`.  ``stats`` keeps the combined
    cache outcome (what the executor observes); the disk tier's own
    hit/miss/write counters are surfaced through :meth:`describe` under
    ``disk_*`` keys.

    Failure outcomes (:meth:`put_error`) stay in the memory tier only.
    """

    def __init__(
        self,
        disk: DiskCacheTier | str | Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
        max_error_entries: int = DEFAULT_MAX_ERROR_ENTRIES,
        write_batch_size: int = DEFAULT_WRITE_BATCH,
        disk_shards: int = 1,
    ):
        super().__init__(
            max_entries=max_entries,
            max_cached_rows=max_cached_rows,
            max_error_entries=max_error_entries,
        )
        if write_batch_size < 1:
            raise ValueError("write_batch_size must be positive")
        self.disk = (
            disk
            if isinstance(disk, DiskCacheTier)
            else DiskCacheTier(disk, num_shards=disk_shards)
        )
        self.write_batch_size = write_batch_size
        self._pending: "OrderedDict[CacheKey, DataTable]" = OrderedDict()
        #: Flushes abandoned because the disk tier stayed locked through
        #: every retry: the cache degrades to memory-only for that batch.
        self.write_failures = 0

    # -- tiered lookups -------------------------------------------------------------
    def _fetch(self, key: CacheKey) -> Optional[DataTable]:
        """Read-through lookup: memory LRU, write-behind buffer, then disk.

        Overriding the raw hook (rather than :meth:`get`) means *every* key
        family — per-operation keys and canonical-plan keys alike — gets
        tiered reads and promotion; the stat counting stays in the base
        class's public lookups.
        """
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            return result
        # Evicted from memory but not yet flushed: the buffer still has it.
        pending = self._pending.get(key)
        if pending is not None:
            self._store(key, pending)
            return pending
        table = self.disk.get(key)
        if table is not None:
            self._store(key, table)
        return table

    def _put_key(self, key: CacheKey, result: DataTable) -> None:
        self._store(key, result)
        self._pending[key] = result
        if len(self._pending) >= self.write_batch_size:
            self.flush()

    # -- write-behind control --------------------------------------------------------
    @property
    def pending_writes(self) -> int:
        """Results buffered in memory but not yet persisted."""
        return len(self._pending)

    def flush(self) -> int:
        """Persist the write-behind buffer in one transaction; returns rows written.

        A disk tier that stays locked through every backoff retry must not
        fail the request that triggered the flush: the batch is dropped
        (its entries remain servable from the memory LRU), the degradation
        is logged, and subsequent flushes try again with fresh batches —
        a graceful memory-only fallback rather than a hard failure.
        """
        if not self._pending:
            return 0
        try:
            written = self.disk.put_many(self._pending.items())
        except sqlite3.OperationalError as exc:
            self.write_failures += 1
            logger.warning(
                "disk cache flush of %d entries failed (%s); "
                "degrading to memory-only for this batch",
                len(self._pending),
                exc,
            )
            self._pending.clear()
            return 0
        self._pending.clear()
        return written

    def close(self) -> None:
        """Flush outstanding writes and close the disk tier."""
        self.flush()
        self.disk.close()

    def __enter__(self) -> "TieredExecutionCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- bookkeeping ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop the memory tier and the write-behind buffer (disk rows stay).

        Use ``cache.disk.clear()`` to also wipe the persistent tier.
        """
        super().clear()
        self._pending.clear()

    def describe(self) -> dict[str, Any]:
        """Counters and occupancy for *both* tiers."""
        summary = super().describe()
        summary["tiers"] = "memory+disk"
        summary["pending_writes"] = len(self._pending)
        summary["write_failures"] = self.write_failures
        summary["disk_hits"] = self.disk.hits
        summary["disk_misses"] = self.disk.misses
        summary["disk_writes"] = self.disk.writes
        summary["disk_flushes"] = self.disk.flushes
        summary["disk_entries"] = len(self.disk)
        summary["disk_stored_rows"] = self.disk.stored_rows()
        summary["disk_schema_version"] = DISK_SCHEMA_VERSION
        summary["disk_shards"] = self.disk.num_shards
        return summary


class ThreadSafeTieredExecutionCache(LockGuardedCacheOps, TieredExecutionCache):
    """A :class:`TieredExecutionCache` guarded by a reentrant lock.

    The engine shares one of these across its worker threads (mirroring
    :class:`~repro.explore.cache.ThreadSafeExecutionCache` for the memory-
    only case; the shared wrapper set lives in
    :class:`~repro.explore.cache.LockGuardedCacheOps`).  The disk tier has
    its own internal lock, but the memory LRU, the write-behind buffer and
    the statistics need this outer lock to stay consistent under
    concurrent requests.  Only the tier-specific operations — ``flush``
    and ``close`` — are wrapped here.
    """

    def __init__(
        self,
        disk: DiskCacheTier | str | Path,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
        max_error_entries: int = DEFAULT_MAX_ERROR_ENTRIES,
        write_batch_size: int = DEFAULT_WRITE_BATCH,
        disk_shards: int = 1,
    ):
        super().__init__(
            disk,
            max_entries=max_entries,
            max_cached_rows=max_cached_rows,
            max_error_entries=max_error_entries,
            write_batch_size=write_batch_size,
            disk_shards=disk_shards,
        )
        self._lock = threading.RLock()

    def flush(self) -> int:
        with self._lock:
            return super().flush()

    def close(self) -> None:
        with self._lock:
            super().close()


def iter_cache_keys(
    cache: ExecutionCache,
) -> Iterator[CacheKey]:  # pragma: no cover - debugging helper
    """The memory-tier keys of *cache* (newest last)."""
    return iter(list(cache._entries))
