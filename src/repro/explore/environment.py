"""Episodic MDP environment for automated data exploration.

Implements the MDP of Section 5.1: states are the current view of the
ongoing exploration session, actions are parametric query operations (or
back), the transition function executes the operation, and the reward is
supplied by a pluggable reward strategy (the generic ATENA reward for the
goal-agnostic baseline; the bi-objective CDRL reward for LINX).

Two hot-path services ride along with the MDP itself: query execution is
memoised through an :class:`~repro.explore.cache.ExecutionCache` (enabled by
default, shareable across environments), and action validity is decided
statically — :meth:`QueryExecutor.can_execute` before executing, and
:meth:`action_masks` / :meth:`head_mask` for policies that mask invalid
actions at the distribution level.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

import numpy as np

from repro.dataframe.table import DataTable
from repro.plan.builder import plan_for_node

from .action_space import ActionChoice, ActionSpace
from .cache import ExecutionCache
from .executor import ExecutionError, QueryExecutor
from .operations import BackOperation, Operation
from .reward import GenericExplorationReward, GenericRewardConfig
from .session import ExplorationSession, SessionNode


class RewardStrategy(Protocol):
    """Pluggable per-step / end-of-episode reward computation."""

    def on_step(
        self,
        session: ExplorationSession,
        node: Optional[SessionNode],
        operation: Operation,
        valid: bool,
    ) -> float:
        """Reward granted immediately after the agent's step."""

    def on_episode_end(self, session: ExplorationSession) -> float:
        """Extra reward distributed at the end of the episode (may be 0)."""


class GenericRewardStrategy:
    """The goal-agnostic ATENA reward: generic exploration reward only."""

    def __init__(self, config: GenericRewardConfig | None = None):
        self.reward = GenericExplorationReward(config)

    def on_step(
        self,
        session: ExplorationSession,
        node: Optional[SessionNode],
        operation: Operation,
        valid: bool,
    ) -> float:
        if not valid:
            return self.reward.config.invalid_action_penalty
        if node is None:
            return self.reward.config.back_action_reward
        return self.reward.step_reward(session, node)

    def on_episode_end(self, session: ExplorationSession) -> float:
        return 0.0


@dataclass
class StepResult:
    """The observable outcome of one environment step."""

    observation: np.ndarray
    reward: float
    done: bool
    info: dict[str, Any] = field(default_factory=dict)


class ExplorationEnvironment:
    """Episodic environment in which an agent builds an exploration session.

    Parameters
    ----------
    dataset:
        The dataset ``D`` to explore.
    episode_length:
        Number of agent steps per episode (``N`` in the paper; sessions in
        the reference implementation are ~6-8 operations).
    reward_strategy:
        Computes step and end-of-episode rewards.  Defaults to the generic
        ATENA reward.
    cache:
        An :class:`ExecutionCache` shared with other consumers (e.g. the
        CDRL agent).  When ``None`` and *enable_cache* is true (the
        default), the environment creates a private cache so repeated
        ``(view, operation)`` pairs across episodes reuse their results.
    enable_cache:
        Set to ``False`` to execute every operation from scratch (used by
        benchmarks to measure the uncached baseline).
    use_plans:
        When true (the default), query operations execute through the
        planner path (:meth:`QueryExecutor.execute_step`): each node carries
        the canonical logical plan of its view and results are cached under
        ``(base, canonical plan)`` keys, so semantically equivalent
        pipelines — commuted filters, repeated predicates, undone steps —
        share one cache entry across episodes and environments.  Set to
        ``False`` for the eager per-``(view, operation)`` reference path.
    """

    def __init__(
        self,
        dataset: DataTable,
        episode_length: int = 6,
        reward_strategy: RewardStrategy | None = None,
        action_space: ActionSpace | None = None,
        cache: ExecutionCache | None = None,
        enable_cache: bool = True,
        use_plans: bool = True,
    ):
        if episode_length < 1:
            raise ValueError("episode_length must be positive")
        self.dataset = dataset
        self.episode_length = episode_length
        self.action_space = action_space or ActionSpace(dataset)
        self.reward_strategy: RewardStrategy = reward_strategy or GenericRewardStrategy()
        if not enable_cache:
            cache = None
        elif cache is None:
            cache = ExecutionCache()
        self.executor = QueryExecutor(cache=cache)
        self.use_plans = use_plans
        self.session: ExplorationSession = ExplorationSession(dataset)
        self._step_count = 0
        self._mask_node: Optional[SessionNode] = None
        self._masks: Optional[dict[str, np.ndarray]] = None
        # View-dependent observation features, memoised by view fingerprint.
        # Views are content-addressed (and shared via the execution cache), so
        # the per-column scan runs once per distinct view across all episodes.
        self._view_feature_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    # -- observation ---------------------------------------------------------------------
    def observation_size(self) -> int:
        """Length of the observation vector (fixed for a given dataset)."""
        return 4 + 3 * len(self.dataset.columns)

    #: Bound on the per-environment view-feature memo (distinct views seen).
    VIEW_FEATURE_MEMO_MAX = 4096

    def _view_features(self, view: DataTable) -> np.ndarray:
        """The view-dependent part of the observation, memoised by fingerprint.

        Returns ``[size_feature, width_feature, *per_column_triples]`` as a
        read-only float64 array built straight from the view's column
        buffers (the per-column stats are numpy reductions memoised on the
        immutable columns); the progress features (depth, step counter) are
        spliced in by :meth:`observe` since they change every step.
        """
        key = view.fingerprint()
        memo = self._view_feature_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            return cached
        total_rows = max(1, len(self.dataset))
        dataset_columns = self.dataset.columns
        features = np.zeros(2 + 3 * len(dataset_columns), dtype=np.float64)
        features[0] = math.log1p(len(view)) / math.log1p(total_rows)
        features[1] = len(view.columns) / max(1, len(dataset_columns))
        rows = max(1, len(view))
        for slot, column in enumerate(dataset_columns):
            if column in view:
                col = view.column(column)
                base = 2 + 3 * slot
                features[base] = 1.0
                features[base + 1] = col.nunique() / rows
                features[base + 2] = col.null_count() / rows
        features.flags.writeable = False
        memo[key] = features
        while len(memo) > self.VIEW_FEATURE_MEMO_MAX:
            memo.popitem(last=False)
        return features

    def observe(self) -> np.ndarray:
        """Featurise the current state ``S_i`` (the current view and progress)."""
        view_features = self._view_features(self.session.current.view)
        features = np.empty(2 + len(view_features), dtype=np.float64)
        features[0:2] = view_features[0:2]
        features[2] = self.session.current.depth() / max(1, self.episode_length)
        features[3] = self._step_count / self.episode_length
        features[4:] = view_features[2:]
        return features

    # -- action validity -----------------------------------------------------------------
    @property
    def cache(self) -> Optional[ExecutionCache]:
        """The executor's execution cache (``None`` when caching is disabled)."""
        return self.executor.cache

    def cache_stats(self) -> Optional[dict[str, Any]]:
        """Hit/miss statistics of the execution cache, if one is attached."""
        cache = self.executor.cache
        return cache.stats.as_dict() if cache is not None else None

    def action_masks(self) -> dict[str, np.ndarray]:
        """Per-head validity masks for the current view (memoised per node).

        Delegates to :meth:`ActionSpace.valid_mask`; the result is cached
        until the session cursor moves, so policies may query it once per
        head per step at no cost.
        """
        node = self.session.current
        if self._mask_node is not node or self._masks is None:
            self._masks = self.action_space.valid_mask(node.view)
            self._mask_node = node
        return self._masks

    def head_mask(self, head: str) -> Optional[np.ndarray]:
        """Validity mask for one softmax head (policy ``mask_provider`` hook)."""
        return self.action_masks().get(head)

    # -- episode control -----------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        self.session = ExplorationSession(self.dataset)
        self._step_count = 0
        self._mask_node = None
        self._masks = None
        return self.observe()

    @property
    def steps_remaining(self) -> int:
        return self.episode_length - self._step_count

    def step(self, choice: ActionChoice) -> StepResult:
        """Execute the agent's factored action choice and return the outcome."""
        if self._step_count >= self.episode_length:
            raise RuntimeError("episode already finished; call reset()")
        operation = self.action_space.decode(choice)
        self._step_count += 1
        node: Optional[SessionNode] = None
        valid = True
        if isinstance(operation, BackOperation):
            self.session.go_back(operation.steps)
        elif not self.executor.can_execute(self.session.current.view, operation):
            # Cheap static check: no query runs for invalid actions.
            valid = False
            self.session.note_invalid_step()
        elif self.use_plans:
            current = self.session.current
            base_plan = current.plan
            if base_plan is None:
                base_plan = plan_for_node(current)
            try:
                view, new_plan = self.executor.execute_step(
                    self.dataset, base_plan, current.view, operation
                )
            except ExecutionError:
                valid = False
                self.session.note_invalid_step()
            else:
                node = self.session.add_operation(operation, view, plan=new_plan)
        else:
            try:
                view = self.executor.execute(self.session.current.view, operation)
            except ExecutionError:
                valid = False
                self.session.note_invalid_step()
            else:
                node = self.session.add_operation(operation, view)
        reward = self.reward_strategy.on_step(self.session, node, operation, valid)
        done = self._step_count >= self.episode_length
        info: dict[str, Any] = {"operation": operation, "valid": valid}
        if done:
            terminal_bonus = self.reward_strategy.on_episode_end(self.session)
            reward += terminal_bonus
            info["terminal_bonus"] = terminal_bonus
            info["session"] = self.session
        return StepResult(self.observe(), reward, done, info)

    # -- convenience ----------------------------------------------------------------------
    def rollout(self, choices: list[ActionChoice]) -> tuple[ExplorationSession, float]:
        """Run a full episode from a list of pre-computed choices; returns (session, return)."""
        self.reset()
        total = 0.0
        for choice in choices[: self.episode_length]:
            result = self.step(choice)
            total += result.reward
            if result.done:
                break
        return self.session, total
