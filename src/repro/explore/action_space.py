"""Discretised, factored action space for the exploration MDP.

The DRL agent composes a parametric query operation by choosing an operation
type and then the corresponding parameters (Figure 2 of the paper).  This
module derives the discrete vocabularies from the dataset:

* filter attributes — every column,
* filter operators — the canonical comparison operators,
* filter terms — per attribute, the most frequent categorical values or
  numeric quantiles,
* group attributes — low/medium-cardinality columns,
* aggregation functions and aggregation attributes.

The factored action is a tuple of head indices, decoded by
:meth:`ActionSpace.decode` into an executable operation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.dataframe.aggregates import numeric_only
from repro.dataframe.table import DataTable

from .operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
)

#: High-level action types (the snippet type is added by the CDRL network).
ACTION_TYPES: tuple[str, ...] = ("back", "filter", "group")

#: Filter operators exposed to the agent (a practical subset of the engine's set).
AGENT_FILTER_OPERATORS: tuple[str, ...] = ("eq", "neq", "gt", "le", "contains")

#: Aggregation functions exposed to the agent.
AGENT_AGG_FUNCTIONS: tuple[str, ...] = ("count", "sum", "mean", "min", "max")

#: Maximum number of candidate terms per attribute.
TERMS_PER_ATTRIBUTE = 12

#: Maximum distinct values for a column to qualify as a group-by attribute.
GROUPABLE_MAX_DISTINCT = 60


@dataclass(frozen=True)
class ActionChoice:
    """The agent's raw factored choice (one index per softmax head)."""

    action_type: int
    filter_attr: int = 0
    filter_op: int = 0
    filter_term: int = 0
    group_attr: int = 0
    agg_func: int = 0
    agg_attr: int = 0


class ActionSpace:
    """Vocabulary and decoder of the factored exploration action space."""

    def __init__(self, dataset: DataTable):
        self.dataset = dataset
        self.attributes: list[str] = dataset.columns
        self.filter_operators: list[str] = list(AGENT_FILTER_OPERATORS)
        self.agg_functions: list[str] = list(AGENT_AGG_FUNCTIONS)
        self.group_attributes: list[str] = self._derive_group_attributes(dataset)
        self.agg_attributes: list[str] = self._derive_agg_attributes(dataset)
        self.terms: dict[str, list[Any]] = {
            attr: self._derive_terms(dataset, attr) for attr in self.attributes
        }
        # Validity masks keyed by view fingerprint: views are immutable and
        # content-addressed (shared through the execution cache), so every
        # environment, episode and lock-step rollout wave that reaches the
        # same view reuses one schema scan.
        self._mask_memo: "OrderedDict[tuple, dict[str, np.ndarray]]" = OrderedDict()

    # -- vocabulary derivation ----------------------------------------------------------
    @staticmethod
    def _derive_group_attributes(dataset: DataTable) -> list[str]:
        groupable = []
        for name in dataset.columns:
            column = dataset.column(name)
            distinct = column.nunique()
            if 1 < distinct <= GROUPABLE_MAX_DISTINCT:
                groupable.append(name)
        return groupable or dataset.columns[:1]

    @staticmethod
    def _derive_agg_attributes(dataset: DataTable) -> list[str]:
        numeric = dataset.numeric_columns()
        return numeric or dataset.columns[:1]

    @staticmethod
    def _derive_terms(dataset: DataTable, attr: str) -> list[Any]:
        column = dataset.column(attr)
        if column.is_numeric:
            values = sorted(set(column.non_null()))
            if not values:
                return [0]
            if len(values) <= TERMS_PER_ATTRIBUTE:
                return values
            step = len(values) / TERMS_PER_ATTRIBUTE
            return [values[int(i * step)] for i in range(TERMS_PER_ATTRIBUTE)]
        counts = column.value_counts()
        ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
        return [value for value, _ in ranked[:TERMS_PER_ATTRIBUTE]] or [""]

    # -- sizes ---------------------------------------------------------------------------
    def head_sizes(self) -> dict[str, int]:
        """Number of choices per softmax head (used to build the policy network)."""
        return {
            "action_type": len(ACTION_TYPES),
            "filter_attr": len(self.attributes),
            "filter_op": len(self.filter_operators),
            "filter_term": TERMS_PER_ATTRIBUTE,
            "group_attr": len(self.group_attributes),
            "agg_func": len(self.agg_functions),
            "agg_attr": len(self.agg_attributes),
        }

    def size(self) -> int:
        """Total number of distinct concrete operations (for reporting)."""
        filter_count = sum(
            len(self.filter_operators) * max(1, len(self.terms[attr]))
            for attr in self.attributes
        )
        group_count = (
            len(self.group_attributes) * len(self.agg_functions) * len(self.agg_attributes)
        )
        return 1 + filter_count + group_count

    #: Bound on the fingerprint-keyed validity-mask memo.
    MASK_MEMO_MAX = 4096

    # -- validity masking ----------------------------------------------------------------
    def valid_mask(self, view: DataTable) -> dict[str, np.ndarray]:
        """Batched, schema-only validity masks for every softmax head.

        For the given *view* (the current session node), returns one boolean
        array per head in :meth:`head_sizes` where ``True`` marks choices
        that can decode into an executable operation.  The check mirrors
        :meth:`QueryExecutor.can_execute` — column presence plus dtype
        constraints — and never executes a query, so environments and
        policies can mask invalid actions on every step for free.  Results
        are memoised by the view's content fingerprint (callers must treat
        the returned arrays as read-only).

        Per-head masks are exact for this action space: filter operators and
        terms are always applicable once the attribute is present, and
        aggregate attributes come from the dataset's numeric columns, whose
        dtype is preserved in every derived view.  ``count`` decodes with
        ``agg_attr = group_attr``, so it is valid whenever any group
        attribute is.
        """
        key = view.fingerprint()
        memo = self._mask_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            return cached
        masks = self._compute_valid_mask(view)
        memo[key] = masks
        while len(memo) > self.MASK_MEMO_MAX:
            memo.popitem(last=False)
        return masks

    def _compute_valid_mask(self, view: DataTable) -> dict[str, np.ndarray]:
        filter_attr = np.array([attr in view for attr in self.attributes], dtype=bool)
        group_attr = np.array(
            [attr in view for attr in self.group_attributes], dtype=bool
        )
        agg_attr = np.array([attr in view for attr in self.agg_attributes], dtype=bool)
        numeric_agg_attr = np.array(
            [
                attr in view and view.column(attr).is_numeric
                for attr in self.agg_attributes
            ],
            dtype=bool,
        )
        any_group = bool(group_attr.any())
        agg_func = np.array(
            [
                any_group
                if func == "count"
                else bool((numeric_agg_attr if numeric_only(func) else agg_attr).any())
                for func in self.agg_functions
            ],
            dtype=bool,
        )
        action_type = np.array(
            [True, bool(filter_attr.any()), any_group and bool(agg_func.any())],
            dtype=bool,
        )
        return {
            "action_type": action_type,
            "filter_attr": filter_attr,
            "filter_op": np.ones(len(self.filter_operators), dtype=bool),
            "filter_term": np.ones(TERMS_PER_ATTRIBUTE, dtype=bool),
            "group_attr": group_attr,
            "agg_func": agg_func,
            "agg_attr": agg_attr,
        }

    # -- decoding ------------------------------------------------------------------------
    def term_for(self, attr: str, index: int) -> Any:
        """The concrete filter term for *attr* at slot *index* (wrapping)."""
        terms = self.terms.get(attr) or [""]
        return terms[index % len(terms)]

    def decode(self, choice: ActionChoice) -> Operation:
        """Translate a factored head choice into an executable operation."""
        action_type = ACTION_TYPES[choice.action_type % len(ACTION_TYPES)]
        if action_type == "back":
            return BackOperation(steps=1)
        if action_type == "filter":
            attr = self.attributes[choice.filter_attr % len(self.attributes)]
            op = self.filter_operators[choice.filter_op % len(self.filter_operators)]
            term = self.term_for(attr, choice.filter_term)
            return FilterOperation(attr=attr, op=op, term=term)
        group_attr = self.group_attributes[choice.group_attr % len(self.group_attributes)]
        agg_func = self.agg_functions[choice.agg_func % len(self.agg_functions)]
        agg_attr = self.agg_attributes[choice.agg_attr % len(self.agg_attributes)]
        if agg_func == "count":
            agg_attr = group_attr
        return GroupAggOperation(group_attr=group_attr, agg_func=agg_func, agg_attr=agg_attr)

    # -- lookup helpers (used by the snippet machinery) ------------------------------------
    def index_of_attribute(self, attr: str) -> int:
        return self.attributes.index(attr) if attr in self.attributes else 0

    def index_of_operator(self, op: str) -> int:
        return self.filter_operators.index(op) if op in self.filter_operators else 0

    def index_of_agg(self, func: str) -> int:
        return self.agg_functions.index(func) if func in self.agg_functions else 0

    def index_of_group_attribute(self, attr: str) -> int:
        return self.group_attributes.index(attr) if attr in self.group_attributes else 0

    def index_of_agg_attribute(self, attr: str) -> int:
        return self.agg_attributes.index(attr) if attr in self.agg_attributes else 0

    def index_of_term(self, attr: str, term: Any) -> int | None:
        terms = self.terms.get(attr) or []
        for index, value in enumerate(terms):
            if str(value) == str(term):
                return index
        return None

    def enumerate_operations(self, max_operations: int | None = None) -> list[Operation]:
        """Enumerate concrete operations (used by rule-based baselines)."""
        operations: list[Operation] = []
        for attr in self.attributes:
            for op in self.filter_operators:
                for term in self.terms[attr]:
                    operations.append(FilterOperation(attr=attr, op=op, term=term))
                    if max_operations and len(operations) >= max_operations:
                        return operations
        for group_attr in self.group_attributes:
            for agg_func in self.agg_functions:
                for agg_attr in self.agg_attributes:
                    operations.append(
                        GroupAggOperation(
                            group_attr=group_attr, agg_func=agg_func, agg_attr=agg_attr
                        )
                    )
                    if max_operations and len(operations) >= max_operations:
                        return operations
        return operations


HEAD_ORDER: tuple[str, ...] = (
    "action_type",
    "filter_attr",
    "filter_op",
    "filter_term",
    "group_attr",
    "agg_func",
    "agg_attr",
)


def choice_from_indices(indices: Sequence[int]) -> ActionChoice:
    """Build an :class:`ActionChoice` from head indices in :data:`HEAD_ORDER`."""
    values = dict(zip(HEAD_ORDER, indices))
    return ActionChoice(**values)


def choice_from_index_map(indices: Mapping[str, int]) -> ActionChoice:
    """Build an :class:`ActionChoice` from a per-head index mapping.

    Heads absent from *indices* default to 0.  This is the canonical
    decision-to-choice decoder shared by the trainer and the batched
    rollout collector (policies with extra heads supply their own, e.g.
    :meth:`SpecificationAwarePolicy.indices_to_choice`).
    """
    return ActionChoice(**{name: indices.get(name, 0) for name in HEAD_ORDER})
