"""Execution of parametric query operations against :class:`DataTable` views."""

from __future__ import annotations

from repro.dataframe.aggregates import numeric_only
from repro.dataframe.errors import DataFrameError
from repro.dataframe.expressions import Predicate
from repro.dataframe.table import DataTable

from .cache import ExecutionCache
from .operations import (
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
)


class ExecutionError(Exception):
    """An operation could not be executed against the given view."""


class QueryExecutor:
    """Executes filter and group-and-aggregate operations on table views.

    The executor is strict: operations referencing columns that are missing
    from the view (including the aggregate attribute of a group-by) raise
    :class:`ExecutionError`, which the environment translates into an
    invalid-action penalty.  No silent parameter substitution happens.

    Validity is checked *statically*: :meth:`can_execute` inspects only the
    view's schema (column presence and dtypes) and never runs the query, so
    it is safe to call per candidate action on the hot path.  For batched,
    per-head masking see :meth:`repro.explore.action_space.ActionSpace.valid_mask`.

    When constructed with an :class:`~repro.explore.cache.ExecutionCache`,
    successful results are memoised by ``(view fingerprint, operation
    signature)`` and repeated executions return the cached immutable view.
    Runtime failures are memoised too (negative caching): an operation that
    passed the static check but raised :class:`ExecutionError` re-raises
    from the cache on repeats instead of re-executing from scratch.
    """

    def __init__(self, cache: ExecutionCache | None = None):
        self.cache = cache

    def execute(self, view: DataTable, operation: Operation) -> DataTable:
        """Execute *operation* on *view*, returning the result view."""
        if isinstance(operation, RootOperation):
            return view
        if isinstance(operation, FilterOperation):
            run = self._execute_filter
        elif isinstance(operation, GroupAggOperation):
            run = self._execute_group
        else:
            raise ExecutionError(f"cannot execute operation of kind {operation.kind!r}")
        if self.cache is not None:
            failure = self.cache.get_error(view, operation)
            if failure is not None:
                raise ExecutionError(failure)
            cached = self.cache.get(view, operation)
            if cached is not None:
                return cached
        try:
            result = run(view, operation)
        except ExecutionError as exc:
            if self.cache is not None:
                self.cache.put_error(view, operation, str(exc))
            raise
        if self.cache is not None:
            self.cache.put(view, operation, result)
        return result

    def _execute_filter(self, view: DataTable, operation: FilterOperation) -> DataTable:
        if operation.attr not in view:
            raise ExecutionError(
                f"filter attribute {operation.attr!r} not in view columns {view.columns}"
            )
        try:
            predicate = Predicate(operation.attr, operation.op, operation.term)
            return view.filter(predicate)
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def _execute_group(self, view: DataTable, operation: GroupAggOperation) -> DataTable:
        if operation.group_attr not in view:
            raise ExecutionError(
                f"group attribute {operation.group_attr!r} not in view columns {view.columns}"
            )
        if operation.agg_attr not in view:
            raise ExecutionError(
                f"aggregate attribute {operation.agg_attr!r} not in view columns "
                f"{view.columns}"
            )
        try:
            return view.groupby_agg(
                operation.group_attr, operation.agg_func, operation.agg_attr
            )
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def can_execute(self, view: DataTable, operation: Operation) -> bool:
        """True when :meth:`execute` would succeed, decided from the schema only.

        This never runs the operation: filters need their attribute in the
        view; group-bys need both attributes present and a numeric aggregate
        column for numeric-only functions.  Back operations are not
        executable (the environment handles them without the executor).
        """
        if isinstance(operation, RootOperation):
            return True
        if isinstance(operation, FilterOperation):
            return operation.attr in view
        if isinstance(operation, GroupAggOperation):
            if operation.group_attr not in view or operation.agg_attr not in view:
                return False
            if numeric_only(operation.agg_func) and not view.column(operation.agg_attr).is_numeric:
                return False
            return True
        return False
