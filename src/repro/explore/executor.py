"""Execution of parametric query operations against :class:`DataTable` views.

Two execution styles share this module:

* the **eager** reference path — :meth:`QueryExecutor.execute` runs one
  operation against one view, memoised per ``(view, operation)``;
* the **plan** path — :meth:`QueryExecutor.execute_plan` canonicalizes a
  :class:`~repro.plan.nodes.LogicalPlan` and executes it in *fused
  segments* (adjacent filters AND-combine their vectorised masks; a filter
  run feeding a group-by pushes the combined mask straight into the
  group-by factorisation), memoised per ``(base, canonical plan)`` so
  commuted or duplicated pipelines share one cache entry.
  :meth:`QueryExecutor.execute_step` is the incremental variant the
  exploration environments use: one operation extends a canonical prefix
  plan and the result lands under the new prefix's semantic key.

Both paths produce bit-identical views; the eager path remains the tested
reference the property suite compares against.
"""

from __future__ import annotations

from repro.dataframe.aggregates import numeric_only
from repro.dataframe.errors import DataFrameError
from repro.dataframe.expressions import Predicate, combine_and
from repro.dataframe.table import DataTable
from repro.plan import (
    FilterNode,
    GroupNode,
    LogicalPlan,
    canonicalize,
    node_from_operation,
)

from .cache import ExecutionCache
from .operations import (
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
)


class ExecutionError(Exception):
    """An operation could not be executed against the given view."""


class QueryExecutor:
    """Executes filter and group-and-aggregate operations on table views.

    The executor is strict: operations referencing columns that are missing
    from the view (including the aggregate attribute of a group-by) raise
    :class:`ExecutionError`, which the environment translates into an
    invalid-action penalty.  No silent parameter substitution happens.

    Validity is checked *statically*: :meth:`can_execute` inspects only the
    view's schema (column presence and dtypes) and never runs the query, so
    it is safe to call per candidate action on the hot path.  For batched,
    per-head masking see :meth:`repro.explore.action_space.ActionSpace.valid_mask`.

    When constructed with an :class:`~repro.explore.cache.ExecutionCache`,
    successful results are memoised by ``(view fingerprint, operation
    signature)`` and repeated executions return the cached immutable view.
    Runtime failures are memoised too (negative caching): an operation that
    passed the static check but raised :class:`ExecutionError` re-raises
    from the cache on repeats instead of re-executing from scratch.  The
    plan path memoises under ``(base fingerprint, canonical plan
    fingerprint)`` instead, which is order-insensitive.
    """

    def __init__(self, cache: ExecutionCache | None = None):
        self.cache = cache

    def execute(self, view: DataTable, operation: Operation) -> DataTable:
        """Execute *operation* on *view*, returning the result view."""
        if isinstance(operation, RootOperation):
            return view
        if isinstance(operation, FilterOperation):
            run = self._execute_filter
        elif isinstance(operation, GroupAggOperation):
            run = self._execute_group
        else:
            raise ExecutionError(f"cannot execute operation of kind {operation.kind!r}")
        if self.cache is not None:
            failure = self.cache.get_error(view, operation)
            if failure is not None:
                raise ExecutionError(failure)
            cached = self.cache.get(view, operation)
            if cached is not None:
                return cached
        try:
            result = run(view, operation)
        except ExecutionError as exc:
            if self.cache is not None:
                self.cache.put_error(view, operation, str(exc))
            raise
        if self.cache is not None:
            self.cache.put(view, operation, result)
        return result

    # -- plan execution ------------------------------------------------------------------
    def execute_step(
        self,
        base: DataTable,
        plan: LogicalPlan,
        view: DataTable,
        operation: Operation,
    ) -> tuple[DataTable, LogicalPlan]:
        """Execute one operation as a plan extension (the incremental hot path).

        *plan* is the canonical plan that produced *view* from *base*; the
        returned pair is ``(result view, canonical plan of the result)``.
        The lookup is semantic — if any previously executed pipeline
        canonicalizes to the same extended plan (commuted filters, repeated
        predicates, undone steps), its view is returned without executing —
        and a miss costs exactly one eager operation, so the step path is
        never slower than :meth:`execute`.  Runtime failures keep the eager
        per-``(view, operation)`` negative cache.
        """
        if isinstance(operation, RootOperation):
            return view, plan
        if not isinstance(operation, (FilterOperation, GroupAggOperation)):
            raise ExecutionError(f"cannot execute operation of kind {operation.kind!r}")
        new_plan = canonicalize(plan.extend(node_from_operation(operation)))
        if self.cache is not None:
            failure = self.cache.get_error(view, operation)
            if failure is not None:
                raise ExecutionError(failure)
            cached = self.cache.get_plan(base, new_plan)
            if cached is not None:
                return cached, new_plan
        run = (
            self._execute_filter
            if isinstance(operation, FilterOperation)
            else self._execute_group
        )
        try:
            result = run(view, operation)
        except ExecutionError as exc:
            if self.cache is not None:
                self.cache.put_error(view, operation, str(exc))
            raise
        if self.cache is not None:
            self.cache.put_plan(base, new_plan, result)
        return result, new_plan

    def execute_plan(self, base: DataTable, plan: LogicalPlan) -> DataTable:
        """Execute *plan* against *base* with fused segments.

        The plan is canonicalized first, so back steps are resolved and
        equivalent pipelines share both their cache entries and their
        execution.  Execution walks the canonical plan in segments:

        * a maximal run of adjacent filters computes every predicate mask
          on the segment's input view and materialises **one** filtered
          view from the AND-combined mask;
        * when the run feeds a group-by, the combined mask goes straight
          into :meth:`DataTable.groupby_agg` (``where=``) and *no*
          intermediate view is materialised at all.

        Each materialised prefix is cached under its canonical-plan key, so
        later pipelines sharing a prefix resume from it.  Results are
        bit-identical to executing each operation eagerly in sequence.
        """
        canonical = canonicalize(plan)
        steps = canonical.steps
        if not steps:
            return base
        if self.cache is not None:
            cached = self.cache.get_plan(base, canonical)
            if cached is not None:
                return cached
        view = base
        i = 0
        while i < len(steps):
            node = steps[i]
            if isinstance(node, FilterNode):
                j = i
                while j < len(steps) and isinstance(steps[j], FilterNode):
                    j += 1
                mask = self._fused_filter_mask(view, steps[i:j])
                fused = j - i
                if j < len(steps) and isinstance(steps[j], GroupNode):
                    view = self._run_group_node(view, steps[j], where=mask)
                    j += 1
                    fused += 1
                else:
                    view = view.filter_rows(mask)
                i = j
                if fused >= 2 and self.cache is not None:
                    self.cache.stats.fusion_count += 1
            elif isinstance(node, GroupNode):
                view = self._run_group_node(view, node)
                i += 1
            else:
                raise ExecutionError(
                    f"cannot execute plan node of kind {node.kind!r}"
                )
            if self.cache is not None:
                self.cache.put_plan(base, LogicalPlan(steps[:i]), view)
        return view

    def _fused_filter_mask(self, view: DataTable, run) -> "object":
        """The AND-combined row mask of an adjacent filter run over *view*."""
        masks = []
        for node in run:
            if node.attr not in view:
                raise ExecutionError(
                    f"filter attribute {node.attr!r} not in view columns {view.columns}"
                )
            try:
                predicate = Predicate(node.attr, node.op, node.term)
                masks.append(predicate.mask(view.column(node.attr)))
            except DataFrameError as exc:
                raise ExecutionError(str(exc)) from exc
        return combine_and(masks)

    def _run_group_node(self, view: DataTable, node: GroupNode, where=None) -> DataTable:
        if node.group_attr not in view:
            raise ExecutionError(
                f"group attribute {node.group_attr!r} not in view columns {view.columns}"
            )
        if node.agg_attr not in view:
            raise ExecutionError(
                f"aggregate attribute {node.agg_attr!r} not in view columns "
                f"{view.columns}"
            )
        try:
            return view.groupby_agg(
                node.group_attr, node.agg_func, node.agg_attr, where=where
            )
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    # -- eager kernels -------------------------------------------------------------------
    def _execute_filter(self, view: DataTable, operation: FilterOperation) -> DataTable:
        if operation.attr not in view:
            raise ExecutionError(
                f"filter attribute {operation.attr!r} not in view columns {view.columns}"
            )
        try:
            predicate = Predicate(operation.attr, operation.op, operation.term)
            return view.filter(predicate)
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def _execute_group(self, view: DataTable, operation: GroupAggOperation) -> DataTable:
        if operation.group_attr not in view:
            raise ExecutionError(
                f"group attribute {operation.group_attr!r} not in view columns {view.columns}"
            )
        if operation.agg_attr not in view:
            raise ExecutionError(
                f"aggregate attribute {operation.agg_attr!r} not in view columns "
                f"{view.columns}"
            )
        try:
            return view.groupby_agg(
                operation.group_attr, operation.agg_func, operation.agg_attr
            )
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def can_execute(self, view: DataTable, operation: Operation) -> bool:
        """True when :meth:`execute` would succeed, decided from the schema only.

        This never runs the operation: filters need their attribute in the
        view; group-bys need both attributes present and a numeric aggregate
        column for numeric-only functions.  Back operations are not
        executable (the environment handles them without the executor).
        """
        if isinstance(operation, RootOperation):
            return True
        if isinstance(operation, FilterOperation):
            return operation.attr in view
        if isinstance(operation, GroupAggOperation):
            if operation.group_attr not in view or operation.agg_attr not in view:
                return False
            if numeric_only(operation.agg_func) and not view.column(operation.agg_attr).is_numeric:
                return False
            return True
        return False
