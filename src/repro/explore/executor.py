"""Execution of parametric query operations against :class:`DataTable` views."""

from __future__ import annotations

from repro.dataframe.errors import DataFrameError
from repro.dataframe.expressions import Predicate
from repro.dataframe.table import DataTable

from .operations import (
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
)


class ExecutionError(Exception):
    """An operation could not be executed against the given view."""


class QueryExecutor:
    """Executes filter and group-and-aggregate operations on table views.

    The executor is deliberately forgiving about group-by operations applied
    to aggregated views (the agent may group an already-grouped result): when
    the requested columns are missing it raises :class:`ExecutionError`, which
    the environment translates into an invalid-action penalty.
    """

    def execute(self, view: DataTable, operation: Operation) -> DataTable:
        """Execute *operation* on *view*, returning the result view."""
        if isinstance(operation, RootOperation):
            return view
        if isinstance(operation, FilterOperation):
            return self._execute_filter(view, operation)
        if isinstance(operation, GroupAggOperation):
            return self._execute_group(view, operation)
        raise ExecutionError(f"cannot execute operation of kind {operation.kind!r}")

    def _execute_filter(self, view: DataTable, operation: FilterOperation) -> DataTable:
        if operation.attr not in view:
            raise ExecutionError(
                f"filter attribute {operation.attr!r} not in view columns {view.columns}"
            )
        try:
            predicate = Predicate(operation.attr, operation.op, operation.term)
            return view.filter(predicate)
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def _execute_group(self, view: DataTable, operation: GroupAggOperation) -> DataTable:
        if operation.group_attr not in view:
            raise ExecutionError(
                f"group attribute {operation.group_attr!r} not in view columns {view.columns}"
            )
        agg_attr = operation.agg_attr if operation.agg_attr in view else operation.group_attr
        try:
            return view.groupby_agg(operation.group_attr, operation.agg_func, agg_attr)
        except DataFrameError as exc:
            raise ExecutionError(str(exc)) from exc

    def can_execute(self, view: DataTable, operation: Operation) -> bool:
        """True when :meth:`execute` would succeed (used to mask invalid actions)."""
        try:
            self.execute(view, operation)
        except ExecutionError:
            return False
        return True
