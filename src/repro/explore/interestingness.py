"""Interestingness measures for individual query operations.

Following ATENA (and Section 5.1 of the LINX paper), the generic exploration
reward scores each query by an interestingness measure:

* **filter operations** — the Kullback–Leibler divergence between the value
  distribution of each column before and after the filter, averaged over
  columns: a filter that reveals a subset with markedly different
  characteristics scores high;
* **group-and-aggregate operations** — a *conciseness* measure [28]: compact
  result sets whose aggregate values are informative (neither a single group
  nor an explosion of near-unique groups) score high.

All scores are normalised to ``[0, 1]``.  Numeric histograms and entropies
are computed on the columns' numpy buffers (``np.bincount`` / vectorised
logs); categorical distributions reuse the columns' memoised
``value_counts``.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable

#: Smoothing constant for empirical distributions (avoids log(0)).
_SMOOTHING = 1e-9

#: Numeric columns are discretised into this many equi-width bins.
_NUMERIC_BINS = 10


def _numeric_values(column: Column) -> np.ndarray:
    """The column's non-null values as a float64 array (object-backed safe)."""
    data, mask = column.buffers()
    if data.dtype == object:
        return np.asarray(
            [float(v) for v in column.values if v is not None], dtype=np.float64
        )
    return data[~mask].astype(np.float64)


def _numeric_histogram(column: Column, lo: float, hi: float) -> np.ndarray:
    """Equi-width bin counts of the column's non-null values (length ``_NUMERIC_BINS``)."""
    values = _numeric_values(column)
    if values.size == 0:
        return np.zeros(_NUMERIC_BINS, dtype=np.int64)
    width = (hi - lo) or 1.0
    buckets = ((values - lo) / width * _NUMERIC_BINS).astype(np.int64)
    np.clip(buckets, 0, _NUMERIC_BINS - 1, out=buckets)
    return np.bincount(buckets, minlength=_NUMERIC_BINS)


def _categorical_histogram(column: Column) -> dict[object, int]:
    return column.value_counts()


def _normalise(counts: Mapping[object, int], support: list[object]) -> np.ndarray:
    # One dict pass instead of two; the raw counts are integers, so the
    # vectorised sum is exact and the result is bitwise identical to the
    # old per-key Python loop.
    raw = np.array([counts.get(key, 0) for key in support], dtype=np.float64)
    total = raw.sum() + _SMOOTHING * len(support)
    return (raw + _SMOOTHING) / total


def _reference_interest(column: Column) -> dict:
    """The per-column memo dict behind :func:`column_kl`'s reference side.

    The *before* (pre-filter) column of a KL comparison is scored against
    many different filtered views, so its support ordering, smoothed
    distribution, and numeric range are cached on the column itself (columns
    are immutable; this follows the lazy ``_memo_*`` slot convention).
    """
    try:
        return column._memo_interest
    except AttributeError:
        memo: dict = {}
        column._memo_interest = memo
        return memo


def _normalise_array(counts: np.ndarray) -> np.ndarray:
    total = counts.sum() + _SMOOTHING * len(counts)
    return (counts + _SMOOTHING) / total


def kl_divergence(p, q) -> float:
    """``KL(p || q)`` in nats for two discrete distributions over the same support."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must share the same support")
    positive = p > 0
    if not positive.any():
        return 0.0
    ps = p[positive]
    qs = np.maximum(q[positive], _SMOOTHING)
    return float(np.sum(ps * np.log(ps / qs)))


def column_kl(before: Column, after: Column) -> float:
    """KL divergence of one column's distribution after filtering vs before."""
    if len(after) == 0 or len(before) == 0:
        return 0.0
    memo = _reference_interest(before)
    if before.is_numeric:
        reference = memo.get("numeric")
        if reference is None:
            lo = float(before.min()) if before.min() is not None else 0.0
            hi = float(before.max()) if before.max() is not None else 1.0
            reference = memo["numeric"] = (
                lo,
                hi,
                _normalise_array(_numeric_histogram(before, lo, hi)),
            )
        lo, hi, q = reference
        p = _normalise_array(_numeric_histogram(after, lo, hi))
        return kl_divergence(p, q)
    reference = memo.get("categorical")
    if reference is None:
        counts_before = _categorical_histogram(before)
        support = list(counts_before)
        slots = {key: position for position, key in enumerate(support)}
        # Map of dictionary-code -> support slot (-1 when the code's value
        # does not occur in *before*), for the vectorised code path below.
        try:
            decoded = before._memo_code_values
        except AttributeError:
            code_slots = None
            decoded = None
        else:
            code_slots = np.array(
                [slots.get(value, -1) for value in decoded], dtype=np.int64
            )
        reference = memo["categorical"] = (
            slots,
            _normalise(counts_before, support),
            decoded,
            code_slots,
        )
    slots, q, decoded, code_slots = reference
    if not slots:
        return 0.0
    raw = np.zeros(len(slots), dtype=np.float64)
    after_codes = getattr(after, "_memo_codes", None)
    if (
        after_codes is not None
        and code_slots is not None
        and after._memo_code_values is decoded
    ):
        # Both columns share the same dictionary encoding: the filtered
        # counts are an integer bincount scattered through the code->slot
        # map, with no value dictionaries touched at all.
        valid = after_codes[after_codes >= 0]
        counts_by_code = np.bincount(valid, minlength=len(decoded))
        present = code_slots >= 0
        raw[code_slots[present]] = counts_by_code[present]
    else:
        counts_after = _categorical_histogram(after)
        for key, count in counts_after.items():
            position = slots.get(key)
            if position is not None:
                raw[position] = count
    # Integer counts make the vectorised total exact, so p is bitwise
    # identical to _normalise's.
    total = raw.sum() + _SMOOTHING * len(slots)
    p = (raw + _SMOOTHING) / total
    return kl_divergence(p, q)


def filter_interestingness(before: DataTable, after: DataTable) -> float:
    """Average column-wise KL divergence, squashed to [0, 1].

    Degenerate filters (empty results or no change at all) score zero, which
    discourages the agent from filtering everything away.
    """
    if len(after) == 0 or len(before) == 0:
        return 0.0
    if len(after) == len(before):
        return 0.0
    shared = [c for c in after.columns if c in before.columns]
    if not shared:
        return 0.0
    divergences = [column_kl(before.column(c), after.column(c)) for c in shared]
    mean_kl = sum(divergences) / len(divergences)
    return 1.0 - math.exp(-mean_kl)


def conciseness(result: DataTable) -> float:
    """Conciseness of a group-and-aggregate result, in [0, 1].

    Based on the interestingness survey [28]: a grouped view is useful when
    it has a handful of groups (2-15) and the aggregate column shows real
    variation across them.  One-group results and near-unique groupings both
    score low; variation is measured by the normalised entropy of the
    aggregate values' shares.
    """
    n_groups = len(result)
    if n_groups <= 1:
        return 0.0
    # Size component: peak around 2-15 groups, decaying beyond.
    if n_groups <= 15:
        size_score = 1.0
    else:
        size_score = max(0.0, 1.0 - (n_groups - 15) / 50.0)
    # Variation component over the aggregate (last) column.
    agg_column = result.column(result.columns[-1])
    if not agg_column.is_numeric:
        return 0.5 * size_score
    values = _numeric_values(agg_column)
    values = values[values >= 0]
    total = float(values.sum())
    if total <= 0 or values.size <= 1:
        return 0.3 * size_score
    shares = values[values > 0] / total
    entropy = float(-np.sum(shares * np.log(shares)))
    max_entropy = math.log(values.size)
    balance = entropy / max_entropy if max_entropy > 0 else 0.0
    # Neither perfectly uniform (balance 1.0, nothing stands out) nor fully
    # concentrated (balance 0.0, a single dominant group) is ideal.
    variation_score = 1.0 - abs(balance - 0.6) / 0.6
    variation_score = max(0.0, min(1.0, variation_score))
    return size_score * (0.4 + 0.6 * variation_score)


def group_interestingness(result: DataTable) -> float:
    """Interestingness of a group-and-aggregate operation (alias of conciseness)."""
    return conciseness(result)


def operation_interestingness(
    kind: str, parent_view: DataTable, result_view: DataTable
) -> float:
    """Dispatch on operation kind: KL for filters, conciseness for group-bys."""
    if kind == "F":
        return filter_interestingness(parent_view, result_view)
    if kind == "G":
        return group_interestingness(result_view)
    return 0.0
