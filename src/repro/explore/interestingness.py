"""Interestingness measures for individual query operations.

Following ATENA (and Section 5.1 of the LINX paper), the generic exploration
reward scores each query by an interestingness measure:

* **filter operations** — the Kullback–Leibler divergence between the value
  distribution of each column before and after the filter, averaged over
  columns: a filter that reveals a subset with markedly different
  characteristics scores high;
* **group-and-aggregate operations** — a *conciseness* measure [28]: compact
  result sets whose aggregate values are informative (neither a single group
  nor an explosion of near-unique groups) score high.

All scores are normalised to ``[0, 1]``.  Numeric histograms and entropies
are computed on the columns' numpy buffers (``np.bincount`` / vectorised
logs); categorical distributions reuse the columns' memoised
``value_counts``.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable

#: Smoothing constant for empirical distributions (avoids log(0)).
_SMOOTHING = 1e-9

#: Numeric columns are discretised into this many equi-width bins.
_NUMERIC_BINS = 10


def _numeric_values(column: Column) -> np.ndarray:
    """The column's non-null values as a float64 array (object-backed safe)."""
    data, mask = column.buffers()
    if data.dtype == object:
        return np.asarray(
            [float(v) for v in column.values if v is not None], dtype=np.float64
        )
    return data[~mask].astype(np.float64)


def _numeric_histogram(column: Column, lo: float, hi: float) -> np.ndarray:
    """Equi-width bin counts of the column's non-null values (length ``_NUMERIC_BINS``)."""
    values = _numeric_values(column)
    if values.size == 0:
        return np.zeros(_NUMERIC_BINS, dtype=np.int64)
    width = (hi - lo) or 1.0
    buckets = ((values - lo) / width * _NUMERIC_BINS).astype(np.int64)
    np.clip(buckets, 0, _NUMERIC_BINS - 1, out=buckets)
    return np.bincount(buckets, minlength=_NUMERIC_BINS)


def _categorical_histogram(column: Column) -> dict[object, int]:
    return column.value_counts()


def _normalise(counts: Mapping[object, int], support: list[object]) -> list[float]:
    total = sum(counts.get(key, 0) for key in support) + _SMOOTHING * len(support)
    return [(counts.get(key, 0) + _SMOOTHING) / total for key in support]


def _normalise_array(counts: np.ndarray) -> np.ndarray:
    total = counts.sum() + _SMOOTHING * len(counts)
    return (counts + _SMOOTHING) / total


def kl_divergence(p, q) -> float:
    """``KL(p || q)`` in nats for two discrete distributions over the same support."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must share the same support")
    positive = p > 0
    if not positive.any():
        return 0.0
    ps = p[positive]
    qs = np.maximum(q[positive], _SMOOTHING)
    return float(np.sum(ps * np.log(ps / qs)))


def column_kl(before: Column, after: Column) -> float:
    """KL divergence of one column's distribution after filtering vs before."""
    if len(after) == 0 or len(before) == 0:
        return 0.0
    if before.is_numeric:
        lo = float(before.min()) if before.min() is not None else 0.0
        hi = float(before.max()) if before.max() is not None else 1.0
        p = _normalise_array(_numeric_histogram(after, lo, hi))
        q = _normalise_array(_numeric_histogram(before, lo, hi))
        return kl_divergence(p, q)
    counts_before = _categorical_histogram(before)
    counts_after = _categorical_histogram(after)
    support = list(counts_before)
    if not support:
        return 0.0
    p = _normalise(counts_after, support)
    q = _normalise(counts_before, support)
    return kl_divergence(p, q)


def filter_interestingness(before: DataTable, after: DataTable) -> float:
    """Average column-wise KL divergence, squashed to [0, 1].

    Degenerate filters (empty results or no change at all) score zero, which
    discourages the agent from filtering everything away.
    """
    if len(after) == 0 or len(before) == 0:
        return 0.0
    if len(after) == len(before):
        return 0.0
    shared = [c for c in after.columns if c in before.columns]
    if not shared:
        return 0.0
    divergences = [column_kl(before.column(c), after.column(c)) for c in shared]
    mean_kl = sum(divergences) / len(divergences)
    return 1.0 - math.exp(-mean_kl)


def conciseness(result: DataTable) -> float:
    """Conciseness of a group-and-aggregate result, in [0, 1].

    Based on the interestingness survey [28]: a grouped view is useful when
    it has a handful of groups (2-15) and the aggregate column shows real
    variation across them.  One-group results and near-unique groupings both
    score low; variation is measured by the normalised entropy of the
    aggregate values' shares.
    """
    n_groups = len(result)
    if n_groups <= 1:
        return 0.0
    # Size component: peak around 2-15 groups, decaying beyond.
    if n_groups <= 15:
        size_score = 1.0
    else:
        size_score = max(0.0, 1.0 - (n_groups - 15) / 50.0)
    # Variation component over the aggregate (last) column.
    agg_column = result.column(result.columns[-1])
    if not agg_column.is_numeric:
        return 0.5 * size_score
    values = _numeric_values(agg_column)
    values = values[values >= 0]
    total = float(values.sum())
    if total <= 0 or values.size <= 1:
        return 0.3 * size_score
    shares = values[values > 0] / total
    entropy = float(-np.sum(shares * np.log(shares)))
    max_entropy = math.log(values.size)
    balance = entropy / max_entropy if max_entropy > 0 else 0.0
    # Neither perfectly uniform (balance 1.0, nothing stands out) nor fully
    # concentrated (balance 0.0, a single dominant group) is ideal.
    variation_score = 1.0 - abs(balance - 0.6) / 0.6
    variation_score = max(0.0, min(1.0, variation_score))
    return size_score * (0.4 + 0.6 * variation_score)


def group_interestingness(result: DataTable) -> float:
    """Interestingness of a group-and-aggregate operation (alias of conciseness)."""
    return conciseness(result)


def operation_interestingness(
    kind: str, parent_view: DataTable, result_view: DataTable
) -> float:
    """Dispatch on operation kind: KL for filters, conciseness for group-bys."""
    if kind == "F":
        return filter_interestingness(parent_view, result_view)
    if kind == "G":
        return group_interestingness(result_view)
    return 0.0
