"""The generic (goal-agnostic) exploration reward ``R_gen``.

Following ATENA [6] and Section 5.1 of the LINX paper, the generic reward of
a step is a weighted sum of the interestingness of the session's queries and
the diversity of the newest query with respect to all previous queries::

    R_gen(S_i, a) = mu * sum_{j<=i} Interestingness(q_j) + lambda * Diversity(S_i)

Interestingness uses KL divergence for filters and conciseness for group-bys;
diversity is the minimal result distance to any previous query.

Because the step reward re-scores *every* node of the growing session on
every step — and training revisits the same views across thousands of
episodes — per-node interestingness is memoised by the content fingerprints
of the parent and result views (see :mod:`repro.explore.cache`).  Views
served from the execution cache share fingerprints, so repeated episodes
score in O(1) per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diversity import result_distance
from .interestingness import operation_interestingness
from .operations import is_query_operation
from .session import ExplorationSession, SessionNode


@dataclass(frozen=True)
class GenericRewardConfig:
    """Weights of the generic exploration reward."""

    interestingness_weight: float = 1.0  # mu
    diversity_weight: float = 0.5  # lambda
    invalid_action_penalty: float = -1.0
    empty_result_penalty: float = -0.5
    back_action_reward: float = 0.0


#: Sentinel distinguishing "absent" from a memoised 0.0 score.
_MISSING = object()

#: Interestingness memo bound; the memo is cleared wholesale when exceeded.
_INTEREST_MEMO_MAX = 65536

#: Pairwise result-distance memo bound (cleared wholesale when exceeded).
_DISTANCE_MEMO_MAX = 65536


class GenericExplorationReward:
    """Computes the ATENA-style generic exploration reward for session steps.

    Both score components are memoised by content fingerprints — per-node
    interestingness and the pairwise result distances behind the diversity
    term — because training revisits the same (execution-cache-shared)
    views thousands of times.  The scorer itself is stateless apart from
    these pure memos, so one instance can be shared across the sibling
    environments of a batched rollout wave.
    """

    def __init__(self, config: GenericRewardConfig | None = None):
        self.config = config or GenericRewardConfig()
        self._interest_memo: dict[tuple, float] = {}
        self._distance_memo: dict[tuple, float] = {}

    def node_interestingness(self, node: SessionNode) -> float:
        """Interestingness of a single executed query node (memoised).

        The score is a pure function of the operation kind and the parent and
        result view contents, so it is memoised by their fingerprints.
        """
        if node.is_root or node.parent is None:
            return 0.0
        key = (
            node.operation.kind,
            node.parent.view.fingerprint(),
            node.view.fingerprint(),
        )
        value = self._interest_memo.get(key, _MISSING)
        if value is _MISSING:
            value = operation_interestingness(
                node.operation.kind, node.parent.view, node.view
            )
            if len(self._interest_memo) >= _INTEREST_MEMO_MAX:
                self._interest_memo.clear()
            self._interest_memo[key] = value
        return value

    def _view_distance(self, a, b) -> float:
        """Memoised :func:`result_distance` (symmetric, fingerprint-keyed)."""
        fa, fb = a.fingerprint(), b.fingerprint()
        key = (fa, fb) if fa <= fb else (fb, fa)
        value = self._distance_memo.get(key, _MISSING)
        if value is _MISSING:
            value = result_distance(a, b)
            if len(self._distance_memo) >= _DISTANCE_MEMO_MAX:
                self._distance_memo.clear()
            self._distance_memo[key] = value
        return value

    def _diversity(self, new_view, previous_views) -> float:
        """The session-diversity term with memoised pairwise distances."""
        if not previous_views:
            return 1.0
        return min(self._view_distance(new_view, view) for view in previous_views)

    def step_reward(self, session: ExplorationSession, node: SessionNode) -> float:
        """Reward for the step that produced *node* (the newest query)."""
        if not is_query_operation(node.operation):
            return self.config.back_action_reward
        if len(node.view) == 0:
            return self.config.empty_result_penalty
        cumulative_interest = sum(
            self.node_interestingness(existing) for existing in session.query_nodes()
        )
        previous_views = [n.view for n in session.query_nodes() if n is not node]
        diversity = self._diversity(node.view, previous_views)
        return (
            self.config.interestingness_weight * cumulative_interest / max(1, session.num_queries())
            + self.config.diversity_weight * diversity
        )

    def session_score(self, session: ExplorationSession) -> float:
        """Utility score ``U(T_D)`` of a full session: mean interestingness + mean diversity."""
        nodes = session.query_nodes()
        if not nodes:
            return 0.0
        interest = sum(self.node_interestingness(node) for node in nodes) / len(nodes)
        diversity_terms = []
        seen_views = []
        for node in nodes:
            diversity_terms.append(self._diversity(node.view, seen_views))
            seen_views.append(node.view)
        diversity = sum(diversity_terms) / len(diversity_terms)
        return (
            self.config.interestingness_weight * interest
            + self.config.diversity_weight * diversity
        )
