"""Exploration sessions as trees of executed query operations.

An exploration session over a dataset ``D`` is a tree ``T_D`` (Section 3):
the root node is the raw dataset, every other node is a query operation
applied to its parent's result, and the execution order is the pre-order
traversal of the tree.  Each node stores both the operation and the
materialised result view so rewards and notebooks can inspect them without
re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.dataframe.table import DataTable
from repro.plan.nodes import LogicalPlan
from repro.tregex.tree import TreeNode

from .operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
    is_query_operation,
)


@dataclass
class SessionNode:
    """A single node of an exploration session: an operation and its result view."""

    operation: Operation
    view: DataTable
    parent: Optional["SessionNode"] = None
    children: list["SessionNode"] = field(default_factory=list)
    step_index: int = 0
    #: Canonical logical plan producing this node's view from the base
    #: dataset, set when the node was executed through the plan path.
    #: ``None`` for eagerly executed nodes; derive one on demand with
    #: :func:`repro.plan.builder.plan_for_node`.
    plan: Optional[LogicalPlan] = None

    def signature(self) -> tuple[str, ...]:
        """Positional signature used by LDX verification."""
        return self.operation.signature()

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self) -> list["SessionNode"]:
        result = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def preorder(self) -> Iterator["SessionNode"]:
        yield self
        for child in self.children:
            yield from child.preorder()

    def __repr__(self) -> str:
        return f"SessionNode(op={self.operation.describe()!r}, rows={len(self.view)})"


class ExplorationSession:
    """A growing exploration session over a dataset.

    The session tracks the *current node* (the view the next operation will
    be applied to) so the RL environment can implement filter, group-by and
    back actions.  Query operations append children; the back operation moves
    the cursor up the tree without adding a node.
    """

    def __init__(self, dataset: DataTable, dataset_name: str | None = None):
        name = dataset_name or dataset.name
        self.dataset = dataset
        self.root = SessionNode(
            operation=RootOperation(dataset_name=name),
            view=dataset,
            plan=LogicalPlan(()),
        )
        self.current = self.root
        self._steps = 0
        self._operations: list[Operation] = []

    # -- growth ----------------------------------------------------------------------
    def add_operation(
        self,
        operation: Operation,
        view: DataTable,
        plan: LogicalPlan | None = None,
    ) -> SessionNode:
        """Attach *operation* (already executed into *view*) under the current node.

        *plan* is the canonical logical plan of the new view when the
        operation was executed through the plan path; eager callers omit it.
        """
        if not is_query_operation(operation):
            raise ValueError(f"only query operations create nodes, got {operation.kind}")
        self._steps += 1
        node = SessionNode(
            operation=operation,
            view=view,
            parent=self.current,
            step_index=self._steps,
            plan=plan,
        )
        self.current.children.append(node)
        self.current = node
        self._operations.append(operation)
        return node

    def go_back(self, steps: int = 1) -> SessionNode:
        """Move the cursor *steps* levels up (clamped at the root); counts as a step."""
        self._steps += 1
        node = self.current
        for _ in range(max(1, steps)):
            if node.parent is None:
                break
            node = node.parent
        self.current = node
        self._operations.append(BackOperation(steps=steps))
        return node

    def note_invalid_step(self) -> None:
        """Record an agent step whose operation was invalid.

        Invalid actions consume a step but add no node and no operation;
        this keeps :attr:`steps_taken` consistent without callers reaching
        into the session's private counter.
        """
        self._steps += 1

    # -- inspection -------------------------------------------------------------------
    @property
    def steps_taken(self) -> int:
        """Total number of agent steps, including back operations."""
        return self._steps

    @property
    def operations(self) -> list[Operation]:
        """Every action taken, in order (including back operations)."""
        return list(self._operations)

    def query_nodes(self) -> list[SessionNode]:
        """All non-root nodes in execution (pre-order) order."""
        return [node for node in self.root.preorder() if not node.is_root]

    def num_queries(self) -> int:
        return len(self.query_nodes())

    def views(self) -> list[DataTable]:
        """Result views of every query node, in execution order."""
        return [node.view for node in self.query_nodes()]

    # -- conversion -------------------------------------------------------------------
    def to_tree(self) -> TreeNode:
        """Convert to a :class:`~repro.tregex.tree.TreeNode` labelled with operations.

        This is the representation consumed by the LDX verification engine.
        """
        def convert(node: SessionNode) -> TreeNode:
            tree_node = TreeNode(node.operation)
            for child in node.children:
                tree_node.add_child(convert(child))
            return tree_node

        return convert(self.root)

    def describe(self) -> str:
        """Indented text outline of the session (operation + result size per node)."""
        lines: list[str] = []

        def visit(node: SessionNode, level: int) -> None:
            lines.append(f"{'  ' * level}{node.operation.describe()} [{len(node.view)} rows]")
            for child in node.children:
                visit(child, level + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExplorationSession(queries={self.num_queries()}, steps={self.steps_taken})"


def session_from_operations(
    dataset: DataTable,
    operations: list[Operation],
    executor: "object" = None,
    cache: "object" = None,
    use_plans: bool = True,
) -> ExplorationSession:
    """Replay a flat list of operations (including back ops) into a session.

    The *executor* must provide ``execute(view, operation) -> DataTable``;
    imported lazily to avoid a circular import with :mod:`repro.explore.executor`.
    When *cache* (an :class:`~repro.explore.cache.ExecutionCache`) is given
    and no executor is supplied, the replay reuses memoised results, which
    makes repeated replays of overlapping operation lists nearly free.

    By default the replay goes through the executor's plan path
    (``execute_step``) so cache keys are canonical-plan based: replays of
    *equivalent* operation lists (commuted filters, undone steps) share
    cache entries, not just syntactically identical ones.  Pass
    ``use_plans=False`` — or an executor without ``execute_step`` — for the
    eager per-``(view, operation)`` path.
    """
    if executor is None:
        from .executor import QueryExecutor

        executor = QueryExecutor(cache=cache)
    use_plans = use_plans and hasattr(executor, "execute_step")
    session = ExplorationSession(dataset)
    for operation in operations:
        if isinstance(operation, BackOperation):
            session.go_back(operation.steps)
            continue
        current = session.current
        if use_plans:
            base_plan = current.plan
            if base_plan is None:
                from repro.plan.builder import plan_for_node

                base_plan = plan_for_node(current)
            view, new_plan = executor.execute_step(
                dataset, base_plan, current.view, operation
            )
            session.add_operation(operation, view, plan=new_plan)
        else:
            view = executor.execute(current.view, operation)
            session.add_operation(operation, view)
    return session


__all__ = [
    "ExplorationSession",
    "SessionNode",
    "session_from_operations",
    "FilterOperation",
    "GroupAggOperation",
    "BackOperation",
]
