"""Memoized query execution: an LRU cache of ``(view, operation)`` results.

The exploration agents take thousands of MDP steps per training run, and the
factored action space is small enough that the same parametric operation is
applied to the same view over and over across episodes.  Because
:class:`~repro.dataframe.table.DataTable` views are immutable, the result of
executing an operation on a view is a pure function of

* the view's content fingerprint (:meth:`DataTable.fingerprint` — name, row
  count, schema and a per-column content digest, computed once per
  instance), and
* the operation's positional :meth:`Operation.signature`.

:class:`ExecutionCache` memoises those results in an LRU map.  A cache hit
returns the *same* immutable ``DataTable`` object that the original execution
produced, so repeated episodes share views (and all the per-view memoised
statistics that hang off them) instead of re-scanning the data.

Two key families share the one LRU: per-operation keys ``(view
fingerprint, operation signature)`` — the eager reference path — and
*semantic* plan keys ``(base fingerprint, ("PLAN", canonical plan
fingerprint))`` written by the query planner
(:meth:`~repro.explore.executor.QueryExecutor.execute_plan`).  Because the
plan component is a canonical-form digest, pipelines that differ only in
filter ordering, duplicated predicates or undone (back) steps collapse to
one entry; ``stats.plan_hits`` counts the lookups served that way.

Successful executions are cached as result views; runtime *failures* are
cached too, in a separate bounded negative map (``(view, operation)`` ->
error message).  Validity testing is mostly static —
:meth:`QueryExecutor.can_execute` is a schema-only check and
:meth:`ActionSpace.valid_mask` batches it per head for policy-side action
masking — but operations that pass the static check and still fail at
runtime (e.g. an ``AggregationError`` over mixed-type values) would
otherwise re-execute from scratch on every repeat; the negative cache
short-circuits them.

The base cache is deliberately unsynchronised (the trainers are
single-threaded); :class:`ThreadSafeExecutionCache` adds a lock for callers —
like :class:`~repro.engine.core.LinxEngine` — that share one cache across a
thread pool.

Bounding is two-dimensional: ``max_entries`` caps the *number* of cached
result views, and the optional ``max_cached_rows`` caps the approximate
*volume* (total rows across all cached views), so thousands of near-full
filtered copies of a large dataset cannot accumulate before count-based
eviction kicks in.

For persistence across processes and restarts see
:mod:`repro.explore.diskcache`, which layers this memory LRU over a
schema-versioned sqlite tier (read-through, batched write-behind).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dataframe.table import DataTable

from .operations import Operation

#: Default maximum number of cached result views.
DEFAULT_MAX_ENTRIES = 4096

#: Default maximum number of cached failure outcomes.
DEFAULT_MAX_ERROR_ENTRIES = 1024

#: Cache key: (view fingerprint, operation signature *or* plan tag).
CacheKey = tuple[tuple, tuple[str, ...]]

#: First element of the second key component for plan-keyed entries.  The
#: tag cannot collide with operation signatures, whose first element is
#: always a single-letter kind code.
PLAN_KEY_TAG = "PLAN"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`ExecutionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Lookups answered from the negative (cached-failure) map.
    negative_hits: int = 0
    #: Hits served under a canonical-plan key (a subset of ``hits``).
    plan_hits: int = 0
    #: Fused multi-operation segments executed by the planner (each one
    #: replaces >= 2 eager materialisations with a single pass).
    fusion_count: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "negative_hits": self.negative_hits,
            "plan_hits": self.plan_hits,
            "fusion_count": self.fusion_count,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.negative_hits = 0
        self.plan_hits = 0
        self.fusion_count = 0


class ExecutionCache:
    """LRU cache mapping ``(view fingerprint, operation signature)`` -> result view.

    Parameters
    ----------
    max_entries:
        Upper bound on cached results; the least recently used entry is
        evicted when the bound is exceeded.  Must be positive.
    max_cached_rows:
        Optional upper bound on the approximate cached volume: the sum of
        ``len(view)`` over all cached result views.  When exceeded, least
        recently used entries are evicted until the budget is met again
        (the most recent entry is always kept, even if it alone exceeds
        the budget).  ``None`` (the default) disables volume bounding.
    max_error_entries:
        Upper bound on cached *failure* outcomes (runtime execution errors
        memoised by :meth:`put_error`); the least recently used failure is
        dropped when exceeded.  Failures are bounded separately from
        results because an error entry is just a message string.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
        max_error_entries: int = DEFAULT_MAX_ERROR_ENTRIES,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_cached_rows is not None and max_cached_rows < 1:
            raise ValueError("max_cached_rows must be positive when given")
        if max_error_entries < 1:
            raise ValueError("max_error_entries must be positive")
        self.max_entries = max_entries
        self.max_cached_rows = max_cached_rows
        self.max_error_entries = max_error_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, DataTable]" = OrderedDict()
        self._row_counts: dict[CacheKey, int] = {}
        self._cached_rows = 0
        self._errors: "OrderedDict[CacheKey, str]" = OrderedDict()

    @staticmethod
    def key_for(view: DataTable, operation: Operation) -> CacheKey:
        """The cache key of executing *operation* against *view*."""
        return (view.fingerprint(), operation.signature())

    @staticmethod
    def plan_key_for(base: DataTable, plan) -> CacheKey:
        """The semantic cache key of executing *plan* against *base*.

        *plan* is a canonical :class:`~repro.plan.nodes.LogicalPlan`
        (duck-typed on ``fingerprint()`` to keep this module free of a plan
        dependency).  Every operation ordering that canonicalizes to the
        same plan shares this key, across the memory and disk tiers alike.
        """
        return (base.fingerprint(), (PLAN_KEY_TAG, plan.fingerprint()))

    def _fetch(self, key: CacheKey) -> DataTable | None:
        """The raw (stat-free) lookup; tier layers override this."""
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
        return result

    def _put_key(self, key: CacheKey, result: DataTable) -> None:
        """The raw insert behind :meth:`put`; tier layers override this."""
        self._store(key, result)

    def get(self, view: DataTable, operation: Operation) -> DataTable | None:
        """The cached result view, or ``None`` (counts a hit or a miss)."""
        result = self._fetch(self.key_for(view, operation))
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, view: DataTable, operation: Operation, result: DataTable) -> None:
        """Store the result of executing *operation* on *view*."""
        self._put_key(self.key_for(view, operation), result)

    def get_plan(self, base: DataTable, plan) -> DataTable | None:
        """The view cached under ``(base, canonical plan)``, or ``None``.

        Counts into the shared hit/miss statistics like :meth:`get`, plus
        ``stats.plan_hits`` so plan-level sharing is observable on its own.
        """
        result = self._fetch(self.plan_key_for(base, plan))
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.plan_hits += 1
        return result

    def put_plan(self, base: DataTable, plan, result: DataTable) -> None:
        """Store the result of executing the canonical *plan* on *base*."""
        self._put_key(self.plan_key_for(base, plan), result)

    def _store(self, key: CacheKey, result: DataTable) -> None:
        """Insert *result* under *key*, evicting per the entry/row budgets.

        Split out of :meth:`put` so tier layers (the disk-backed cache)
        can promote deserialized entries into the memory LRU without
        re-deriving the key or re-queuing a write-behind.
        """
        rows = len(result)
        if key in self._row_counts:
            self._cached_rows -= self._row_counts[key]
        self._entries[key] = result
        self._entries.move_to_end(key)
        self._row_counts[key] = rows
        self._cached_rows += rows
        while len(self._entries) > self.max_entries or (
            self.max_cached_rows is not None
            and self._cached_rows > self.max_cached_rows
            and len(self._entries) > 1
        ):
            evicted_key, _ = self._entries.popitem(last=False)
            self._cached_rows -= self._row_counts.pop(evicted_key)
            self.stats.evictions += 1

    def get_error(self, view: DataTable, operation: Operation) -> str | None:
        """The memoised failure message for ``(view, operation)``, or ``None``.

        A hit counts towards ``stats.negative_hits``; a miss is silent (the
        caller is about to execute and will count the regular miss).
        """
        key = self.key_for(view, operation)
        message = self._errors.get(key)
        if message is None:
            return None
        self._errors.move_to_end(key)
        self.stats.negative_hits += 1
        return message

    def put_error(self, view: DataTable, operation: Operation, message: str) -> None:
        """Memoise a runtime execution failure for ``(view, operation)``."""
        key = self.key_for(view, operation)
        self._errors[key] = message
        self._errors.move_to_end(key)
        while len(self._errors) > self.max_error_entries:
            self._errors.popitem(last=False)

    @property
    def cached_rows(self) -> int:
        """Approximate cached volume: total rows across all cached views."""
        return self._cached_rows

    @property
    def negative_entries(self) -> int:
        """Number of memoised failure outcomes."""
        return len(self._errors)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (results and failures) and reset the statistics."""
        self._entries.clear()
        self._row_counts.clear()
        self._cached_rows = 0
        self._errors.clear()
        self.stats.reset()

    @property
    def plan_entries(self) -> int:
        """Number of memory-tier entries stored under canonical-plan keys."""
        return sum(
            1
            for key in self._entries
            if key[1] and key[1][0] == PLAN_KEY_TAG
        )

    def describe(self) -> dict[str, float | int | None]:
        """Hit/miss counters plus occupancy, for telemetry payloads."""
        summary: dict[str, float | int | None] = dict(self.stats.as_dict())
        summary["entries"] = len(self._entries)
        summary["plan_entries"] = self.plan_entries
        summary["cached_rows"] = self._cached_rows
        summary["negative_entries"] = len(self._errors)
        summary["max_entries"] = self.max_entries
        summary["max_cached_rows"] = self.max_cached_rows
        summary["max_error_entries"] = self.max_error_entries
        return summary

    def snapshot_counters(self) -> tuple[int, int, int, int, int]:
        """A ``(hits, misses, evictions, plan_hits, fusion_count)`` snapshot.

        Used by the engine for per-request deltas.
        """
        return (
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.plan_hits,
            self.stats.fusion_count,
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionCache(entries={len(self)}/{self.max_entries}, "
            f"rows={self._cached_rows}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )


class LockGuardedCacheOps:
    """Mixin wrapping the shared cache operations in ``self._lock``.

    List this mixin *before* a concrete cache class and create
    ``self._lock`` (a reentrant lock) in ``__init__``; every wrapper's
    ``super()`` call then reaches the unguarded implementation.  Keeping
    the wrapper set in one place means a new mutating cache operation only
    needs its lock-guard added here to cover every thread-safe variant
    (:class:`ThreadSafeExecutionCache` and
    :class:`repro.explore.diskcache.ThreadSafeTieredExecutionCache`).
    """

    _lock: threading.RLock

    def get(self, view: DataTable, operation: Operation) -> DataTable | None:
        with self._lock:
            return super().get(view, operation)

    def put(self, view: DataTable, operation: Operation, result: DataTable) -> None:
        with self._lock:
            super().put(view, operation, result)

    def get_plan(self, base: DataTable, plan) -> DataTable | None:
        with self._lock:
            return super().get_plan(base, plan)

    def put_plan(self, base: DataTable, plan, result: DataTable) -> None:
        with self._lock:
            super().put_plan(base, plan, result)

    def get_error(self, view: DataTable, operation: Operation) -> str | None:
        with self._lock:
            return super().get_error(view, operation)

    def put_error(self, view: DataTable, operation: Operation, message: str) -> None:
        with self._lock:
            super().put_error(view, operation, message)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return super().__contains__(key)

    def describe(self) -> dict[str, float | int | None]:
        with self._lock:
            return super().describe()

    def snapshot_counters(self) -> tuple[int, int, int, int, int]:
        """A consistent ``(hits, misses, evictions, plan_hits, fusion_count)`` snapshot."""
        with self._lock:
            return super().snapshot_counters()


class ThreadSafeExecutionCache(LockGuardedCacheOps, ExecutionCache):
    """An :class:`ExecutionCache` whose operations are guarded by a lock.

    Used when one cache is shared across a thread pool (e.g. by
    :meth:`repro.engine.core.LinxEngine.explore_many`).  Every public
    operation — lookup, insert, clear, length, telemetry — holds the same
    reentrant lock, so the LRU order, row accounting and statistics stay
    consistent under concurrent request execution.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
        max_error_entries: int = DEFAULT_MAX_ERROR_ENTRIES,
    ):
        super().__init__(
            max_entries=max_entries,
            max_cached_rows=max_cached_rows,
            max_error_entries=max_error_entries,
        )
        self._lock = threading.RLock()
