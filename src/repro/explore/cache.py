"""Memoized query execution: an LRU cache of ``(view, operation)`` results.

The exploration agents take thousands of MDP steps per training run, and the
factored action space is small enough that the same parametric operation is
applied to the same view over and over across episodes.  Because
:class:`~repro.dataframe.table.DataTable` views are immutable, the result of
executing an operation on a view is a pure function of

* the view's content fingerprint (:meth:`DataTable.fingerprint` — name, row
  count, schema and a per-column content digest, computed once per
  instance), and
* the operation's positional :meth:`Operation.signature`.

:class:`ExecutionCache` memoises those results in an LRU map.  A cache hit
returns the *same* immutable ``DataTable`` object that the original execution
produced, so repeated episodes share views (and all the per-view memoised
statistics that hang off them) instead of re-scanning the data.

Only successful executions are cached.  Validity testing does not need the
cache at all any more: :meth:`QueryExecutor.can_execute` is a static,
schema-only check and :meth:`ActionSpace.valid_mask` batches it per head for
policy-side action masking.

The cache is deliberately unsynchronised (the trainers are single-threaded);
wrap it if you share one across threads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.dataframe.table import DataTable

from .operations import Operation

#: Default maximum number of cached result views.
DEFAULT_MAX_ENTRIES = 4096

#: Cache key: (view fingerprint, operation signature).
CacheKey = tuple[tuple, tuple[str, ...]]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`ExecutionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ExecutionCache:
    """LRU cache mapping ``(view fingerprint, operation signature)`` -> result view.

    Parameters
    ----------
    max_entries:
        Upper bound on cached results; the least recently used entry is
        evicted when the bound is exceeded.  Must be positive.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, DataTable]" = OrderedDict()

    @staticmethod
    def key_for(view: DataTable, operation: Operation) -> CacheKey:
        """The cache key of executing *operation* against *view*."""
        return (view.fingerprint(), operation.signature())

    def get(self, view: DataTable, operation: Operation) -> DataTable | None:
        """The cached result view, or ``None`` (counts a hit or a miss)."""
        key = self.key_for(view, operation)
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def put(self, view: DataTable, operation: Operation, result: DataTable) -> None:
        """Store the result of executing *operation* on *view*."""
        key = self.key_for(view, operation)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.stats.reset()

    def __repr__(self) -> str:
        return (
            f"ExecutionCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )
