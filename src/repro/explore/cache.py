"""Memoized query execution: an LRU cache of ``(view, operation)`` results.

The exploration agents take thousands of MDP steps per training run, and the
factored action space is small enough that the same parametric operation is
applied to the same view over and over across episodes.  Because
:class:`~repro.dataframe.table.DataTable` views are immutable, the result of
executing an operation on a view is a pure function of

* the view's content fingerprint (:meth:`DataTable.fingerprint` — name, row
  count, schema and a per-column content digest, computed once per
  instance), and
* the operation's positional :meth:`Operation.signature`.

:class:`ExecutionCache` memoises those results in an LRU map.  A cache hit
returns the *same* immutable ``DataTable`` object that the original execution
produced, so repeated episodes share views (and all the per-view memoised
statistics that hang off them) instead of re-scanning the data.

Only successful executions are cached.  Validity testing does not need the
cache at all any more: :meth:`QueryExecutor.can_execute` is a static,
schema-only check and :meth:`ActionSpace.valid_mask` batches it per head for
policy-side action masking.

The base cache is deliberately unsynchronised (the trainers are
single-threaded); :class:`ThreadSafeExecutionCache` adds a lock for callers —
like :class:`~repro.engine.core.LinxEngine` — that share one cache across a
thread pool.

Bounding is two-dimensional: ``max_entries`` caps the *number* of cached
result views, and the optional ``max_cached_rows`` caps the approximate
*volume* (total rows across all cached views), so thousands of near-full
filtered copies of a large dataset cannot accumulate before count-based
eviction kicks in.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dataframe.table import DataTable

from .operations import Operation

#: Default maximum number of cached result views.
DEFAULT_MAX_ENTRIES = 4096

#: Cache key: (view fingerprint, operation signature).
CacheKey = tuple[tuple, tuple[str, ...]]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of an :class:`ExecutionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class ExecutionCache:
    """LRU cache mapping ``(view fingerprint, operation signature)`` -> result view.

    Parameters
    ----------
    max_entries:
        Upper bound on cached results; the least recently used entry is
        evicted when the bound is exceeded.  Must be positive.
    max_cached_rows:
        Optional upper bound on the approximate cached volume: the sum of
        ``len(view)`` over all cached result views.  When exceeded, least
        recently used entries are evicted until the budget is met again
        (the most recent entry is always kept, even if it alone exceeds
        the budget).  ``None`` (the default) disables volume bounding.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_cached_rows is not None and max_cached_rows < 1:
            raise ValueError("max_cached_rows must be positive when given")
        self.max_entries = max_entries
        self.max_cached_rows = max_cached_rows
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, DataTable]" = OrderedDict()
        self._row_counts: dict[CacheKey, int] = {}
        self._cached_rows = 0

    @staticmethod
    def key_for(view: DataTable, operation: Operation) -> CacheKey:
        """The cache key of executing *operation* against *view*."""
        return (view.fingerprint(), operation.signature())

    def get(self, view: DataTable, operation: Operation) -> DataTable | None:
        """The cached result view, or ``None`` (counts a hit or a miss)."""
        key = self.key_for(view, operation)
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def put(self, view: DataTable, operation: Operation, result: DataTable) -> None:
        """Store the result of executing *operation* on *view*."""
        key = self.key_for(view, operation)
        rows = len(result)
        if key in self._row_counts:
            self._cached_rows -= self._row_counts[key]
        self._entries[key] = result
        self._entries.move_to_end(key)
        self._row_counts[key] = rows
        self._cached_rows += rows
        while len(self._entries) > self.max_entries or (
            self.max_cached_rows is not None
            and self._cached_rows > self.max_cached_rows
            and len(self._entries) > 1
        ):
            evicted_key, _ = self._entries.popitem(last=False)
            self._cached_rows -= self._row_counts.pop(evicted_key)
            self.stats.evictions += 1

    @property
    def cached_rows(self) -> int:
        """Approximate cached volume: total rows across all cached views."""
        return self._cached_rows

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self._row_counts.clear()
        self._cached_rows = 0
        self.stats.reset()

    def describe(self) -> dict[str, float | int | None]:
        """Hit/miss counters plus occupancy, for telemetry payloads."""
        summary: dict[str, float | int | None] = dict(self.stats.as_dict())
        summary["entries"] = len(self._entries)
        summary["cached_rows"] = self._cached_rows
        summary["max_entries"] = self.max_entries
        summary["max_cached_rows"] = self.max_cached_rows
        return summary

    def snapshot_counters(self) -> tuple[int, int, int]:
        """A ``(hits, misses, evictions)`` snapshot (used for per-request deltas)."""
        return (self.stats.hits, self.stats.misses, self.stats.evictions)

    def __repr__(self) -> str:
        return (
            f"ExecutionCache(entries={len(self)}/{self.max_entries}, "
            f"rows={self._cached_rows}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )


class ThreadSafeExecutionCache(ExecutionCache):
    """An :class:`ExecutionCache` whose operations are guarded by a lock.

    Used when one cache is shared across a thread pool (e.g. by
    :meth:`repro.engine.core.LinxEngine.explore_many`).  Every public
    operation — lookup, insert, clear, length, telemetry — holds the same
    reentrant lock, so the LRU order, row accounting and statistics stay
    consistent under concurrent request execution.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_cached_rows: int | None = None,
    ):
        super().__init__(max_entries=max_entries, max_cached_rows=max_cached_rows)
        self._lock = threading.RLock()

    def get(self, view: DataTable, operation: Operation) -> DataTable | None:
        with self._lock:
            return super().get(view, operation)

    def put(self, view: DataTable, operation: Operation, result: DataTable) -> None:
        with self._lock:
            super().put(view, operation, result)

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return super().__contains__(key)

    def describe(self) -> dict[str, float | int | None]:
        with self._lock:
            return super().describe()

    def snapshot_counters(self) -> tuple[int, int, int]:
        """A consistent ``(hits, misses, evictions)`` snapshot."""
        with self._lock:
            return (self.stats.hits, self.stats.misses, self.stats.evictions)
