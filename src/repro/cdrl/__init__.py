"""Constrained deep reinforcement learning engine for modular ADE (LINX Step 2)."""

from .ablation import (
    VARIANT_NAMES,
    AblationCase,
    VariantOutcome,
    run_ablation,
    variant_config,
)
from .agent import CdrlConfig, CdrlResult, LinxCdrlAgent, generate_session
from .compliance import (
    ComplianceRewardConfig,
    ComplianceRewardStrategy,
    end_of_session_reward,
    immediate_reward,
)
from .snippets import Snippet, SnippetLibrary, derive_snippets, snippets_from_pattern
from .spec_network import (
    SNIPPET_ACTION_INDEX,
    SNIPPET_HEAD,
    SpecificationAwarePolicy,
    build_basic_policy,
)

__all__ = [
    "AblationCase",
    "CdrlConfig",
    "CdrlResult",
    "ComplianceRewardConfig",
    "ComplianceRewardStrategy",
    "LinxCdrlAgent",
    "SNIPPET_ACTION_INDEX",
    "SNIPPET_HEAD",
    "Snippet",
    "SnippetLibrary",
    "SpecificationAwarePolicy",
    "VARIANT_NAMES",
    "VariantOutcome",
    "build_basic_policy",
    "derive_snippets",
    "end_of_session_reward",
    "generate_session",
    "immediate_reward",
    "run_ablation",
    "snippets_from_pattern",
    "variant_config",
]
