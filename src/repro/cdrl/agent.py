"""The LINX CDRL agent: specification-constrained session generation.

Given a dataset and LDX specifications, the agent trains a policy that
maximises the bi-objective reward (generic exploration reward + compliance
reward) and returns the best compliant exploration session found.  This is
Step 2 of the LINX workflow (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dataframe.table import DataTable
from repro.explore.action_space import ActionSpace
from repro.explore.cache import ExecutionCache
from repro.explore.environment import ExplorationEnvironment
from repro.explore.reward import GenericExplorationReward
from repro.explore.rollouts import VectorEnvironment
from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery
from repro.ldx.parser import parse_ldx
from repro.ldx.verifier import verify, verify_structure
from repro.rl.trainer import PolicyGradientTrainer, TrainerConfig, TrainingHistory

from .compliance import ComplianceRewardConfig, ComplianceRewardStrategy
from .spec_network import SpecificationAwarePolicy, build_basic_policy


@dataclass(frozen=True)
class CdrlConfig:
    """Configuration of the LINX CDRL engine.

    The ablation flags mirror Table 4: ``graded_eos_reward`` switches between
    the naive binary end-of-session signal and the graded scheme;
    ``immediate_reward`` toggles the per-operation look-ahead penalty;
    ``specification_aware_network`` toggles the snippet-based network.
    """

    episode_length: int = 6
    episodes: int = 300
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    graded_eos_reward: bool = True
    immediate_reward: bool = True
    specification_aware_network: bool = True
    #: Mask statically-invalid actions at the policy level (schema-only
    #: validity masks from the environment; no queries are executed).
    mask_invalid_actions: bool = True
    #: Memoise query execution across episodes via a shared ExecutionCache.
    cache_execution: bool = True
    #: Environments rolled out in lock-step per training wave.  Values > 1
    #: batch the policy forward and share one execution cache across the
    #: wave, with per-episode RNG streams derived from
    #: ``(seed, episode_index)``.  Training is deterministic for a given
    #: ``(seed, num_envs)`` pair, but changing ``num_envs`` changes how
    #: sampling interleaves with gradient updates, so results differ from
    #: the single-environment run (which samples from the policy's own
    #: stream, as before this knob existed).
    num_envs: int = 1
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    compliance: ComplianceRewardConfig = field(default_factory=ComplianceRewardConfig)

    def validate(self) -> list:
        """Structured validation; returns ``FieldError`` entries (empty = valid).

        Nested trainer hyper-parameters are reported with a ``trainer.``
        prefix, so a bad batch size surfaces as ``trainer.batch_episodes``
        instead of a numpy shape error deep in the update step.
        """
        # Lazy import: repro.engine.__init__ transitively imports this module.
        from repro.engine.errors import FieldError

        errors: list[FieldError] = []
        if self.episode_length < 1:
            errors.append(
                FieldError(
                    field="episode_length",
                    message=f"must be >= 1, got {self.episode_length}",
                )
            )
        if self.episodes < 1:
            errors.append(
                FieldError(field="episodes", message=f"must be >= 1, got {self.episodes}")
            )
        if self.num_envs < 1:
            errors.append(
                FieldError(field="num_envs", message=f"must be >= 1, got {self.num_envs}")
            )
        if not self.hidden_sizes or any(size < 1 for size in self.hidden_sizes):
            errors.append(
                FieldError(
                    field="hidden_sizes",
                    message=f"must be a non-empty tuple of sizes >= 1, got {self.hidden_sizes}",
                )
            )
        errors.extend(self.trainer.validate(prefix="trainer."))
        return errors

    def check(self) -> None:
        """Raise ``RequestValidationError`` if any configuration field is invalid."""
        errors = self.validate()
        if errors:
            from repro.engine.errors import RequestValidationError

            raise RequestValidationError(errors)


@dataclass
class CdrlResult:
    """Outcome of a CDRL run."""

    session: ExplorationSession
    fully_compliant: bool
    structurally_compliant: bool
    utility_score: float
    history: TrainingHistory
    episodes_trained: int

    def summary(self) -> dict[str, object]:
        return {
            "fully_compliant": self.fully_compliant,
            "structurally_compliant": self.structurally_compliant,
            "utility_score": round(self.utility_score, 4),
            "episodes_trained": self.episodes_trained,
            "queries": self.session.num_queries(),
        }


def _resolve_num_envs(agent_level: int, trainer_level: int) -> int:
    """Reconcile the agent-level and nested trainer-level ``num_envs`` knobs.

    Setting either works; setting both to different batched values is
    rejected rather than silently preferring one.
    """
    if agent_level > 1 and trainer_level > 1 and agent_level != trainer_level:
        raise ValueError(
            f"conflicting num_envs settings: config.num_envs={agent_level} vs "
            f"config.trainer.num_envs={trainer_level}; set just one"
        )
    return max(agent_level, trainer_level)


class LinxCdrlAgent:
    """Generates a compliant, high-utility exploration session for (dataset, LDX)."""

    def __init__(
        self,
        dataset: DataTable,
        query: LdxQuery | str,
        config: CdrlConfig | None = None,
        cache: ExecutionCache | None = None,
        batcher=None,
    ):
        self.dataset = dataset
        self.query = parse_ldx(query) if isinstance(query, str) else query
        self.config = config or CdrlConfig()
        self.config.check()
        # Continuous cross-request batching (opt-in via the engine): when a
        # :class:`repro.engine.batcher.InferenceBatcher` is supplied, this
        # agent's acting forwards join the serving tier's shared waves and
        # its content-keyed exploration state (action space, generic-reward
        # memos, compliance look-ahead cache, view-feature memo) comes from
        # the batcher's :class:`SharedExplorationContext` pools.  Every
        # shared structure memoises pure content-addressed functions, so
        # results stay bit-identical to an unbatched run at equal seeds.
        self.batcher = batcher
        shared = batcher.shared if batcher is not None else None
        # A compliant session needs every required operation plus the back
        # moves that navigate between branches; allow one extra step of slack.
        episode_length = max(
            self.config.episode_length, self.query.minimal_session_steps() + 1
        )
        self.episode_length = episode_length

        if shared is not None:
            self.action_space = shared.action_space(dataset)
        else:
            self.action_space = ActionSpace(dataset)
        self.reward_strategy = ComplianceRewardStrategy(
            query=self.query,
            episode_length=episode_length,
            config=self.config.compliance,
            graded_eos=self.config.graded_eos_reward,
            use_immediate=self.config.immediate_reward,
        )
        if shared is not None:
            # Feasibility look-ahead is a pure function of (specification,
            # session-tree shape, remaining steps, completion budget); the
            # textual LDX form keys the pool, so sharing only applies when
            # the specification arrived as text (the serving path always
            # does).
            if isinstance(query, str):
                self.reward_strategy._lookahead_cache = shared.lookahead_cache(
                    query, self.config.compliance.immediate_max_completions
                )
        # One execution cache is shared by training rollouts and evaluation,
        # so repeated (view, operation) pairs across episodes reuse results.
        # An externally supplied cache (e.g. the engine-wide cache of
        # :class:`repro.engine.core.LinxEngine`) extends that sharing across
        # agents and requests.  ``config.cache_execution=False`` always wins,
        # so uncached ablation / baseline timings stay truly uncached even
        # when a shared cache is offered.
        if not self.config.cache_execution:
            self.cache: Optional[ExecutionCache] = None
        elif cache is not None:
            self.cache = cache
        else:
            self.cache = ExecutionCache()
        self.environment = ExplorationEnvironment(
            dataset=dataset,
            episode_length=episode_length,
            reward_strategy=self.reward_strategy,
            action_space=self.action_space,
            cache=self.cache,
            enable_cache=self.cache is not None,
        )
        # Batched rollouts: siblings of the primary environment sharing its
        # action space, execution cache and (via VectorEnvironment) feature
        # memo.  The compliance strategy keeps a per-episode step counter,
        # so each environment gets its own instance; the pure look-ahead
        # feasibility memo is shared across them.
        self.vector_environment: Optional[VectorEnvironment] = None
        self.num_envs = _resolve_num_envs(
            self.config.num_envs, self.config.trainer.num_envs
        )
        if self.num_envs > 1:
            siblings = [self.environment]
            for _ in range(self.num_envs - 1):
                strategy = ComplianceRewardStrategy(
                    query=self.query,
                    episode_length=episode_length,
                    config=self.config.compliance,
                    graded_eos=self.config.graded_eos_reward,
                    use_immediate=self.config.immediate_reward,
                )
                strategy._lookahead_cache = self.reward_strategy._lookahead_cache
                siblings.append(
                    ExplorationEnvironment(
                        dataset=dataset,
                        episode_length=episode_length,
                        reward_strategy=strategy,
                        action_space=self.action_space,
                        cache=self.cache,
                        enable_cache=self.cache is not None,
                    )
                )
            self.vector_environment = VectorEnvironment(siblings)
        observation_size = self.environment.observation_size()
        if self.config.specification_aware_network:
            self.policy = SpecificationAwarePolicy(
                observation_size=observation_size,
                action_space=self.action_space,
                query=self.query,
                hidden_sizes=self.config.hidden_sizes,
                seed=self.config.seed,
            )
            # Give the specification-aware policy access to the ongoing session
            # so its structure guide can shift action probabilities per state.
            self.policy.environment = self.environment
            decision_to_choice = self.policy.indices_to_choice
        else:
            self.policy = build_basic_policy(
                observation_size=observation_size,
                action_space=self.action_space,
                hidden_sizes=self.config.hidden_sizes,
                seed=self.config.seed,
            )
            decision_to_choice = None
        if self.config.mask_invalid_actions:
            # Schema-only validity masks: invalid parameter choices get zero
            # probability without ever executing a query.
            self.policy.mask_provider = self.environment.head_mask
        trainer_config = TrainerConfig(
            episodes=self.config.episodes,
            seed=self.config.seed,
            learning_rate=self.config.trainer.learning_rate,
            entropy_coefficient=self.config.trainer.entropy_coefficient,
            batch_episodes=self.config.trainer.batch_episodes,
            discount=self.config.trainer.discount,
            greedy_eval_every=self.config.trainer.greedy_eval_every,
            num_envs=self.num_envs,
        )
        self.trainer = PolicyGradientTrainer(
            environment=self.environment,
            policy=self.policy,
            config=trainer_config,
            decision_to_choice=decision_to_choice,
            vector_environment=self.vector_environment,
        )
        if shared is not None:
            # Specification guidance (and its folded validity masks) is a
            # pure function of (dataset, query, session structure); pool the
            # memos so concurrent requests on the same pair share them.  As
            # with the look-ahead cache, the textual LDX form keys the pool.
            if isinstance(query, str) and isinstance(
                self.policy, SpecificationAwarePolicy
            ):
                self.policy.adopt_shared_guidance(
                    shared.guidance_state(
                        query, dataset, self.config.mask_invalid_actions
                    )
                )
            # One generic-reward scorer per dataset content: its memos are
            # keyed by view fingerprints, so concurrent requests on the same
            # dataset reuse each other's interestingness/diversity work.
            scorer = shared.scorer(dataset)
            self._generic_reward = scorer
            self.reward_strategy.generic.reward = scorer
            if self.vector_environment is not None:
                for sibling in self.vector_environment.environments[1:]:
                    sibling.reward_strategy.generic.reward = scorer
        else:
            self._generic_reward = GenericExplorationReward()
        self._best_compliant: Optional[tuple[ExplorationSession, float]] = None

    # -- training --------------------------------------------------------------------------
    def _track_best(self, episode: int, episode_return: float, session: ExplorationSession) -> None:
        tree = session.to_tree()
        if not verify(tree, self.query):
            return
        utility = self._generic_reward.session_score(session)
        if self._best_compliant is None or utility > self._best_compliant[1]:
            self._best_compliant = (session, utility)

    def run(
        self,
        episodes: Optional[int] = None,
        episode_callback: Optional[
            Callable[[int, float, ExplorationSession], None]
        ] = None,
    ) -> CdrlResult:
        """Train the agent and return the best session found.

        Preference order: the highest-utility fully compliant session seen
        during training; otherwise the best session produced after training.
        ``episode_callback`` (episode index, episode return, session) is
        invoked after every training episode — the engine uses it to stream
        per-episode progress events to observers.
        """

        def per_episode(episode: int, episode_return: float, session: ExplorationSession) -> None:
            self._track_best(episode, episode_return, session)
            if episode_callback is not None:
                episode_callback(episode, episode_return, session)

        if self.batcher is not None:
            return self._run_batched(episodes, per_episode)
        return self._run(episodes, per_episode)

    def _run_batched(self, episodes, per_episode) -> CdrlResult:
        """Run with acting forwards routed through the shared wave thread.

        The agent joins the batcher for the duration of training (so waves
        know to wait for it), installs the policy's ``act_backend`` so every
        acting call — training rollouts, greedy evaluations, the post-hoc
        ``best_session`` probes — blocks on wave results, and pools its
        environment's view-feature memo with same-shaped peers.  Learning
        (gradient accumulation, optimizer steps) never routes through the
        backend: it re-runs forwards on this thread, keeping update order
        identical to the unbatched run.
        """
        assert self.batcher is not None
        member = self.batcher.attach()
        pool = self.batcher.shared.environment_pool(self.dataset)
        pooled = False
        try:
            pool.attach(self.environment)
            pooled = True
        except ValueError:
            # Same dataset but a different episode length or observation
            # shape than the pool's members: keep a private feature memo.
            pooled = False
        policy = self.policy
        batcher = self.batcher
        policy.act_backend = (
            lambda observations, biases_list, rngs, greedy: batcher.submit(
                member, policy, observations, biases_list, rngs, greedy
            )
        )
        try:
            return self._run(episodes, per_episode)
        finally:
            policy.act_backend = None
            if pooled:
                try:
                    pool.detach(self.environment)
                except ValueError:  # pragma: no cover - pool was cleared
                    pass
            batcher.detach(member)

    def _run(self, episodes, per_episode) -> CdrlResult:
        history = self.trainer.train(episodes=episodes, callback=per_episode)
        if self._best_compliant is not None:
            session, utility = self._best_compliant
        else:
            session, _ = self.trainer.best_session(attempts=5)
            utility = self._generic_reward.session_score(session)
        tree = session.to_tree()
        return CdrlResult(
            session=session,
            fully_compliant=verify(tree, self.query),
            structurally_compliant=verify_structure(tree, self.query),
            utility_score=utility,
            history=history,
            episodes_trained=len(history.episode_returns),
        )

    # -- convenience -------------------------------------------------------------------------
    def generate(self, episodes: Optional[int] = None) -> ExplorationSession:
        """Train and return only the generated session."""
        return self.run(episodes=episodes).session


def generate_session(
    dataset: DataTable,
    ldx_text: str,
    episodes: int = 200,
    seed: int = 0,
    episode_length: int = 6,
) -> CdrlResult:
    """One-call helper: parse LDX, train a CDRL agent and return the result."""
    config = CdrlConfig(episodes=episodes, seed=seed, episode_length=episode_length)
    agent = LinxCdrlAgent(dataset, ldx_text, config=config)
    return agent.run()
