"""LDX-compliance reward scheme (Section 5.2 and Appendix A.3).

Two signals are combined:

* an **end-of-session** conditional reward (Algorithm 2): a high positive
  reward for fully compliant sessions, a fixed penalty for sessions that
  violate the structural specifications, and a graded non-negative reward
  proportional to the number of satisfied operational parameters otherwise;
* an **immediate** per-operation reward that penalises, in real time,
  operations after which no completion of the ongoing session can satisfy
  the structural specifications.

The bi-objective step reward of the CDRL MDP is
``alpha * R_gen + beta * R_comp`` where ``R_comp`` combines the two signals
with weights ``gamma`` (end of session) and ``delta`` (immediate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.explore.environment import GenericRewardStrategy
from repro.explore.operations import Operation, is_query_operation
from repro.explore.reward import GenericRewardConfig
from repro.explore.session import ExplorationSession, SessionNode
from repro.ldx.ast import LdxQuery
from repro.ldx.partial import can_still_comply
from repro.ldx.verifier import (
    operational_match_ratio,
    partial_structural_ratio,
    structural_assignments,
    verify,
    verify_structure,
)


@dataclass(frozen=True)
class ComplianceRewardConfig:
    """Weights and magnitudes of the compliance reward scheme."""

    # Bi-objective mixing (Section 5.1): R = alpha * R_gen + beta * R_comp.
    alpha: float = 0.3
    beta: float = 1.0
    # R_comp internal mixing: gamma * EOS + delta * IMM.
    gamma: float = 1.0
    delta: float = 0.5
    # Algorithm 2 magnitudes.
    full_compliance_reward: float = 10.0
    structural_violation_penalty: float = -5.0
    operational_reward_scale: float = 4.0
    # Immediate reward.
    immediate_violation_penalty: float = -2.0
    immediate_min_step: int = 3
    immediate_max_completions: int = 256
    # Binary (ablation) mode magnitudes.
    binary_positive: float = 10.0
    binary_negative: float = -5.0


def end_of_session_reward(
    session: ExplorationSession,
    query: LdxQuery,
    config: ComplianceRewardConfig,
    graded: bool = True,
) -> float:
    """Algorithm 2: the conditional end-of-session compliance reward.

    With ``graded=False`` the reward degenerates to the naive binary signal
    used by the ablation baseline (positive iff fully compliant).  In graded
    mode the structural-violation penalty is softened proportionally to the
    fraction of the required structure that is already realised, which keeps
    the "structure first" learning signal dense on small training budgets.
    """
    tree = session.to_tree()
    if verify(tree, query):
        return config.full_compliance_reward if graded else config.binary_positive
    if not graded:
        return config.binary_negative
    if not structural_assignments(tree, query, first_only=True):
        progress = partial_structural_ratio(tree, query)
        return config.structural_violation_penalty * (1.0 - progress)
    ratio = operational_match_ratio(tree, query)
    return config.operational_reward_scale * ratio


def _tree_shape(session: ExplorationSession) -> tuple:
    """A hashable key describing only the *shape* of the session tree.

    The structural specifications ignore operation labels, so look-ahead
    compliance results can be cached per shape across steps and episodes.
    """

    def shape(node) -> tuple:
        return tuple(shape(child) for child in node.children)

    return shape(session.root)


def immediate_reward(
    session: ExplorationSession,
    query: LdxQuery,
    step_index: int,
    episode_length: int,
    config: ComplianceRewardConfig,
    cache: Optional[dict] = None,
) -> float:
    """Immediate per-operation reward: penalise steps that doom structural compliance."""
    if step_index < config.immediate_min_step:
        return 0.0
    remaining = max(0, episode_length - step_index)
    key = None
    if cache is not None:
        key = (_tree_shape(session), remaining)
        if key in cache:
            feasible = cache[key]
            return 0.0 if feasible else config.immediate_violation_penalty
    tree = session.to_tree()
    feasible = can_still_comply(
        tree, query, remaining, max_completions=config.immediate_max_completions
    )
    if cache is not None and key is not None:
        cache[key] = feasible
    return 0.0 if feasible else config.immediate_violation_penalty


class ComplianceRewardStrategy:
    """The CDRL reward strategy: generic exploration reward + compliance scheme.

    Parameters mirror the ablation study of Section 7.4:

    * ``graded_eos=False`` → the naive *Binary Reward Only* end-of-session
      signal;
    * ``use_immediate=False`` → drop the per-operation look-ahead penalty.
    """

    def __init__(
        self,
        query: LdxQuery,
        episode_length: int,
        config: ComplianceRewardConfig | None = None,
        generic_config: GenericRewardConfig | None = None,
        graded_eos: bool = True,
        use_immediate: bool = True,
    ):
        self.query = query
        self.episode_length = episode_length
        self.config = config or ComplianceRewardConfig()
        self.generic = GenericRewardStrategy(generic_config)
        self.graded_eos = graded_eos
        self.use_immediate = use_immediate
        self._step_index = 0
        # Shape-keyed cache of look-ahead feasibility; shared across episodes.
        self._lookahead_cache: dict = {}

    # -- RewardStrategy protocol -----------------------------------------------------------
    def on_step(
        self,
        session: ExplorationSession,
        node: Optional[SessionNode],
        operation: Operation,
        valid: bool,
    ) -> float:
        # Detect a fresh episode (the environment resets the session object).
        if session.steps_taken <= 1:
            self._step_index = 0
        self._step_index += 1
        generic = self.generic.on_step(session, node, operation, valid)
        compliance = 0.0
        if self.use_immediate and valid and is_query_operation(operation):
            compliance = self.config.delta * immediate_reward(
                session,
                self.query,
                self._step_index,
                self.episode_length,
                self.config,
                cache=self._lookahead_cache,
            )
        return self.config.alpha * generic + self.config.beta * compliance

    def on_episode_end(self, session: ExplorationSession) -> float:
        eos = end_of_session_reward(session, self.query, self.config, graded=self.graded_eos)
        return self.config.beta * self.config.gamma * eos

    # -- reporting helpers -------------------------------------------------------------------
    def compliance_summary(self, session: ExplorationSession) -> dict[str, object]:
        """Structure/full compliance flags and the operational match ratio."""
        tree = session.to_tree()
        return {
            "full": verify(tree, self.query),
            "structural": verify_structure(tree, self.query),
            "operational_ratio": operational_match_ratio(tree, self.query),
        }
